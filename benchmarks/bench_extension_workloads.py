"""The protocol across key domains: B-tree, R-tree and RD-tree.

The paper's algorithms exploit only *structure*, never key semantics
(section 12), so the same concurrency machinery must hold up on an
ordered domain, a 2-D spatial domain and an unordered set domain.  One
mixed concurrent workload per extension; throughput, rightlink
compensation and structural consistency are reported.
"""

from __future__ import annotations

import random
import threading
import time

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rdtree import RDTreeExtension
from repro.ext.rtree import Rect, RTreeExtension
from repro.gist.checker import check_tree

THREADS = 6
OPS_PER_THREAD = 60


def drive(name, extension, make_key, make_query) -> dict:
    db = Database(page_capacity=8, lock_timeout=20.0)
    tree = db.create_tree(name, extension)
    preload_rng = random.Random(3)
    txn = db.begin()
    for i in range(200):
        tree.insert(txn, make_key(preload_rng), f"pre-{i}")
    db.commit(txn)

    aborts = [0]

    def worker(wid: int):
        rng = random.Random(wid)
        for i in range(OPS_PER_THREAD):
            txn = db.begin()
            try:
                if rng.random() < 0.5:
                    tree.insert(txn, make_key(rng), f"{wid}-{i}")
                else:
                    tree.search(txn, make_query(rng))
                db.commit(txn)
            except TransactionAbort:
                aborts[0] += 1
                try:
                    db.rollback(txn)
                except Exception:
                    pass

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True) for w in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120.0)
    elapsed = time.perf_counter() - start
    report = check_tree(tree)
    return {
        "extension": extension.name,
        "ops": THREADS * OPS_PER_THREAD,
        "ops_per_sec": round(THREADS * OPS_PER_THREAD / elapsed, 1),
        "aborts": aborts[0],
        "splits": tree.stats.splits,
        "rightlinks": tree.stats.rightlink_follows,
        "structure_ok": report.ok,
        "pages": report.pages,
    }


def test_protocol_across_extensions(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(
            drive(
                "bt",
                BTreeExtension(),
                lambda rng: rng.randrange(100_000),
                lambda rng: Interval(
                    lo := rng.randrange(99_000), lo + 1000
                ),
            )
        )
        rows.append(
            drive(
                "rt",
                RTreeExtension(),
                lambda rng: Rect.point(rng.random(), rng.random()),
                lambda rng: Rect(
                    x := rng.random() * 0.9,
                    y := rng.random() * 0.9,
                    x + 0.1,
                    y + 0.1,
                ),
            )
        )
        rows.append(
            drive(
                "rd",
                RDTreeExtension(),
                lambda rng: frozenset(rng.sample(range(200), k=4)),
                lambda rng: frozenset(rng.sample(range(200), k=2)),
            )
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Cross-extension — the same protocol over ordered, spatial and "
        "set-valued key domains (6 threads, 50/50 mix)",
        rows,
    )
    assert all(r["structure_ok"] for r in rows)
    assert all(r["ops_per_sec"] > 0 for r in rows)
