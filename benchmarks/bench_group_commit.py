"""Group commit: commit throughput under a slow log device.

Not a claim from the GiST paper itself, but the standard WAL companion
(the paper's host, DB2, relies on it): with a per-force latency, commit
throughput is bounded by forces per second unless concurrent committers
share forces.  The experiment drives N committer threads against a log
with a 3 ms force latency and reports commits, physical forces, and the
share that rode along — for both flush paths:

* **inline** — the committing thread forces the log itself; riders
  whose cover is overtaken by an in-flight force skip theirs
  (leader/rider group commit);
* **writer** — a dedicated WAL writer thread owns every force;
  committers enqueue their cover LSN and park, and the writer coalesces
  all pending covers into one force, lingering an adaptive window
  derived from the commit arrival rate to let near-simultaneous
  committers join.

The dedicated writer is gated: with 8 committers it must average
**fewer than one physical force per commit** (flushes/commit < 1.0),
i.e. batching must actually happen.

``BENCH_group_commit.json`` receives the machine-readable matrix.
"""

from __future__ import annotations

import threading
import time

from repro.database import Database
from repro.ext.btree import BTreeExtension

FLUSH_DELAY = 0.003
COMMITS_PER_THREAD = 12


def run(threads: int, *, wal_writer: bool = False) -> dict:
    db = Database(
        page_capacity=16,
        flush_delay=FLUSH_DELAY,
        wal_writer=wal_writer,
    )
    tree = db.create_tree("gc", BTreeExtension())

    def worker(wid: int):
        for i in range(COMMITS_PER_THREAD):
            txn = db.begin()
            tree.insert(txn, wid * 1000 + i, f"{wid}-{i}")
            db.commit(txn)

    workers = [
        threading.Thread(target=worker, args=(w,), daemon=True) for w in range(threads)
    ]
    before = db.log.stats.snapshot()  # exclude create_tree's forces
    start = time.perf_counter()
    for t in workers:
        t.start()
    for t in workers:
        t.join(120.0)
    elapsed = time.perf_counter() - start
    after = db.log.stats.snapshot()  # before shutdown's final flush
    db.shutdown()
    commits = threads * COMMITS_PER_THREAD
    flushes = after["flushes"] - before["flushes"]
    rode_along = after["group_commits"] - before["group_commits"]
    return {
        "flush_path": "writer" if wal_writer else "inline",
        "threads": threads,
        "commits": commits,
        "commits_per_sec": round(commits / elapsed, 1),
        "log_forces": flushes,
        "rode_along": rode_along,
        "commits_per_force": round(commits / max(1, flushes), 2),
        "flushes_per_commit": round(flushes / commits, 3),
        "writer_batches": after["writer_batches"],
        "writer_max_batch": after["writer_max_batch"],
    }


def test_group_commit_scaling(benchmark, emit, emit_json):
    rows = []

    def go():
        rows.clear()
        for wal_writer in (False, True):
            for threads in (1, 4, 8):
                rows.append(run(threads, wal_writer=wal_writer))

    benchmark.pedantic(go, rounds=1, iterations=1)
    emit(
        "Group commit — commit throughput vs committer threads "
        f"(log force latency {FLUSH_DELAY * 1e3:.0f} ms), inline flush "
        "vs dedicated WAL writer",
        rows,
    )
    emit_json(
        "group_commit",
        {
            "flush_delay_ms": FLUSH_DELAY * 1e3,
            "commits_per_thread": COMMITS_PER_THREAD,
            "matrix": rows,
        },
    )
    by_key = {(r["flush_path"], r["threads"]): r for r in rows}
    # concurrency amortizes forces: more commits per physical force
    assert (
        by_key[("inline", 8)]["commits_per_force"]
        > by_key[("inline", 1)]["commits_per_force"]
    )
    assert (
        by_key[("inline", 8)]["commits_per_sec"]
        > by_key[("inline", 1)]["commits_per_sec"]
    )
    # the dedicated writer must actually batch: strictly fewer than one
    # physical force per commit at 8 committers (the ISSUE 7 gate)
    writer8 = by_key[("writer", 8)]
    assert writer8["flushes_per_commit"] < 1.0, (
        "WAL writer failed to coalesce commits: "
        f"{writer8['flushes_per_commit']} flushes/commit"
    )
    assert writer8["writer_batches"] > 0
    # and it must not cost single-committer latency more than ~the
    # inline path's force count (every commit still forces exactly once
    # when there is nobody to share with)
    writer1 = by_key[("writer", 1)]
    assert writer1["flushes_per_commit"] <= 1.0
