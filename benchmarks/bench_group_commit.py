"""Group commit: commit throughput under a slow log device.

Not a claim from the GiST paper itself, but the standard WAL companion
(the paper's host, DB2, relies on it): with a per-force latency, commit
throughput is bounded by forces per second unless concurrent committers
share forces.  The experiment drives N committer threads against a log
with a 3 ms force latency and reports commits, physical forces, and the
share that rode along.
"""

from __future__ import annotations

import threading
import time

from repro.database import Database
from repro.ext.btree import BTreeExtension

FLUSH_DELAY = 0.003
COMMITS_PER_THREAD = 12


def run(threads: int) -> dict:
    db = Database(page_capacity=16, flush_delay=FLUSH_DELAY)
    tree = db.create_tree("gc", BTreeExtension())

    def worker(wid: int):
        for i in range(COMMITS_PER_THREAD):
            txn = db.begin()
            tree.insert(txn, wid * 1000 + i, f"{wid}-{i}")
            db.commit(txn)

    workers = [
        threading.Thread(target=worker, args=(w,), daemon=True) for w in range(threads)
    ]
    start = time.perf_counter()
    for t in workers:
        t.start()
    for t in workers:
        t.join(120.0)
    elapsed = time.perf_counter() - start
    stats = db.log.stats.snapshot()
    commits = threads * COMMITS_PER_THREAD
    return {
        "threads": threads,
        "commits": commits,
        "commits_per_sec": round(commits / elapsed, 1),
        "log_forces": stats["flushes"],
        "rode_along": stats["group_commits"],
        "commits_per_force": round(commits / max(1, stats["flushes"]), 2),
    }


def test_group_commit_scaling(benchmark, emit):
    rows = []

    def go():
        rows.clear()
        for threads in (1, 4, 8):
            rows.append(run(threads))

    benchmark.pedantic(go, rounds=1, iterations=1)
    emit(
        "Group commit — commit throughput vs committer threads "
        f"(log force latency {FLUSH_DELAY * 1e3:.0f} ms)",
        rows,
    )
    by_threads = {r["threads"]: r for r in rows}
    # concurrency amortizes forces: more commits per physical force
    assert (
        by_threads[8]["commits_per_force"]
        > by_threads[1]["commits_per_force"]
    )
    assert by_threads[8]["commits_per_sec"] > by_threads[1][
        "commits_per_sec"
    ]
