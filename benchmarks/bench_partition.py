"""Partitioned scale-out: routing determinism, parallelism, skew.

Three experiments over :class:`repro.cluster.PartitionedDatabase`:

1. **Deterministic per-partition accounting** (counted, not timed).
   The client-side router's prediction of where every key lands must
   match the workers' own transaction counts *exactly* — same stream,
   same seed, same histogram, run after run.  A scatter range scan is
   also audited for exactly-once gathering: the merged iterator yields
   every key once, with no cross-partition duplicates to dedupe.

2. **Wall-clock scaling, 1 vs 4 partitions** under the mixed workload.
   Two regimes are measured:

   * an *overlap* workload (``io_delay`` > 0 with a deliberately small
     buffer pool, so ops really hit the simulated disk): four worker
     processes overlap their I/O stalls and each serves a quarter-sized
     working set, so even a single-core runner must show **>2x** —
     this regime carries the gate everywhere;
   * a *pure-CPU* workload: four processes need four cores, so the
     **>2x** gate applies only when ``os.cpu_count() >= 4`` (the
     ISSUE's multicore-runner qualifier); the measured ratio is
     reported unconditionally in the JSON artifact.

3. **Hot-partition skew** via the generator's partition-routed key
   streams: uniform routing lands balanced; Zipf-skewed routing must
   concentrate measurably more traffic on the hottest partition.

``BENCH_partition.json`` receives the machine-readable numbers;
``BENCH_QUICK=1`` shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from repro.cluster import PartitionedDatabase
from repro.cluster.router import HashRouter
from repro.ext.btree import BTreeExtension, Interval
from repro.harness.driver import ClusterDriver
from repro.workload.generator import (
    MixSpec,
    PartitionRoutedKeys,
    ScalarWorkload,
    partition_histogram,
)

QUICK = bool(os.environ.get("BENCH_QUICK"))

KEY_SPACE = 10_000
PRELOAD = 120 if QUICK else 400
MIXED_OPS = 120 if QUICK else 400
CPU_OPS = 200 if QUICK else 600
THREADS = 4
MULTICORE = (os.cpu_count() or 1) >= 4

MIX = MixSpec(
    insert=0.35, search=0.25, delete=0.10, multi_put=0.15, multi_get=0.15
)


def _fresh_cluster(partitions: int, **db_config) -> PartitionedDatabase:
    cluster = PartitionedDatabase(
        partitions, router="hash", page_capacity=16, **db_config
    )
    cluster.create_tree("part", BTreeExtension())
    return cluster


def _workload(seed: int) -> ScalarWorkload:
    return ScalarWorkload(
        seed, mix=MIX, key_space=KEY_SPACE, batch_size=8
    )


# ---------------------------------------------------------------------------
# 1. deterministic per-partition accounting
# ---------------------------------------------------------------------------


def test_per_partition_accounting_is_deterministic(emit, emit_json):
    """Client-side routing prediction == worker-side reality, exactly."""
    partitions = 4
    rows = []
    histograms = []
    for run in range(2):
        workload = _workload(seed=1234)  # same seed both runs
        ops = list(workload.ops(MIXED_OPS))
        cluster = _fresh_cluster(partitions)
        try:
            predicted = partition_histogram(ops, cluster.router)
            before = {
                p: info["end_lsn"]
                for p, info in cluster.describe().items()
            }
            driver = ClusterDriver(cluster, "part")
            driver.run(ops, threads=1)  # single thread: exact op counts
            snap = cluster.snapshot()
            routed = [
                snap["cluster"]["cluster"]["partition"][str(p)][
                    "routed_ops"
                ]
                for p in range(partitions)
            ]
            moved = {
                p: info["end_lsn"] - before[p]
                for p, info in cluster.describe().items()
            }
        finally:
            cluster.shutdown()
        histograms.append((predicted, routed))
        rows.append(
            {
                "run": run,
                "predicted": "/".join(map(str, predicted)),
                "routed": "/".join(map(str, routed)),
                "log_grew": "/".join(
                    "y" if moved[p] > 0 else "n" for p in range(partitions)
                ),
            }
        )
    emit("partition accounting (same seed, two runs)", rows)

    (pred_a, routed_a), (pred_b, routed_b) = histograms
    # identical across runs (stable hash, seeded stream) ...
    assert pred_a == pred_b
    assert routed_a == routed_b
    # ... and the client's prediction is the workers' reality
    assert pred_a == routed_a
    emit_json(
        "partition",
        {
            "accounting": {
                "partitions": partitions,
                "ops": MIXED_OPS,
                "predicted_histogram": pred_a,
                "routed_histogram": routed_a,
                "deterministic": True,
            }
        },
    )


def test_scatter_scan_gathers_exactly_once(emit_json):
    """The merged range scan yields each key exactly once."""
    cluster = _fresh_cluster(4)
    try:
        n = 300 if QUICK else 1000
        cluster.multi_put("part", [(i, f"r{i}") for i in range(n)])
        rows = cluster.search("part", Interval(0, n - 1))
        keys = [k for k, _ in rows]
        assert keys == sorted(keys)
        assert keys == list(range(n))  # complete, ordered, no dupes
    finally:
        cluster.shutdown()
    emit_json(
        "partition",
        {"scatter_scan": {"keys": n, "exactly_once": True}},
    )


# ---------------------------------------------------------------------------
# 2. wall-clock scaling: 1 vs 4 partitions
# ---------------------------------------------------------------------------


def _timed_run(
    partitions: int, ops, *, io_delay: float, pool_capacity: int = 4096
) -> float:
    cluster = _fresh_cluster(
        partitions, io_delay=io_delay, pool_capacity=pool_capacity
    )
    try:
        driver = ClusterDriver(cluster, "part")
        workload = _workload(seed=77)
        driver.preload(workload.preload(PRELOAD))
        start = time.perf_counter()
        driver.run(ops, threads=THREADS)
        return time.perf_counter() - start
    finally:
        cluster.shutdown()


def test_mixed_workload_speedup(emit, emit_json):
    """>2x at 4 partitions vs 1 on the overlap workload; CPU regime
    gated when the runner actually has the cores."""
    workload = _workload(seed=77)
    workload.preload(PRELOAD)  # advance past the preload prefix
    ops = list(workload.ops(MIXED_OPS))

    # A small buffer pool forces real eviction/read stalls (io_delay is
    # paid only on disk I/O); partitioning then wins twice — stalls
    # overlap across worker processes, and each partition's quarter-
    # sized working set fits its pool better.
    io_t1 = _timed_run(1, ops, io_delay=0.002, pool_capacity=16)
    io_t4 = _timed_run(4, ops, io_delay=0.002, pool_capacity=16)
    io_speedup = io_t1 / io_t4 if io_t4 > 0 else float("inf")

    cpu_workload = _workload(seed=78)
    cpu_workload.preload(PRELOAD)
    cpu_ops = list(cpu_workload.ops(CPU_OPS))
    cpu_t1 = _timed_run(1, cpu_ops, io_delay=0.0)
    cpu_t4 = _timed_run(4, cpu_ops, io_delay=0.0)
    cpu_speedup = cpu_t1 / cpu_t4 if cpu_t4 > 0 else float("inf")

    emit(
        "mixed workload: 1 vs 4 partitions",
        [
            {
                "regime": "io_overlap",
                "t_1p_s": round(io_t1, 3),
                "t_4p_s": round(io_t4, 3),
                "speedup": round(io_speedup, 2),
                "gated": "yes",
            },
            {
                "regime": "pure_cpu",
                "t_1p_s": round(cpu_t1, 3),
                "t_4p_s": round(cpu_t4, 3),
                "speedup": round(cpu_speedup, 2),
                "gated": "yes" if MULTICORE else "no (<4 cores)",
            },
        ],
    )
    emit_json(
        "partition",
        {
            "speedup": {
                "threads": THREADS,
                "ops": MIXED_OPS,
                "cpus": os.cpu_count(),
                "multicore_runner": MULTICORE,
                "io_overlap": {
                    "t_1_partition_s": round(io_t1, 4),
                    "t_4_partitions_s": round(io_t4, 4),
                    "speedup": round(io_speedup, 2),
                },
                "pure_cpu": {
                    "t_1_partition_s": round(cpu_t1, 4),
                    "t_4_partitions_s": round(cpu_t4, 4),
                    "speedup": round(cpu_speedup, 2),
                },
            }
        },
    )
    # Overlap regime: four worker processes overlap their simulated-I/O
    # stalls regardless of core count — gate everywhere.
    assert io_speedup > 2.0, (
        f"io-overlap speedup {io_speedup:.2f}x at 4 partitions, need >2x"
    )
    # CPU regime: needs real cores to show parallelism.
    if MULTICORE:
        assert cpu_speedup > 2.0, (
            f"pure-cpu speedup {cpu_speedup:.2f}x on a "
            f"{os.cpu_count()}-core runner, need >2x"
        )


# ---------------------------------------------------------------------------
# 3. hot-partition skew
# ---------------------------------------------------------------------------


def test_zipf_routing_shows_measurable_imbalance(emit, emit_json):
    """Uniform routing balances; Zipf routing makes a hot partition."""
    partitions = 4
    router = HashRouter(partitions)
    n = 400 if QUICK else 2000
    rows = []
    imbalances = {}
    for routing in ("uniform", "zipf"):
        keys = PartitionRoutedKeys(
            seed=5, router=router, key_space=KEY_SPACE, routing=routing
        )
        workload = ScalarWorkload(
            5, mix=MixSpec(insert=1.0, search=0.0), key_space=KEY_SPACE,
            key_source=keys,
        )
        ops = list(workload.ops(n))
        hist = partition_histogram(ops, router)
        imbalance = max(hist) / (sum(hist) / len(hist))
        imbalances[routing] = imbalance
        rows.append(
            {
                "routing": routing,
                "histogram": "/".join(map(str, hist)),
                "hottest_over_mean": round(imbalance, 2),
            }
        )
    emit("partition-routed key streams (hash router, 4 partitions)", rows)
    emit_json(
        "partition",
        {
            "skew": {
                "keys": n,
                "uniform_imbalance": round(imbalances["uniform"], 3),
                "zipf_imbalance": round(imbalances["zipf"], 3),
            }
        },
    )
    assert imbalances["uniform"] < 1.3  # balanced within noise
    assert imbalances["zipf"] > imbalances["uniform"] * 1.5  # visibly hot
