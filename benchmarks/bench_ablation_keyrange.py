"""Ablation A3 (section 4.1): key-range locking vs the hybrid mechanism.

On an *ordered* key domain both phantom-protection schemes work; the
paper's point is their cost profile.  Key-range locking takes
|result| + 1 cheap physical locks per scan and a single gap probe per
insert; the hybrid mechanism attaches one predicate per visited node and
makes inserts run ``consistent()`` against the target leaf's list.  On a
non-ordered domain (R-tree rectangles) key-range locking is simply
inapplicable — the reason the hybrid mechanism exists.
"""

from __future__ import annotations

import time

from repro.baselines.keyrange import KeyRangeIndex
from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.lock.manager import LockManager

SCANS = 50
RANGE_WIDTH = 20
PRELOAD = 500


def keyrange_cost() -> dict:
    index = KeyRangeIndex(LockManager(default_timeout=10.0))
    for i in range(PRELOAD):
        index.insert(0, i, f"r{i}")
    index.end(0)
    start = time.perf_counter()
    locks_before = index.lock_requests
    for s in range(SCANS):
        xid = 100 + s
        lo = (s * 7) % (PRELOAD - RANGE_WIDTH)
        index.scan(xid, lo, lo + RANGE_WIDTH - 1)
        index.end(xid)
    elapsed = time.perf_counter() - start
    return {
        "mechanism": "key-range locking",
        "scans": SCANS,
        "locks_or_attachments_per_scan": round(
            (index.lock_requests - locks_before) / SCANS, 1
        ),
        "scan_us": round(elapsed / SCANS * 1e6, 1),
        "ordered_domain_required": "yes",
    }


def hybrid_cost() -> dict:
    db = Database(page_capacity=8, lock_timeout=10.0)
    tree = db.create_tree("a3", BTreeExtension())
    setup = db.begin()
    for i in range(PRELOAD):
        tree.insert(setup, i, f"r{i}")
    db.commit(setup)
    attaches_before = tree.predicates.stats.snapshot()["attaches"]
    start = time.perf_counter()
    for s in range(SCANS):
        txn = db.begin()
        lo = (s * 7) % (PRELOAD - RANGE_WIDTH)
        tree.search(txn, Interval(lo, lo + RANGE_WIDTH - 1))
        db.commit(txn)
    elapsed = time.perf_counter() - start
    attaches = (
        tree.predicates.stats.snapshot()["attaches"] - attaches_before
    )
    return {
        "mechanism": "hybrid predicate locking",
        "scans": SCANS,
        "locks_or_attachments_per_scan": round(attaches / SCANS, 1),
        "scan_us": round(elapsed / SCANS * 1e6, 1),
        "ordered_domain_required": "no",
    }


def test_a3_keyrange_vs_hybrid(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(keyrange_cost())
        rows.append(hybrid_cost())

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A3 — phantom protection on an ordered domain: key-range "
        "locking vs the hybrid mechanism",
        rows,
    )
    # both mechanisms do bounded per-scan work; the structural point is
    # the last column: key-range locking *requires* the ordered domain
    by_mech = {r["mechanism"]: r for r in rows}
    assert (
        by_mech["key-range locking"]["ordered_domain_required"] == "yes"
    )
    assert (
        by_mech["hybrid predicate locking"]["ordered_domain_required"]
        == "no"
    )
    assert all(r["locks_or_attachments_per_scan"] > 0 for r in rows)
