"""Claim C5: restart recovery restores consistency from any crash.

A battery of seeded crash trials (random committed/uncommitted mixes,
random flush points, optional crash inside a structure modification);
every trial must recover to a structurally consistent tree containing
exactly the committed work.  The second table measures recovery time
and work as a function of log length, with and without a checkpoint.
"""

from __future__ import annotations

import time

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.crash import CrashRecoveryHarness, trial_rows
from repro.wal.recovery import RestartRecovery

TRIALS = 20
SMO_TRIALS = 6


def test_c5_crash_battery(benchmark, emit):
    harness = CrashRecoveryHarness()
    rows = []
    results = []

    def run():
        rows.clear()
        results.clear()
        ok = 0
        for seed in range(TRIALS):
            result = harness.run_trial(seed, txns=15)
            results.append(result)
            ok += result.ok
        rows.append(
            {
                "kind": "random crash",
                "trials": TRIALS,
                "recovered_ok": ok,
            }
        )
        ok = interrupted = 0
        for seed in range(SMO_TRIALS):
            result = harness.run_trial(
                500 + seed, txns=10, crash_mid_smo=True
            )
            results.append(result)
            ok += result.ok
            interrupted += result.crashed_mid_smo
        rows.append(
            {
                "kind": "crash inside split SMO",
                "trials": SMO_TRIALS,
                "recovered_ok": ok,
            }
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("C5 — crash/recovery battery (committed == recovered)", rows)
    failed = [r for r in results if not r.ok]
    if failed:
        # surface per-trial diagnostics (seed + first error), not just
        # the aggregate count, so a failing seed is actionable from the
        # CI log
        emit("C5 — failing trials", trial_rows(failed))
    assert all(r["recovered_ok"] == r["trials"] for r in rows)


def recovery_time(txns: int, checkpoint: bool) -> dict:
    db = Database(page_capacity=8)
    tree = db.create_tree("t", BTreeExtension())
    for t in range(txns):
        txn = db.begin()
        for i in range(10):
            tree.insert(txn, t * 100 + i, f"{t}-{i}")
        db.commit(txn)
        if checkpoint and t == txns // 2:
            db.pool.flush_all()
            db.checkpoint()
    log_records = db.log.end_lsn
    db.crash()
    db2 = Database(store=db.store, log=db.log, page_capacity=8)
    start = time.perf_counter()
    report = RestartRecovery(db2, {"t": BTreeExtension()}).run()
    elapsed = time.perf_counter() - start
    return {
        "txns": txns,
        "checkpoint": "yes" if checkpoint else "no",
        "log_records": log_records,
        "redo_start": report.redo_start_lsn,
        "redone": report.redone_records,
        "recovery_ms": round(elapsed * 1e3, 1),
    }


def test_c5_recovery_time_vs_log_length(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        for txns in (20, 80, 320):
            rows.append(recovery_time(txns, checkpoint=False))
        rows.append(recovery_time(320, checkpoint=True))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("C5b — recovery time vs log length (and checkpoint effect)", rows)
    no_cp = [r for r in rows if r["checkpoint"] == "no"]
    with_cp = [r for r in rows if r["checkpoint"] == "yes"][0]
    # recovery work grows with the log; a checkpoint truncates the redo
    assert no_cp[-1]["redone"] > no_cp[0]["redone"]
    assert with_cp["redo_start"] > no_cp[-1]["redo_start"]
    assert with_cp["redone"] < no_cp[-1]["redone"]
