"""Claim C4: unique-index insertion (section 8).

Racing inserters of the same key must never both commit; the race
resolves through predicate blocking (one side waits, re-probes, reports
the duplicate) or, when the interleaving is symmetric, through a
deadlock the lock manager breaks.  This benchmark fires many racing
pairs and tabulates the outcomes; exactly one commit per key is the
invariant.
"""

from __future__ import annotations

import threading

from repro.database import Database
from repro.errors import TransactionAbort, UniqueViolationError
from repro.ext.btree import BTreeExtension, Interval

KEYS = 25
RACERS_PER_KEY = 2


def race_unique() -> dict:
    db = Database(page_capacity=8, lock_timeout=20.0)
    tree = db.create_tree("uq", BTreeExtension(), unique=True)
    outcomes = {"committed": 0, "violation": 0, "deadlock": 0}
    lock = threading.Lock()

    def racer(key: int, rid: str, barrier: threading.Barrier):
        barrier.wait()
        txn = db.begin()
        try:
            tree.insert(txn, key, rid)
            db.commit(txn)
            result = "committed"
        except UniqueViolationError:
            db.rollback(txn)
            result = "violation"
        except TransactionAbort:
            try:
                db.rollback(txn)
            except Exception:
                pass
            result = "deadlock"
        with lock:
            outcomes[result] += 1

    for key in range(KEYS):
        barrier = threading.Barrier(RACERS_PER_KEY)
        threads = [
            threading.Thread(
                target=racer,
                args=(key, f"k{key}-r{i}", barrier),
                daemon=True,
            )
            for i in range(RACERS_PER_KEY)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)

    txn = db.begin()
    stored = tree.search(txn, Interval(0, KEYS))
    db.commit(txn)
    keys_stored = [k for k, _ in stored]
    return {
        "keys_raced": KEYS,
        "committed": outcomes["committed"],
        "violations": outcomes["violation"],
        "deadlock_aborts": outcomes["deadlock"],
        "stored": len(keys_stored),
        "duplicates": len(keys_stored) - len(set(keys_stored)),
    }


def test_c4_unique_insert_race(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(race_unique())

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "C4 — racing unique-index inserters (2 racers per key): "
        "outcome distribution",
        rows,
    )
    row = rows[0]
    assert row["duplicates"] == 0  # the invariant of section 8
    assert row["committed"] == row["stored"] == KEYS
    # the losing racers all ended in a *reported* outcome, never silence
    assert (
        row["committed"] + row["violations"] + row["deadlock_aborts"]
        == KEYS * RACERS_PER_KEY
    )
