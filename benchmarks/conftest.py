"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table and also appends it to
``benchmarks/results.txt`` so the numbers survive pytest's output
capture; the pytest-benchmark timing summary complements them.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.report import render_table

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
BENCH_DIR = pathlib.Path(__file__).parent


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Emit an experiment table to stdout and to results.txt."""

    def _emit(title: str, rows, columns=None) -> None:
        text = render_table(rows, title=title, columns=columns)
        with capsys.disabled():
            print()
            print(text)
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")

    return _emit


@pytest.fixture
def emit_json():
    """Merge a machine-readable payload into ``BENCH_<name>.json``.

    Each benchmark module owns one JSON artifact; tests merge their
    section into it key by key, so a partial run updates only its own
    sections.  Keys are sorted and the file ends with a newline so the
    committed artifacts diff cleanly.
    """

    def _emit_json(name: str, payload: dict) -> None:
        path = BENCH_DIR / f"BENCH_{name}.json"
        data: dict = {}
        if path.exists():
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError:
                data = {}
        data.update(payload)
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    return _emit_json
