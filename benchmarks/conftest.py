"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table and also appends it to
``benchmarks/results.txt`` so the numbers survive pytest's output
capture; the pytest-benchmark timing summary complements them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.report import render_table

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def emit(capsys):
    """Emit an experiment table to stdout and to results.txt."""

    def _emit(title: str, rows, columns=None) -> None:
        text = render_table(rows, title=title, columns=columns)
        with capsys.disabled():
            print()
            print(text)
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")

    return _emit
