"""Ablation A1 (section 10.1): dedicated NSN counter vs LSN-as-NSN.

The base design reads a tree-global counter once per qualifying child
pointer — synchronization traffic the paper worries becomes a
bottleneck.  The LSN optimization memorizes the parent page's LSN
instead, touching the shared counter only once per operation (at the
root).  The experiment counts shared-counter reads and compares
multi-threaded throughput for both sources.
"""

from __future__ import annotations

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import TransactionalDriver
from repro.workload.generator import MixSpec, ScalarWorkload

OPS = 600
PRELOAD = 300
THREADS = 8


def run_source(nsn_source: str) -> dict:
    db = Database(page_capacity=8, lock_timeout=30.0)
    tree = db.create_tree("a1", BTreeExtension(), nsn_source=nsn_source)
    workload = ScalarWorkload(
        seed=31, mix=MixSpec(insert=0.4, search=0.6), key_space=100_000
    )
    driver = TransactionalDriver(db, tree, ops_per_txn=4)
    driver.preload(workload.preload(PRELOAD))
    metrics = driver.run(list(workload.ops(OPS)), threads=THREADS)
    return {
        "nsn_source": nsn_source,
        "ops": metrics.ops,
        "ops_per_sec": round(metrics.ops_per_sec, 1),
        "global_counter_reads": tree.nsn.global_reads,
        "reads_per_op": round(
            tree.nsn.global_reads / max(1, metrics.ops), 2
        ),
        "splits": tree.stats.splits,
    }


def test_a1_nsn_source_ablation(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(run_source("counter"))
        rows.append(run_source("lsn"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A1 — NSN source ablation: dedicated global counter vs "
        "LSN-as-NSN (§10.1)",
        rows,
    )
    by_source = {r["nsn_source"]: r for r in rows}
    # the optimization's point: far fewer shared-counter reads
    assert (
        by_source["lsn"]["global_counter_reads"]
        < by_source["counter"]["global_counter_reads"] / 2
    )
    # correctness is covered by the test suite; both runs must complete
    # essentially the whole stream (a few ops may fall to deadlock-abort
    # retries under contention)
    assert by_source["lsn"]["ops"] >= OPS * 0.95
    assert by_source["counter"]["ops"] >= OPS * 0.95
