"""Serving layer under overload: shed, don't collapse.

Three experiments over :class:`repro.server.DatabaseServer`:

1. **Saturation goodput** (closed loop).  A handful of closed-loop
   clients — one outstanding request each — measure how fast the
   server goes when nobody overloads it.  Closed-loop clients cannot
   push past capacity by construction, so this is the honest
   capacity estimate ``G_sat`` the overload gate is anchored to.

2. **Overload** (open loop).  Poisson arrival schedules at **2x**
   the measured capacity, driven through pipelined clients with a
   per-op deadline.  The gates are the shed-don't-collapse contract:

   * goodput under 2x offered load stays >= 70% of ``G_sat`` (an
     unbounded-queue server collapses here: all capacity goes to
     requests whose callers gave up);
   * p99 latency of *admitted* (completed) ops stays within the SLO —
     deadlines bound queue wait, so admitted work is fresh work;
   * accounting is exact on **both** ledgers: every client frame has
     one outcome, every server-side offered op lands in exactly one
     terminal counter (no silent drops anywhere).

3. **Hung partition** (cluster backend).  SIGSTOP one partition
   worker mid-serving: the RPC deadline must convert the hang into
   bounded ``RetryLater`` backpressure, the circuit breaker must
   fast-fail while cooling down, and clients of the healthy partition
   must not stall behind the hung one.

``BENCH_serving.json`` receives the machine-readable numbers;
``BENCH_QUICK=1`` shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time

from repro.cluster import PartitionedDatabase
from repro.database import Database
from repro.errors import RetryLater
from repro.ext.btree import BTreeExtension, Interval
from repro.server import (
    ClusterBackend,
    DatabaseServer,
    LocalBackend,
    ReproClient,
)
from repro.server.loadgen import (
    LoadReport,
    run_closed_loop,
    run_open_loop,
)
from repro.workload.generator import PoissonArrivals

QUICK = bool(os.environ.get("BENCH_QUICK"))

KEY_SPACE = 5_000
SAT_CLIENTS = 4
SAT_OPS = 150 if QUICK else 400  # per closed-loop client
#: one pipelined client suffices for open-loop load (it never waits
#: for responses); more would just burn shared CPU on framing
OVERLOAD_CLIENTS = 1
OVERLOAD_SECS = 1.5 if QUICK else 3.0
OVERLOAD_FACTOR = 2.0
#: per-op deadline stamped by the overload clients
DEADLINE = 0.25
#: latency SLO for admitted (completed) ops
SLO_P99 = 0.5
GOODPUT_FLOOR = 0.70
#: cap the offered rate so the schedule stays drivable on tiny runners
MAX_RATE_PER_CLIENT = 4_000.0


def _preload(host: str, port: int) -> None:
    with ReproClient(host, port, "preload") as client:
        for base in range(0, KEY_SPACE, 500):
            client.multi_put(
                "serve",
                [(k, f"pre-{k}") for k in range(base, base + 500)],
            )


def _mixed_plan(seed: int, ops: int) -> list:
    """Batched reads + range scans over the preloaded tree.

    Two deliberate choices:

    * The request is the unit of admission, so each one carries a
      real slice of work (an 8-key batch or a range scan) — a
      workload whose per-request cost is comparable to its framing
      cost would measure the GIL cost of answering frames, not the
      server's shed behavior.
    * The plan is *stationary* (read-only over a fixed preload): an
      insert-heavy plan grows the tree between the saturation and
      overload phases, and the gate would then compare goodput
      against a capacity measured on a cheaper tree.  Write-path
      serving is exercised by the smoke battery and chaos trials;
      this gate isolates overload scheduling.
    """
    rng = random.Random(seed)
    plan = []
    for _ in range(ops):
        if rng.random() < 0.70:
            keys = [rng.randrange(KEY_SPACE) for _ in range(8)]
            plan.append(("multi_get", ("serve", keys)))
        else:
            lo = rng.randrange(KEY_SPACE - 60)
            plan.append(("search", ("serve", Interval(lo, lo + 60))))
    return plan


def _server_counts(server: DatabaseServer) -> dict:
    return server.metrics.snapshot().get("server", {})


def _dig(tree: dict, *path) -> int:
    node = tree
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return 0
        node = node[part]
    return node if isinstance(node, int) else 0


def _assert_server_ledger_exact(server: DatabaseServer) -> dict:
    """The shed accounting invariants, class by class, to the op."""
    counts = _server_counts(server)
    out = {}
    for klass in ("point", "scan"):
        offered = _dig(counts, "offered", klass)
        admitted = _dig(counts, "admitted", klass)
        rejected = sum(
            _dig(counts, "rejected", reason, klass)
            for reason in ("rate", "queue", "stopping")
        )
        shed_admission = _dig(counts, "shed", "admission", klass)
        terminal = sum(
            (
                _dig(counts, "completed", klass),
                _dig(counts, "failed", klass),
                _dig(counts, "shed", "dequeue", klass),
                _dig(counts, "shed", "backend", klass),
                _dig(counts, "shed", "stopping", klass),
            )
        )
        assert offered == admitted + rejected + shed_admission, (
            f"{klass}: offered {offered} != admitted {admitted} + "
            f"rejected {rejected} + shed@admission {shed_admission}"
        )
        assert admitted == terminal, (
            f"{klass}: admitted {admitted} != terminal {terminal}"
        )
        out[klass] = {
            "offered": offered,
            "admitted": admitted,
            "rejected": rejected,
            "shed_admission": shed_admission,
            "completed": _dig(counts, "completed", klass),
            "shed_dequeue": _dig(counts, "shed", "dequeue", klass),
        }
    return out


def _run_generators(fns) -> tuple[LoadReport, float]:
    """Run load generators in forked child processes.

    Client CPU (framing, pickling, schedule pacing) must not compete
    with the server for the GIL, or the measurement confounds "server
    collapsed" with "generator starved the server" — at 2x offered
    load the generators alone would eat ~half the process's cycles.
    On single-core runners even separate processes contend, so the
    children drop their scheduler priority: the gate measures the
    server's shed behavior, not OS fairness between the server and
    its synthetic load.  Each child returns ``(LoadReport, elapsed)``;
    goodput is computed against the slowest generator's window
    (submit + drain).
    """
    queue: multiprocessing.Queue = multiprocessing.Queue()

    def child(fn) -> None:
        try:
            os.nice(10)
        except OSError:
            pass  # lint: allow(swallowed-fault): priority drop is best-effort
        start = time.monotonic()
        report = fn()
        queue.put((report, time.monotonic() - start))

    procs = [
        multiprocessing.Process(target=child, args=(fn,), daemon=True)
        for fn in fns
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=120.0) for _ in fns]
    for p in procs:
        p.join(timeout=10.0)
    total = LoadReport()
    elapsed = 0.0
    for report, window in results:
        total.merge(report)
        elapsed = max(elapsed, window)
    return total, elapsed


def _measure_saturation(host: str, port: int) -> tuple[float, LoadReport]:
    """Closed-loop goodput: completed ops/sec at natural pacing."""

    def client(seed: int):
        return lambda: run_closed_loop(
            host,
            port,
            _mixed_plan(seed, SAT_OPS),
            client_id=f"sat-{seed}",
            deadline=5.0,
        )

    total, elapsed = _run_generators(
        [client(1000 + c) for c in range(SAT_CLIENTS)]
    )
    assert total.balanced(), total.as_dict()
    return total.completed / elapsed, total


def test_overload_sheds_instead_of_collapsing(emit, emit_json):
    db = Database()
    db.create_tree("serve", BTreeExtension())
    server = DatabaseServer(LocalBackend(db), port=0).start()
    try:
        _preload("127.0.0.1", server.port)
        g_sat, sat_total = _measure_saturation(
            "127.0.0.1", server.port
        )

        # -- phase B: open-loop Poisson at 2x measured capacity -----
        per_client = min(
            MAX_RATE_PER_CLIENT,
            OVERLOAD_FACTOR * g_sat / OVERLOAD_CLIENTS,
        )

        def flood(seed: int):
            def run():
                arrivals = PoissonArrivals(
                    rate=per_client, duration=OVERLOAD_SECS, seed=seed
                )
                n = len(arrivals.offsets())
                schedule = arrivals.schedule(_mixed_plan(seed, n))
                return run_open_loop(
                    "127.0.0.1",
                    server.port,
                    schedule,
                    client_id=f"flood-{seed}",
                    deadline=DEADLINE,
                )

            return run

        flood_total, elapsed = _run_generators(
            [flood(7_000 + c) for c in range(OVERLOAD_CLIENTS)]
        )
        goodput = flood_total.completed / elapsed
        offered_rate = flood_total.offered / elapsed
        p99 = flood_total.percentile(0.99)

        # exact accounting on both sides of the wire
        assert flood_total.balanced(), flood_total.as_dict()
        ledger = _assert_server_ledger_exact(server)

        emit(
            "serving: shed-don't-collapse at 2x capacity",
            [
                {
                    "phase": "saturation",
                    "offered/s": round(g_sat, 1),
                    "goodput/s": round(g_sat, 1),
                    "p99_ms": round(
                        sat_total.percentile(0.99) * 1e3, 2
                    ),
                    "shed": 0,
                },
                {
                    "phase": "2x overload",
                    "offered/s": round(offered_rate, 1),
                    "goodput/s": round(goodput, 1),
                    "p99_ms": round(p99 * 1e3, 2),
                    "shed": flood_total.retries
                    + flood_total.deadline_exceeded,
                },
            ],
        )
        emit_json(
            "serving",
            {
                "saturation_goodput_per_sec": round(g_sat, 2),
                "overload": {
                    "offered_per_sec": round(offered_rate, 2),
                    "goodput_per_sec": round(goodput, 2),
                    "goodput_ratio": round(goodput / g_sat, 4),
                    "p99_completed_secs": round(p99, 5),
                    "slo_secs": SLO_P99,
                    "deadline_secs": DEADLINE,
                    "client_ledger": flood_total.as_dict(),
                    "server_ledger": ledger,
                },
                "quick": QUICK,
            },
        )

        # the headline gates
        assert goodput >= GOODPUT_FLOOR * g_sat, (
            f"goodput collapsed: {goodput:.1f}/s under overload vs "
            f"{g_sat:.1f}/s saturated "
            f"(floor {GOODPUT_FLOOR:.0%})"
        )
        assert p99 <= SLO_P99, (
            f"admitted-op p99 {p99:.3f}s blew the {SLO_P99}s SLO"
        )
    finally:
        server.stop()
        db.shutdown()


def test_hung_partition_trips_breaker_within_bound(emit_json):
    rpc_timeout = 0.3
    cooldown = 0.5
    cluster = PartitionedDatabase(
        2,
        router="hash",
        rpc_timeout=rpc_timeout,
        breaker_cooldown=cooldown,
    )
    cluster.create_tree("serve", BTreeExtension())
    server = DatabaseServer(ClusterBackend(cluster), port=0).start()
    try:
        with ReproClient(
            "127.0.0.1", server.port, "breaker-bench"
        ) as client:
            k0 = next(
                k
                for k in range(KEY_SPACE)
                if cluster.router.partition_of(k) == 0
            )
            k1 = next(
                k
                for k in range(KEY_SPACE)
                if cluster.router.partition_of(k) == 1
            )
            client.put("serve", k0, "r0")
            client.put("serve", k1, "r1")

            os.kill(
                cluster.supervisor.handles[0].process.pid,
                signal.SIGSTOP,
            )
            start = time.monotonic()
            try:
                client.get("serve", k0, timeout=5.0)
                raise AssertionError("hung partition served a read")
            except RetryLater as exc:
                trip_secs = time.monotonic() - start
                first_reason = exc.reason

            start = time.monotonic()
            healthy = client.get("serve", k1, timeout=5.0)
            healthy_secs = time.monotonic() - start

            start = time.monotonic()
            try:
                client.get("serve", k0, timeout=5.0)
                raise AssertionError("open breaker admitted a call")
            except RetryLater as exc:
                fastfail_secs = time.monotonic() - start
                second_reason = exc.reason

        emit_json(
            "serving",
            {
                "hung_partition": {
                    "rpc_timeout_secs": rpc_timeout,
                    "trip_secs": round(trip_secs, 4),
                    "first_reason": first_reason,
                    "fastfail_secs": round(fastfail_secs, 4),
                    "second_reason": second_reason,
                    "healthy_partition_secs": round(healthy_secs, 4),
                    "healthy_rids": healthy,
                }
            },
        )

        # the hang is converted to backpressure within the deadline
        # bound (plus queue/scheduling slack), not the client's 5s
        assert first_reason == "partition_timeout"
        assert trip_secs < rpc_timeout + 1.0, trip_secs
        # the open breaker fails fast — no second deadline wait
        assert second_reason == "circuit_open"
        assert fastfail_secs < rpc_timeout / 2, fastfail_secs
        # unrelated clients never stalled behind the hung partition
        assert healthy == ["r1"]
        assert healthy_secs < rpc_timeout, healthy_secs
    finally:
        server.stop()
        cluster.shutdown()
