"""Batched multi-op APIs and bulk load: page fixes per operation.

Deterministic gates (counted, not timed — see bench_hotpath.py for the
rationale):

1. **multi_put shares descents.**  Inserting N sorted keys through
   ``multi_put`` must touch at least **3x fewer** pages than the same N
   keys as point inserts: a point insert descends from the root every
   time, a batch descends once per *leaf run* and appends the whole run
   under one latch.  Page touches are counted exactly as buffer-pool
   ``hits + misses`` deltas.

2. **bulk_load beats even multi_put.**  Building an empty tree
   bottom-up writes each page once — no descents at all — so its
   fixes/key must come in below the multi_put path's.

3. **The WAL writer is strictly opt-in.**  With ``wal_writer=False``
   (the default) no writer thread exists, no writer stats move, and a
   serial committer forces the log exactly once per commit.

A mixed batch-vs-point workload wall-clock comparison is reported as
context without a tight gate.  ``BENCH_batch.json`` receives the
machine-readable numbers; ``BENCH_QUICK=1`` shrinks the workloads for
CI smoke runs.
"""

from __future__ import annotations

import os

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import TransactionalDriver
from repro.workload.generator import MixSpec, ScalarWorkload

QUICK = bool(os.environ.get("BENCH_QUICK"))

PAGE_CAP = 16
N_KEYS = 240 if QUICK else 1000
WALL_OPS = 80 if QUICK else 300
WALL_THREADS = 4


def _fresh_db() -> tuple[Database, object]:
    db = Database(page_capacity=PAGE_CAP, pool_capacity=4096)
    tree = db.create_tree("batch", BTreeExtension())
    return db, tree


def _pairs(n: int) -> list[tuple[int, str]]:
    return [(k, f"r{k}") for k in range(n)]


def measure_point_inserts(n: int) -> dict:
    db, tree = _fresh_db()
    pool = db.pool
    txn = db.begin()
    before = pool.hits + pool.misses
    for key, rid in _pairs(n):
        tree.insert(txn, key, rid)
    after = pool.hits + pool.misses
    db.commit(txn)
    fixes = after - before
    db.shutdown()
    return {"path": "point_insert", "keys": n, "fixes": fixes,
            "fixes_per_key": round(fixes / n, 3)}


def measure_multi_put(n: int) -> dict:
    db, tree = _fresh_db()
    pool = db.pool
    txn = db.begin()
    before = pool.hits + pool.misses
    tree.multi_put(txn, _pairs(n))
    after = pool.hits + pool.misses
    db.commit(txn)
    fixes = after - before
    stats = tree.stats.snapshot()
    db.shutdown()
    return {
        "path": "multi_put",
        "keys": n,
        "fixes": fixes,
        "fixes_per_key": round(fixes / n, 3),
        "leaf_runs": stats["batch_leaf_runs"],
        "descents_saved": stats["batch_descents_saved"],
    }


def measure_bulk_load(n: int) -> dict:
    db, tree = _fresh_db()
    pool = db.pool
    txn = db.begin()
    before = pool.hits + pool.misses
    tree.bulk_load(txn, _pairs(n))
    after = pool.hits + pool.misses
    db.commit(txn)
    fixes = after - before
    stats = tree.stats.snapshot()
    db.shutdown()
    return {
        "path": "bulk_load",
        "keys": n,
        "fixes": fixes,
        "fixes_per_key": round(fixes / n, 3),
        "pages_built": stats["bulk_pages_built"],
    }


def test_batch_insert_shares_descents(benchmark, emit, emit_json):
    results: list[dict] = []

    def run():
        results.clear()
        results.append(measure_point_inserts(N_KEYS))
        results.append(measure_multi_put(N_KEYS))
        results.append(measure_bulk_load(N_KEYS))

    benchmark.pedantic(run, rounds=1, iterations=1)
    point, multi, bulk = results
    emit(
        f"BATCH — page fixes loading {N_KEYS} sorted keys, page "
        f"capacity {PAGE_CAP} (deterministic: counted, not timed)",
        results,
        columns=["path", "keys", "fixes", "fixes_per_key"],
    )
    emit_json(
        "batch",
        {
            "page_capacity": PAGE_CAP,
            "keys": N_KEYS,
            "point_insert": point,
            "multi_put": multi,
            "bulk_load": bulk,
            "fix_ratio_point_over_multi": round(
                point["fixes"] / max(1, multi["fixes"]), 2
            ),
        },
    )
    # ISSUE 7 gate: the batched path must touch >= 3x fewer pages
    assert point["fixes"] >= 3 * multi["fixes"], (
        f"multi_put saved too little: point={point['fixes']} fixes, "
        f"multi_put={multi['fixes']} fixes "
        f"(ratio {point['fixes'] / max(1, multi['fixes']):.2f}x < 3x)"
    )
    assert multi["descents_saved"] > 0
    assert multi["leaf_runs"] < N_KEYS
    # bottom-up build touches each page ~once: cheaper than multi_put
    assert bulk["fixes"] < multi["fixes"], (
        f"bulk_load={bulk['fixes']} fixes not below "
        f"multi_put={multi['fixes']}"
    )
    assert bulk["pages_built"] > 0


def test_wal_writer_strictly_opt_in(benchmark, emit):
    """Writer off (default): no thread, no writer stats, one force per
    serial commit — the pipeline must cost nothing when unused."""
    out: dict = {}

    def run():
        out.clear()
        db = Database(page_capacity=PAGE_CAP)
        tree = db.create_tree("batch", BTreeExtension())
        assert db.log.wal_writer_active is False
        assert db.log._writer_thread is None
        before = db.log.stats.snapshot()
        commits = 10
        for i in range(commits):
            txn = db.begin()
            tree.insert(txn, i, f"r{i}")
            db.commit(txn)
        after = db.log.stats.snapshot()
        out["commits"] = commits
        out["flushes"] = after["flushes"] - before["flushes"]
        out["writer_batches"] = after["writer_batches"]
        out["writer_thread"] = db.log._writer_thread
        db.shutdown()

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "BATCH — WAL writer dormancy with wal_writer=False (default)",
        [
            {
                "commits": out["commits"],
                "flushes": out["flushes"],
                "writer_batches": out["writer_batches"],
                "writer_thread": str(out["writer_thread"]),
            }
        ],
        columns=["commits", "flushes", "writer_batches", "writer_thread"],
    )
    assert out["writer_thread"] is None
    assert out["writer_batches"] == 0
    # serial committer, inline path: exactly one force per commit
    assert out["flushes"] == out["commits"]


def test_mixed_batch_workload_wall_clock(benchmark, emit, emit_json):
    """Context only — throughput of a mixed workload issued as batches
    vs the same mix as point ops.  No tight gate (wall clock); the
    deterministic fixes gates above are the contract."""
    results: dict[str, float] = {}

    def run_mix(label: str, mix: MixSpec) -> None:
        db = Database(
            page_capacity=PAGE_CAP,
            pool_capacity=4096,
            io_delay=0.0002,
            wal_writer=True,
        )
        tree = db.create_tree("batch", BTreeExtension())
        workload = ScalarWorkload(
            seed=23, mix=mix, key_space=50_000, batch_size=16
        )
        driver = TransactionalDriver(db, tree, ops_per_txn=4)
        driver.preload(workload.preload(300))
        ops = list(workload.ops(WALL_OPS))
        # batched ops carry whole key batches: normalize to keys touched
        keys = sum(
            len(op.pairs) or len(op.keys) or 1 for op in ops
        )
        metrics = driver.run(ops, threads=WALL_THREADS)
        results[label] = keys / metrics.elapsed if metrics.elapsed else 0.0
        db.shutdown()

    def run():
        results.clear()
        run_mix("point", MixSpec(insert=0.6, search=0.4))
        run_mix(
            "batched",
            MixSpec(
                insert=0.1,
                search=0.3,
                multi_put=0.4,
                multi_get=0.1,
                multi_delete=0.1,
            ),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"BATCH — mixed workload, {WALL_THREADS} threads, WAL writer on "
        "(report; wall clock; normalized to keys touched per second)",
        [
            {"mix": label, "keys_per_sec": round(v, 1)}
            for label, v in results.items()
        ],
        columns=["mix", "keys_per_sec"],
    )
    emit_json(
        "batch",
        {
            "mixed_wall_clock": {
                label: round(v, 1) for label, v in results.items()
            }
        },
    )
    assert results["point"] > 0 and results["batched"] > 0
