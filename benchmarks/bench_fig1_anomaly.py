"""Figure 1 / Figure 2 reproduction as a statistical experiment.

The deterministic single-interleaving reproduction lives in
``tests/scenarios``; this benchmark measures the anomaly *rate* under an
undirected race: searchers and splitting inserters hammer the same tree
for a fixed time budget and every search result is compared against
ground truth for stable (preloaded) rows.  The naive tree loses keys at
a measurable rate; the link tree — same storage, same workload, same
simulated I/O latency — never does, at the price of a few rightlink
follows.
"""

from __future__ import annotations

import random
import threading
import time

from repro.baselines.simpletree import make_baseline
from repro.ext.btree import BTreeExtension, Interval

KEY_SPACE = 4_000
PRELOAD = 200
TIME_BUDGET = 2.5  # seconds per protocol
IO_DELAY = 0.0002


def race_once(protocol: str, seed: int) -> dict:
    # Simulated I/O latency widens the window between reading a parent
    # entry and visiting the child — exactly where Figure 1's race
    # lives.  Both protocols pay the same latency.
    tree = make_baseline(
        protocol,
        BTreeExtension(),
        page_capacity=4,
        io_delay=IO_DELAY,
        pool_capacity=64,
    )
    rng = random.Random(seed)
    preloaded = {}
    for i in range(PRELOAD):
        key = rng.randrange(KEY_SPACE)
        tree.insert(key, f"pre-{i}")
        preloaded[f"pre-{i}"] = key

    anomalies = [0]
    searches_done = [0]
    lost_examples: list = []
    deadline = time.perf_counter() + TIME_BUDGET
    stop = threading.Event()

    def searcher(sid: int):
        srng = random.Random(seed + 1 + sid)
        while not stop.is_set():
            lo = srng.randrange(KEY_SPACE - 300)
            found = {
                rid for _, rid in tree.search(Interval(lo, lo + 300))
            }
            expected = {
                rid
                for rid, key in preloaded.items()
                if lo <= key <= lo + 300
            }
            searches_done[0] += 1
            if not expected <= found:
                anomalies[0] += 1
                lost_examples.extend(sorted(expected - found)[:2])

    def writer(wid: int):
        wrng = random.Random(seed + 100 + wid)
        i = 0
        while time.perf_counter() < deadline:
            tree.insert(wrng.randrange(KEY_SPACE), f"w{wid}-{i}")
            i += 1

    searchers = [
        threading.Thread(target=searcher, args=(s,), daemon=True) for s in range(4)
    ]
    writers = [
        threading.Thread(target=writer, args=(w,), daemon=True) for w in range(2)
    ]
    for t in searchers + writers:
        t.start()
    for t in writers:
        t.join(60.0)
    stop.set()
    for t in searchers:
        t.join(30.0)
    return {
        "protocol": protocol,
        "searches": searches_done[0],
        "anomalies": anomalies[0],
        "anomaly_rate": round(
            anomalies[0] / max(1, searches_done[0]), 4
        ),
        "splits": tree.stats.splits,
        "rightlinks": tree.stats.rightlink_follows,
    }


def test_fig1_naive_vs_link_anomaly_rate(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        for protocol in ("naive", "link"):
            rows.append(race_once(protocol, seed=7))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Figure 1/2 — lost-key anomalies under racing splits "
        "(naive vs link protocol)",
        rows,
    )
    by_proto = {r["protocol"]: r for r in rows}
    # the link protocol must be anomaly-free and must actually have
    # exercised its compensation machinery
    assert by_proto["link"]["anomalies"] == 0
    assert by_proto["link"]["searches"] > 0
