"""Overhead of the observability layer (``repro.obs``).

The metrics registry is wired through every hot path — latch acquire
and release, buffer pin, lock waits, WAL appends, tree operations — so
its cost must be demonstrably negligible.  This benchmark runs the same
mixed workload as ``bench_claim_throughput.py`` (C1's full-system
configuration) twice: once on a normal database and once with
``metrics_enabled=False`` (every instrument a shared no-op, no clock
read anywhere), and holds the instrumented run to a <5% budget.

How the budget is enforced matters on shared hardware.  Wall-clock
throughput here swings +/-15% between *identical* runs (CPU steal), so
a 5% wall-clock gate would be a coin flip.  The gate is therefore a
deterministic proxy: cProfile counts every function call executed by
the identical single-thread op sequence under both configurations, and
the instrumented run must execute fewer than 5% more calls.  In this
pure-Python system, interpreter work is function calls — the sampled
latch timing, the gauge-based subsystem counters and the per-thread
shards exist precisely to keep that number down.  Wall-clock throughput
of the 8-thread workload is still measured (paired rounds, alternating
order, GC parked outside the timed windows, median ratio) and reported,
with a loose backstop assertion to catch catastrophic regressions.

Measured numbers (recorded in benchmarks/results.txt): ~1-2% extra
function calls, wall-clock overhead indistinguishable from machine
noise (median paired ratio ~0-5% depending on the run).
"""

from __future__ import annotations

import cProfile
import gc
import os
import statistics

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import TransactionalDriver
from repro.workload.generator import MixSpec, ScalarWorkload

#: CI smoke mode — smaller workload, same deterministic gates
QUICK = bool(os.environ.get("BENCH_QUICK"))

IO_DELAY = 0.0005
POOL = 40
PRELOAD = 200 if QUICK else 800
OPS = 100 if QUICK else 400
THREADS = 8
ROUNDS = 1 if QUICK else 5
#: ops for the deterministic single-thread call-count probe
PROBE_OPS = 500 if QUICK else 2000


def _build(metrics_enabled: bool, io_delay: float):
    db = Database(
        page_capacity=8,
        io_delay=io_delay,
        pool_capacity=POOL,
        lock_timeout=30.0,
        metrics_enabled=metrics_enabled,
    )
    tree = db.create_tree("obs", BTreeExtension())
    workload = ScalarWorkload(
        seed=17,
        mix=MixSpec(insert=0.5, search=0.5),
        key_space=50_000,
        selectivity=0.002,
    )
    driver = TransactionalDriver(db, tree, ops_per_txn=4)
    driver.preload(workload.preload(PRELOAD))
    return db, driver, workload


def run_once(metrics_enabled: bool) -> float:
    db, driver, workload = _build(metrics_enabled, IO_DELAY)
    metrics = driver.run(list(workload.ops(OPS)), threads=THREADS)
    if metrics_enabled:
        # the instrumented run must actually have been instrumented
        snap = metrics.metrics_snapshot
        assert snap["buffer"]["hits"] > 0
        assert snap["latch"]["acquisitions"] > 0
    else:
        assert metrics.metrics_snapshot == {}
    return metrics.ops_per_sec


def _probe(**db_kwargs):
    """Profile the deterministic single-thread op mix.

    Same seed, same op sequence, one thread, no I/O delay — the only
    difference between two probes is the configuration under test.
    Returns ``(total_function_calls, db)`` so callers can also gate on
    the subsystem counters of the finished run.  (The transaction loop
    runs inline rather than through the driver because cProfile
    observes only the calling thread.)
    """
    db = Database(
        page_capacity=8,
        io_delay=0.0,
        pool_capacity=POOL,
        lock_timeout=30.0,
        **db_kwargs,
    )
    tree = db.create_tree("obs", BTreeExtension())
    workload = ScalarWorkload(
        seed=17,
        mix=MixSpec(insert=0.5, search=0.5),
        key_space=50_000,
        selectivity=0.002,
    )
    driver = TransactionalDriver(db, tree, ops_per_txn=4)
    driver.preload(workload.preload(PRELOAD))
    ops = list(workload.ops(PROBE_OPS))
    profile = cProfile.Profile()
    profile.enable()
    i = 0
    while i < len(ops):
        txn = db.begin(driver.isolation)
        for op in ops[i : i + driver.ops_per_txn]:
            driver._apply(txn, op)
        db.commit(txn)
        i += driver.ops_per_txn
    profile.disable()
    calls = sum(entry.callcount for entry in profile.getstats())
    return calls, db


def count_calls(metrics_enabled: bool) -> int:
    """Function calls executed by the identical single-thread op mix."""
    calls, _db = _probe(metrics_enabled=metrics_enabled)
    return calls


def test_obs_overhead_under_5_percent(benchmark, emit):
    rows = []
    ratios: list[float] = []
    calls: dict[bool, int] = {}

    def run():
        rows.clear()
        ratios.clear()
        calls.clear()
        # The gate: deterministic call-count comparison.
        calls[False] = count_calls(metrics_enabled=False)
        calls[True] = count_calls(metrics_enabled=True)
        # The report: wall-clock throughput of the threaded workload.
        # Warmup pair, discarded (first run pays import/allocator
        # costs); GC parked during the timed pairs and run explicitly
        # between them, so collection points cannot differ per arm.
        run_once(metrics_enabled=False)
        run_once(metrics_enabled=True)
        gc.disable()
        try:
            for rnd in range(ROUNDS):
                # paired back-to-back rounds: drift hits both arms of a
                # pair roughly equally; the order inside a pair
                # alternates so within-process drift cannot
                # systematically penalize one arm
                gc.collect()
                if rnd % 2 == 0:
                    disabled = run_once(metrics_enabled=False)
                    enabled = run_once(metrics_enabled=True)
                else:
                    enabled = run_once(metrics_enabled=True)
                    disabled = run_once(metrics_enabled=False)
                ratios.append(enabled / disabled)
        finally:
            gc.enable()
        call_overhead = calls[True] / calls[False] - 1.0
        wall_overhead = 1.0 - statistics.median(ratios)
        rows.append(
            {
                "measure": "function calls (deterministic gate)",
                "metrics_off": calls[False],
                "metrics_on": calls[True],
                "overhead_pct": round(call_overhead * 100, 2),
            }
        )
        rows.append(
            {
                "measure": f"wall clock, {THREADS} threads (report)",
                "metrics_off": "-",
                "metrics_on": "-",
                "overhead_pct": round(wall_overhead * 100, 2),
            }
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "OBS — metrics/tracing overhead on the C1 full-system workload "
        f"(call counts over {PROBE_OPS} single-thread ops; wall clock "
        f"as median paired ratio over {ROUNDS} rounds)",
        rows,
        columns=["measure", "metrics_off", "metrics_on", "overhead_pct"],
    )
    call_ratio = calls[True] / calls[False]
    assert call_ratio < 1.05, (
        "observability overhead exceeds 5%: instrumented run executes "
        f"{calls[True]} function calls vs {calls[False]} uninstrumented "
        f"({(call_ratio - 1) * 100:.2f}% more)"
    )
    # Backstop only: wall clock on this hardware is too noisy for a
    # tight gate (see module docstring; median paired ratios for
    # identical code have been observed from 0.81 to 1.02 across runs),
    # but a catastrophic slowdown would still show through.
    median_ratio = statistics.median(ratios)
    assert median_ratio > 0.70, (
        "instrumented throughput collapsed: median enabled/disabled "
        f"ratio {median_ratio:.3f} "
        f"(ratios: {[round(r, 3) for r in ratios]})"
    )


#: fixed extra-calls budget for the always-on flight recorder (same
#: style as the 1.22% gate PR 1 set for the metrics registry): two ring
#: writes per transaction must stay within 1.22% extra function calls
FLIGHT_CALL_BUDGET = 1.0122


def test_flight_recorder_call_budget(benchmark, emit):
    """The always-on black box stays within its fixed call budget.

    Deterministic gate: the identical single-thread op mix is profiled
    with the flight recorder disabled and enabled (its default); the
    enabled run must execute < 1.22% more function calls.
    """
    state: dict[str, int] = {}

    def run():
        state["off"], db_off = _probe(flight_recorder=False)
        state["on"], db_on = _probe()
        # the arms must actually differ in the way we think they do
        assert db_off.flightrec is None
        assert db_on.flightrec is not None
        state["writes"] = db_on.flightrec.writes()
        assert state["writes"] > 0

    benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = state["on"] / state["off"]
    emit(
        "OBS — always-on flight recorder call budget "
        f"(probe of {PROBE_OPS} single-thread ops)",
        [
            {
                "measure": "function calls",
                "flightrec_off": state["off"],
                "flightrec_on": state["on"],
                "ring_writes": state["writes"],
                "overhead_pct": round((ratio - 1.0) * 100, 2),
            }
        ],
        columns=[
            "measure",
            "flightrec_off",
            "flightrec_on",
            "ring_writes",
            "overhead_pct",
        ],
    )
    assert ratio < FLIGHT_CALL_BUDGET, (
        "flight recorder exceeds its call budget: "
        f"{state['on']} calls vs {state['off']} without "
        f"({(ratio - 1) * 100:.2f}% extra, budget "
        f"{(FLIGHT_CALL_BUDGET - 1) * 100:.2f}%)"
    )


def test_spans_fully_dormant_when_off(benchmark, emit):
    """``op_tracing=False`` (the default) leaves spans at zero cost.

    Counter-gated, fully deterministic: with tracing off there is no
    tracker object at all, no ``op.*`` aggregate appears in the metrics
    snapshot, and — compared against an identical traced run — the
    knob causes zero extra ring writes in either the flight recorder or
    the tracer (spans never touch the event rings; their accounting
    lives on the thread-local span object).
    """
    state: dict[str, object] = {}

    def run():
        calls_off, db_off = _probe()
        calls_on, db_on = _probe(op_tracing=True)
        state["calls_off"] = calls_off
        state["calls_on"] = calls_on
        # dormant arm: no tracker, no aggregates
        assert db_off.spans is None
        assert "op" not in db_off.metrics.snapshot()
        # traced arm really traced every transaction + tree op
        assert db_on.spans is not None
        state["started"] = db_on.spans.started
        assert db_on.spans.started > 0
        assert "op" in db_on.metrics.snapshot()
        # the knob moved span accounting, not ring traffic: identical
        # write counts on both always-on rings
        assert db_off.flightrec.writes() == db_on.flightrec.writes()
        state["flight_writes"] = db_off.flightrec.writes()
        assert len(db_off.metrics.tracer) == len(db_on.metrics.tracer)

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "OBS — span dormancy when op_tracing is off "
        f"(probe of {PROBE_OPS} single-thread ops)",
        [
            {
                "measure": "function calls",
                "tracing_off": state["calls_off"],
                "tracing_on": state["calls_on"],
                "spans_started": state["started"],
                "flight_writes_delta": 0,
            }
        ],
        columns=[
            "measure",
            "tracing_off",
            "tracing_on",
            "spans_started",
            "flight_writes_delta",
        ],
    )
