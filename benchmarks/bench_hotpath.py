"""Hot-path scalability: sharded buffer pool + leaf-hint descents.

Two properties are gated, both **deterministically** — by counters the
code maintains itself, not by wall clock (see bench_obs_overhead.py for
why wall-clock gates are a coin flip on shared hardware):

1. **Leaf hints save descents.**  The same localized point-insert
   workload runs against a warm tree (height >= 3) twice, hints off and
   hints on.  Every page fix is a buffer-pool pin, so ``hits + misses``
   counts exactly how many pages each configuration touched; with hints
   on, the average per insert must drop by at least one full page fix
   (the hinted path latches the target leaf directly instead of
   descending from the root).

2. **A resident pin is shard-local.**  Pinning a cached page acquires
   exactly one mutex — the page's own shard's — which is what lets N
   threads on disjoint working sets proceed without serializing on a
   pool-wide lock.  Asserted via each shard's ``lock_acquisitions``
   counter.

Wall-clock throughput of a multi-threaded mixed workload is reported
for both pool layouts (1 shard vs 8) as context, without a tight gate.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import os
import random

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import TransactionalDriver
from repro.storage.buffer import BufferPool
from repro.storage.disk import PageStore
from repro.storage.page import PageKind
from repro.workload.generator import MixSpec, ScalarWorkload

QUICK = bool(os.environ.get("BENCH_QUICK"))

PAGE_CAP = 8
SEED_KEYS = 200 if QUICK else 600
HOT_KEYS = 8
RUN_LEN = 24 if QUICK else 48  # consecutive inserts per hot key
PIN_ROUNDS = 100 if QUICK else 1000
WALL_OPS = 200 if QUICK else 600
WALL_THREADS = 8


def _build(leaf_hints: bool) -> tuple[Database, object]:
    db = Database(
        page_capacity=PAGE_CAP,
        pool_capacity=4096,
        leaf_hints=leaf_hints,
        pool_shards=8,
    )
    tree = db.create_tree("hot", BTreeExtension())
    keys = list(range(SEED_KEYS))
    random.Random(11).shuffle(keys)
    txn = db.begin()
    for k in keys:
        tree.insert(txn, k, f"seed-{k}")
    db.commit(txn)
    return db, tree


def measure_fixes_per_insert(leaf_hints: bool) -> dict:
    """Average page fixes per point insert over the identical localized
    workload — runs of duplicate inserts at a few hot keys, the pattern
    the hint cache exists for."""
    db, tree = _build(leaf_hints)
    assert tree.height() >= 3, "warm tree must be at least three levels"
    hot = [
        (i + 1) * SEED_KEYS // (HOT_KEYS + 1) for i in range(HOT_KEYS)
    ]
    pool = db.pool
    total_ops = 0
    txn = db.begin()
    before = pool.hits + pool.misses
    for key in hot:
        for i in range(RUN_LEN):
            tree.insert(txn, key, f"dup-{key}-{i}")
            total_ops += 1
    after = pool.hits + pool.misses
    db.commit(txn)
    return {
        "height": tree.height(),
        "fixes_per_insert": (after - before) / total_ops,
        "hint_hits": tree.stats.hint_hits,
        "hint_misses": tree.stats.hint_misses,
        "descents_saved": tree.stats.hint_descents_saved,
    }


def measure_shard_locality() -> dict:
    """Lock acquisitions per shard while hammering one resident page."""
    store = PageStore(io_delay=0.0)
    pool = BufferPool(store, capacity=64, shards=4)
    frames = [pool.new_frame(PageKind.LEAF) for _ in range(8)]
    target = frames[0].page.pid
    home = pool.shard_of(target)
    before = pool.shard_metrics()
    for _ in range(PIN_ROUNDS):
        pool.pin(target)
        pool.unpin(target)
    after = pool.shard_metrics()
    deltas = [
        after[i]["lock_acquisitions"] - before[i]["lock_acquisitions"]
        for i in range(4)
    ]
    return {"home": home, "deltas": deltas}


def run_wall(shards: int) -> float:
    db = Database(
        page_capacity=8,
        io_delay=0.0005,
        pool_capacity=40,
        lock_timeout=30.0,
        pool_shards=shards,
        leaf_hints=True,
    )
    tree = db.create_tree("hot", BTreeExtension())
    workload = ScalarWorkload(
        seed=17,
        mix=MixSpec(insert=0.5, search=0.5),
        key_space=50_000,
        selectivity=0.002,
    )
    driver = TransactionalDriver(db, tree, ops_per_txn=4)
    driver.preload(workload.preload(400))
    metrics = driver.run(list(workload.ops(WALL_OPS)), threads=WALL_THREADS)
    return metrics.ops_per_sec


def test_leaf_hints_save_descents(benchmark, emit, emit_json):
    results: dict[bool, dict] = {}

    def run():
        results.clear()
        results[False] = measure_fixes_per_insert(leaf_hints=False)
        results[True] = measure_fixes_per_insert(leaf_hints=True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    off, on = results[False], results[True]
    emit_json(
        "hotpath",
        {
            "leaf_hints": {
                "tree_height": on["height"],
                "fixes_per_insert_off": round(off["fixes_per_insert"], 3),
                "fixes_per_insert_on": round(on["fixes_per_insert"], 3),
                "hint_hits": on["hint_hits"],
                "descents_saved": on["descents_saved"],
            }
        },
    )
    rows = [
        {
            "leaf_hints": label,
            "tree_height": r["height"],
            "fixes_per_insert": round(r["fixes_per_insert"], 2),
            "hint_hits": r["hint_hits"],
            "hint_misses": r["hint_misses"],
            "descents_saved": r["descents_saved"],
        }
        for label, r in (("off", off), ("on", on))
    ]
    emit(
        "HOTPATH — page fixes per point insert, warm "
        f"height-{on['height']} tree, {HOT_KEYS} hot keys x {RUN_LEN} "
        "duplicate inserts (deterministic: counted, not timed)",
        rows,
        columns=[
            "leaf_hints",
            "tree_height",
            "fixes_per_insert",
            "hint_hits",
            "hint_misses",
            "descents_saved",
        ],
    )
    assert on["hint_hits"] > 0, "hint cache never engaged"
    saved = off["fixes_per_insert"] - on["fixes_per_insert"]
    assert saved >= 1.0, (
        "leaf hints must save at least one page fix per insert on the "
        f"localized workload: off={off['fixes_per_insert']:.2f} "
        f"on={on['fixes_per_insert']:.2f} (saved {saved:.2f})"
    )


def test_resident_pin_is_shard_local(benchmark, emit):
    out: dict = {}

    def run():
        out.clear()
        out.update(measure_shard_locality())

    benchmark.pedantic(run, rounds=1, iterations=1)
    home, deltas = out["home"], out["deltas"]
    emit(
        f"HOTPATH — shard lock acquisitions while pinning one resident "
        f"page {PIN_ROUNDS}x (home shard = {home})",
        [
            {
                "shard": i,
                "lock_acquisitions": d,
                "role": "home" if i == home else "other",
            }
            for i, d in enumerate(deltas)
        ],
        columns=["shard", "lock_acquisitions", "role"],
    )
    for i, delta in enumerate(deltas):
        if i == home:
            # pin + unpin each take the home lock once; the final
            # shard_metrics() snapshot adds one more.
            assert delta == 2 * PIN_ROUNDS + 1
        else:
            # only the metrics snapshot itself touched foreign shards
            assert delta == 1


def test_fault_machinery_dormant_on_hot_path(benchmark, emit):
    """With no fault plan installed, the fault-injection machinery must
    cost the resident-pin hot path nothing it can't prove: the per-shard
    lock-acquisition counts are identical to the pre-fault-layer contract
    (home = pin + unpin per round + snapshot, others = snapshot only) and
    every fault/retry counter stays at zero."""
    out: dict = {}

    def run():
        out.clear()
        out.update(measure_shard_locality())

    benchmark.pedantic(run, rounds=1, iterations=1)
    home, deltas = out["home"], out["deltas"]
    emit(
        f"HOTPATH — fault machinery dormant: shard lock acquisitions "
        f"pinning one resident page {PIN_ROUNDS}x with faults disabled",
        [
            {
                "shard": i,
                "lock_acquisitions": d,
                "role": "home" if i == home else "other",
            }
            for i, d in enumerate(deltas)
        ],
        columns=["shard", "lock_acquisitions", "role"],
    )
    for i, delta in enumerate(deltas):
        expected = 2 * PIN_ROUNDS + 1 if i == home else 1
        assert delta == expected, (
            "fault machinery added lock acquisitions to the resident-pin "
            f"path: shard {i} took {delta}, expected {expected}"
        )
    # no plan => no pin-ledger tracking and no fault-layer activity
    store = PageStore(io_delay=0.0)
    pool = BufferPool(store, capacity=8, shards=2)
    assert pool._track_fixes is False
    frame = pool.new_frame(PageKind.LEAF)
    for _ in range(50):
        pool.pin(frame.page.pid)
        pool.unpin(frame.page.pid)
    for counter in (
        "storage.io_retries",
        "storage.torn_pages_detected",
        "storage.torn_pages_healed",
        "storage.write_faults",
    ):
        assert pool.metrics.counter(counter).value == 0, counter
    assert store.stats.checksum_failures == 0
    assert store.stats.faults_injected == 0


def test_protocol_checks_dormant_on_hot_path(benchmark, emit, monkeypatch):
    """With protocol checks off (the default), the lockdep layer must be
    structurally absent: no witness object exists anywhere in the
    assembly, and the resident-pin hot path performs exactly the
    contractual number of shard-lock acquisitions (home = pin + unpin
    per round + snapshot, others = snapshot only) — zero extra lock
    acquisitions of any kind."""
    monkeypatch.delenv("REPRO_PROTOCOL_CHECKS", raising=False)
    out: dict = {}

    def run():
        out.clear()
        out.update(measure_shard_locality())

    benchmark.pedantic(run, rounds=1, iterations=1)
    home, deltas = out["home"], out["deltas"]
    emit(
        f"HOTPATH — lockdep dormant: shard lock acquisitions pinning "
        f"one resident page {PIN_ROUNDS}x with protocol checks off",
        [
            {
                "shard": i,
                "lock_acquisitions": d,
                "role": "home" if i == home else "other",
            }
            for i, d in enumerate(deltas)
        ],
        columns=["shard", "lock_acquisitions", "role"],
    )
    for i, delta in enumerate(deltas):
        expected = 2 * PIN_ROUNDS + 1 if i == home else 1
        assert delta == expected, (
            "lockdep machinery added lock acquisitions to the "
            f"resident-pin path: shard {i} took {delta}, expected "
            f"{expected}"
        )
    # checks off => no witness is constructed or attached anywhere
    db = Database(page_capacity=8, pool_capacity=64, pool_shards=2)
    assert db.protocol_checks is False
    assert db.witness is None
    assert db.store.witness is None
    assert db.locks.witness is None
    assert db.pool._witness is None
    tree = db.create_tree("hot", BTreeExtension())
    txn = db.begin()
    for i in range(32):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    # frame latches were built without a witness binding too
    root_latch = db.pool.pin(tree.root_pid).latch
    db.pool.unpin(tree.root_pid)
    assert root_latch.witness is None


def test_sharded_pool_wall_clock(benchmark, emit, emit_json):
    """Context only — throughput of the mixed threaded workload under
    1 shard vs 8.  No tight gate (wall clock is noisy here); the
    deterministic properties above are the contract."""
    results: dict[int, float] = {}

    def run():
        results.clear()
        for shards in (1, 8):
            results[shards] = run_wall(shards)

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit_json(
        "hotpath",
        {
            "wall_clock": {
                f"ops_per_sec_shards_{s}": round(v, 1)
                for s, v in sorted(results.items())
            }
        },
    )
    emit(
        f"HOTPATH — mixed workload throughput, {WALL_THREADS} threads "
        f"(report; wall clock)",
        [
            {"pool_shards": s, "ops_per_sec": round(v, 1)}
            for s, v in sorted(results.items())
        ],
        columns=["pool_shards", "ops_per_sec"],
    )
    assert results[8] > 0 and results[1] > 0
