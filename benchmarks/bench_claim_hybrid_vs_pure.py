"""Claim C2: the hybrid mechanism beats pure predicate locking.

Section 4.2 names the cost of pure predicate locking: every conflict
check scans the **tree-global** predicate list, so the work an insert
does grows with the number of live scans anywhere in the tree.  The
hybrid mechanism of section 4.3 checks only the predicates attached to
the insert's *target leaf*, so disjoint scans cost it nothing.

This experiment registers N disjoint range scans (N swept over a range)
and then measures the predicate comparisons and the latency that a
stream of inserts pays under each mechanism.
"""

from __future__ import annotations

import time

from repro.baselines.purepred import GlobalPredicateTable
from repro.baselines.simpletree import make_baseline
from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval

INSERTS = 100
SCAN_COUNTS = (1, 4, 16, 64, 256)
KEY_SPACE = 1_000_000


def pure_predicate_cost(scans: int) -> dict:
    """Pure predicate locking: global list, global checks (§4.2)."""
    ext = BTreeExtension()
    tree = make_baseline("link", ext, page_capacity=32)
    table = GlobalPredicateTable(ext.consistent)
    # N disjoint scans, far from where the inserts will land
    width = 100
    for owner in range(scans):
        lo = owner * 1000
        table.register(owner, Interval(lo, lo + width), "search")
    before = table.stats.snapshot()["comparisons"]
    start = time.perf_counter()
    for i in range(INSERTS):
        key = KEY_SPACE - 1 - i  # disjoint from every scan
        table.register(10_000 + i, ext.eq_query(key), "insert")
        tree.insert(key, f"r{i}")
    elapsed = time.perf_counter() - start
    comparisons = table.stats.snapshot()["comparisons"] - before
    return {
        "mechanism": "pure-predicate",
        "scans": scans,
        "cmp_per_insert": round(comparisons / INSERTS, 2),
        "insert_us": round(elapsed / INSERTS * 1e6, 1),
    }


def hybrid_cost(scans: int) -> dict:
    """The hybrid mechanism: node-attached predicates (§4.3)."""
    db = Database(page_capacity=32, lock_timeout=30.0)
    tree = db.create_tree("c2", BTreeExtension())
    # spread enough keys that scan ranges map to distinct subtrees
    setup = db.begin()
    for i in range(0, 300_000, 500):
        tree.insert(setup, i, f"pre-{i}")
    db.commit(setup)
    # N disjoint live scans, each leaving predicates attached
    readers = []
    width = 100
    for owner in range(scans):
        txn = db.begin()
        lo = owner * 1000
        tree.search(txn, Interval(lo, lo + width))
        readers.append(txn)
    before = tree.predicates.stats.snapshot()["comparisons"]
    writer = db.begin()
    start = time.perf_counter()
    for i in range(INSERTS):
        tree.insert(writer, KEY_SPACE - 1 - i, f"w-{i}")
    elapsed = time.perf_counter() - start
    comparisons = (
        tree.predicates.stats.snapshot()["comparisons"] - before
    )
    db.commit(writer)
    for txn in readers:
        db.commit(txn)
    return {
        "mechanism": "hybrid",
        "scans": scans,
        "cmp_per_insert": round(comparisons / INSERTS, 2),
        "insert_us": round(elapsed / INSERTS * 1e6, 1),
    }


def test_c2_hybrid_vs_pure_predicate_cost(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        for scans in SCAN_COUNTS:
            rows.append(pure_predicate_cost(scans))
        for scans in SCAN_COUNTS:
            rows.append(hybrid_cost(scans))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "C2 — predicate-check cost per insert vs number of live "
        "(disjoint) scans",
        rows,
    )
    cost = {(r["mechanism"], r["scans"]): r["cmp_per_insert"] for r in rows}
    # pure predicate locking scales linearly with the global scan count
    assert cost[("pure-predicate", 256)] >= 256
    assert cost[("pure-predicate", 256)] > 10 * max(
        1.0, cost[("pure-predicate", 4)]
    )
    # the hybrid cost is independent of the global scan count
    assert cost[("hybrid", 256)] <= cost[("hybrid", 1)] + 2
