"""Figure 5 / section 7.2: the drain technique under load.

Measures node-deletion progress while readers hold stacked pointers:
vacuum passes run concurrently with a scan workload; deletions blocked
by signaling locks are retried on later passes.  The experiment shows
(a) the drain never deadlocks or corrupts, (b) blocked deletions are
eventually reclaimed once readers move on, and (c) reader results stay
correct throughout.
"""

from __future__ import annotations

import threading

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum


def drain_experiment() -> dict:
    db = Database(page_capacity=4, lock_timeout=20.0)
    tree = db.create_tree("f5", BTreeExtension())
    setup = db.begin()
    for i in range(200):
        tree.insert(setup, i, f"r{i}")
    db.commit(setup)
    # delete the upper three quarters: many nodes become reclaimable
    txn = db.begin()
    for i in range(50, 200):
        tree.delete(txn, i, f"r{i}")
    db.commit(txn)
    pages_before = tree.page_count()

    stop = threading.Event()
    scan_results = {"scans": 0, "bad": 0}

    def reader():
        while not stop.is_set():
            txn = db.begin()
            try:
                found = {
                    k for k, _ in tree.search(txn, Interval(0, 199))
                }
                db.commit(txn)
                scan_results["scans"] += 1
                if found != set(range(50)):
                    scan_results["bad"] += 1
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass

    readers = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
    for t in readers:
        t.start()

    deleted = blocked = passes = 0
    while passes < 12:
        txn = db.begin()
        report = vacuum(tree, txn)
        db.commit(txn)
        deleted += report.nodes_deleted
        blocked += report.deletions_blocked
        passes += 1
        if report.nodes_deleted == 0 and report.deletions_blocked == 0:
            break
    stop.set()
    for t in readers:
        t.join(30.0)
    # quiesced final pass reclaims whatever readers were protecting
    txn = db.begin()
    final = vacuum(tree, txn)
    db.commit(txn)
    deleted += final.nodes_deleted
    check = check_tree(tree)
    return {
        "pages_before": pages_before,
        "pages_after": tree.page_count(),
        "nodes_deleted": deleted,
        "deletions_blocked": blocked,
        "vacuum_passes": passes + 1,
        "scans": scan_results["scans"],
        "bad_scans": scan_results["bad"],
        "structure_ok": check.ok,
    }


def test_fig5_drain_under_load(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(drain_experiment())

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Figure 5 / §7.2 — node deletion with the drain technique "
        "under a concurrent scan load",
        rows,
    )
    row = rows[0]
    assert row["structure_ok"]
    assert row["bad_scans"] == 0  # readers never saw a broken tree
    assert row["nodes_deleted"] > 0  # reclamation did happen
    assert row["pages_after"] < row["pages_before"]
