"""Static-analysis pipeline benchmark: wall-clock and pass sizes.

The verifier is a CI gate, so its own latency is part of the product:
the whole pipeline — call graph, interprocedural type-state summaries,
lexical rules, rule packs, and the static lock-order extractor — must
finish well inside the 30-second CI budget on the shipped tree, and
``BENCH_analysis.json`` records how much headroom is left.

Deterministic gates:

1. **Zero findings on the shipped tree.**  The benchmark doubles as an
   end-to-end smoke run of ``repro.analysis.verify``.
2. **Wall-clock under the CI budget.**  The measured elapsed time must
   come in under ``--max-seconds 30`` with at least 2x headroom, so a
   modest CI-runner slowdown cannot flake the gate.
3. **The passes actually saw the tree.**  Function, summary, and
   lock-graph-edge counts carry sane floors; a refactor that silently
   empties a pass fails here, not in production.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import verify

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

CI_BUDGET_SECONDS = 30.0


def run_verifier() -> tuple[int, list, dict]:
    start = time.monotonic()
    code, findings, stats = verify.run(
        [str(SRC)], max_seconds=CI_BUDGET_SECONDS
    )
    stats["measured_seconds"] = round(time.monotonic() - start, 3)
    return code, findings, stats


def test_analysis_pipeline_wall_clock(benchmark, emit, emit_json):
    results: list[tuple[int, list, dict]] = []

    def run():
        results.clear()
        results.append(run_verifier())

    benchmark.pedantic(run, rounds=1, iterations=1)
    code, findings, stats = results[0]

    emit(
        "ANALYSIS — full verifier pipeline over src/repro "
        f"(CI budget {CI_BUDGET_SECONDS:.0f}s)",
        [
            {
                "functions": stats["functions"],
                "summaries": stats["summaries"],
                "lock_edges": stats["lock_graph_edges"],
                "suppressions": stats["suppressions"],
                "seconds": stats["measured_seconds"],
            }
        ],
        columns=[
            "functions",
            "summaries",
            "lock_edges",
            "suppressions",
            "seconds",
        ],
    )
    emit_json(
        "analysis",
        {
            "files": stats["files"],
            "functions": stats["functions"],
            "summaries": stats["summaries"],
            "call_edges": stats["call_edges"],
            "lock_graph_nodes": stats["lock_graph_nodes"],
            "lock_graph_edges": stats["lock_graph_edges"],
            "suppressions": stats["suppressions"],
            "suppression_budget": stats["suppression_budget"],
            "elapsed_seconds": stats["measured_seconds"],
            "ci_budget_seconds": CI_BUDGET_SECONDS,
        },
    )

    # gate 1: the shipped tree is clean
    assert code == 0, "\n".join(str(f) for f in findings)
    assert findings == []
    # gate 2: 2x headroom inside the CI budget
    assert stats["measured_seconds"] < CI_BUDGET_SECONDS / 2
    # gate 3: the passes saw the whole tree
    assert stats["functions"] > 1000
    assert stats["summaries"] == stats["functions"]
    assert stats["lock_graph_edges"] > 20
