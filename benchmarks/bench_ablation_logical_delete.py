"""Ablation A2 (section 7): logical deletion vs physical deletion.

The paper argues a delete must only *mark* the entry: the physical
presence plus the record lock is what lets repeatable-read scans block
on an uncommitted delete (and what makes the delete's rollback cheap
and phantom-safe).  This experiment measures the consequence directly:
with logical deletion, a scan racing an uncommitted-then-aborted delete
always sees the record; a physical-delete variant (modelled on the
baseline trees, which delete physically) returns a result that flickers
with the race — an unrepeatable read.

Throughput cost of the tombstones is reported as the second dimension:
delete-heavy load with and without periodic vacuum.
"""

from __future__ import annotations

import threading
import time

from repro.baselines.simpletree import make_baseline
from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.maintenance import vacuum

ROUNDS = 40


def logical_delete_race() -> dict:
    """Delete + rollback racing a scan, on the full GiST."""
    db = Database(page_capacity=8, lock_timeout=20.0)
    tree = db.create_tree("a2", BTreeExtension())
    setup = db.begin()
    for i in range(50):
        tree.insert(setup, i, f"r{i}")
    db.commit(setup)
    flickers = 0
    for _ in range(ROUNDS):
        deleter = db.begin()
        tree.delete(deleter, 25, "r25")
        seen = []

        def scan():
            txn = db.begin()
            try:
                seen.append(
                    (25, "r25") in tree.search(txn, Interval(20, 30))
                )
                db.commit(txn)
            except TransactionAbort:
                db.rollback(txn)

        t = threading.Thread(target=scan, daemon=True)
        t.start()
        time.sleep(0.001)
        db.rollback(deleter)  # the delete never happened
        t.join(10.0)
        if seen and not seen[0]:
            flickers += 1
    return {
        "variant": "logical delete (GiST)",
        "rounds": ROUNDS,
        "scans_missing_aborted_delete": flickers,
    }


def physical_delete_race() -> dict:
    """The same race against a physical-delete tree (no transactions:
    'rollback' means re-inserting, as a non-logging design would)."""
    tree = make_baseline("link", BTreeExtension(), page_capacity=8)
    for i in range(50):
        tree.insert(i, f"r{i}")
    flickers = 0
    for _ in range(ROUNDS):
        seen = []
        started = threading.Event()

        def scan():
            started.set()
            seen.append(
                (25, "r25") in tree.search(Interval(20, 30))
            )

        t = threading.Thread(target=scan, daemon=True)
        tree.delete(25, "r25")  # physically gone
        t.start()
        started.wait()
        tree.insert(25, "r25")  # "rollback"
        t.join(10.0)
        if seen and not seen[0]:
            flickers += 1
    return {
        "variant": "physical delete (baseline)",
        "rounds": ROUNDS,
        "scans_missing_aborted_delete": flickers,
    }


def tombstone_throughput(with_vacuum: bool) -> dict:
    db = Database(page_capacity=8, lock_timeout=20.0)
    tree = db.create_tree("a2b", BTreeExtension())
    setup = db.begin()
    for i in range(400):
        tree.insert(setup, i, f"r{i}")
    db.commit(setup)
    start = time.perf_counter()
    for round_no in range(6):
        txn = db.begin()
        for i in range(round_no * 60, round_no * 60 + 60):
            tree.delete(txn, i, f"r{i}")
        db.commit(txn)
        if with_vacuum:
            txn = db.begin()
            vacuum(tree, txn)
            db.commit(txn)
        txn = db.begin()
        for lo in range(0, 400, 40):
            tree.search(txn, Interval(lo, lo + 39))
        db.commit(txn)
    elapsed = time.perf_counter() - start
    from repro.gist.checker import check_tree

    report = check_tree(tree)
    return {
        "variant": (
            "tombstones + vacuum" if with_vacuum else "tombstones only"
        ),
        "elapsed_ms": round(elapsed * 1e3, 1),
        "pages": tree.page_count(),
        "leaf_entries": report.leaf_entries,
        "live_entries": report.live_entries,
    }


def test_a2_logical_vs_physical_delete(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(logical_delete_race())
        rows.append(physical_delete_race())

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A2 — logical vs physical deletion racing an aborted delete "
        "(scans that missed a record whose delete rolled back)",
        rows,
    )
    by_variant = {r["variant"]: r for r in rows}
    assert (
        by_variant["logical delete (GiST)"][
            "scans_missing_aborted_delete"
        ]
        == 0
    )
    # the physical variant is expected to flicker; we only require that
    # the probe was capable of catching it at least once
    assert (
        by_variant["physical delete (baseline)"][
            "scans_missing_aborted_delete"
        ]
        >= 1
    )


def test_a2_tombstone_cost_and_vacuum(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(tombstone_throughput(with_vacuum=False))
        rows.append(tombstone_throughput(with_vacuum=True))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("A2b — tombstone accumulation vs periodic vacuum", rows)
    no_vac, with_vac = rows
    # vacuum keeps the physical entry count near the live count
    assert with_vac["leaf_entries"] <= no_vac["leaf_entries"]
