"""What does each isolation degree cost?

The paper's repeatable-read machinery (held record locks + predicate
attachment + fairness checks) is not free; this experiment prices it.
One mixed workload runs three times, changing only the isolation level
of every transaction, and reports throughput plus the lock and
predicate traffic each degree generated.
"""

from __future__ import annotations

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import TransactionalDriver
from repro.txn.transaction import IsolationLevel
from repro.workload.generator import MixSpec, ScalarWorkload

OPS = 400
PRELOAD = 300
THREADS = 6


def run(isolation: IsolationLevel) -> dict:
    db = Database(page_capacity=16, lock_timeout=20.0)
    tree = db.create_tree("iso", BTreeExtension())
    workload = ScalarWorkload(
        seed=41,
        mix=MixSpec(insert=0.3, search=0.7),
        key_space=50_000,
        selectivity=0.005,
    )
    driver = TransactionalDriver(db, tree, isolation=isolation, ops_per_txn=4)
    driver.preload(workload.preload(PRELOAD))
    metrics = driver.run(list(workload.ops(OPS)), threads=THREADS)
    lock_stats = db.locks.stats.snapshot()
    pred_stats = tree.predicates.stats.snapshot()
    return {
        "isolation": isolation.value,
        "ops": metrics.ops,
        "ops_per_sec": round(metrics.ops_per_sec, 1),
        "aborts": metrics.aborts,
        "lock_acquires": lock_stats["acquires"],
        "pred_attaches": pred_stats["attaches"],
        "pred_checks": pred_stats["checks"],
    }


def test_isolation_degree_cost(benchmark, emit):
    rows = []

    def go():
        rows.clear()
        for isolation in (
            IsolationLevel.READ_UNCOMMITTED,
            IsolationLevel.READ_COMMITTED,
            IsolationLevel.REPEATABLE_READ,
        ):
            rows.append(run(isolation))

    benchmark.pedantic(go, rounds=1, iterations=1)
    emit(
        "Isolation-degree cost — one workload, three degrees "
        "(70/30 search/insert, 6 threads)",
        rows,
    )
    by_iso = {r["isolation"]: r for r in rows}
    # Degrees 1 and 2 attach only the inserts' own predicates; Degree 3
    # adds one search predicate per visited node on top — a multiple of
    # the baseline attach traffic for a search-heavy mix.
    baseline = by_iso["read-uncommitted"]["pred_attaches"]
    assert by_iso["read-committed"]["pred_attaches"] == baseline
    assert by_iso["repeatable-read"]["pred_attaches"] > baseline * 2
    # and the record-lock traffic is ordered by degree
    assert (
        by_iso["read-uncommitted"]["lock_acquires"]
        < by_iso["repeatable-read"]["lock_acquires"]
    )
