"""Claim C1: the link protocol holds no latches across I/O, so its
concurrency should match or beat coupled protocols.

Head-to-head throughput of the three correct protocols — link,
latch-coupling, subtree-locking — over identical storage with simulated
I/O latency, under a mixed search/insert workload, across thread counts.
The expected shape (paper sections 1, 11, 12; confirmed for B-trees by
[SC91] and [JS93]): with I/O in the picture the link protocol scales
with threads while coupled protocols serialize on latches held across
child fetches; subtree locking is worst.

A second table runs the *full transactional GiST* (WAL + locks +
predicate attachment) against the bare-metal link baseline, quantifying
what the transactional machinery costs on top of the protocol.
"""

from __future__ import annotations

from repro.baselines.simpletree import make_baseline
from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import BaselineDriver, TransactionalDriver
from repro.workload.generator import MixSpec, ScalarWorkload

IO_DELAY = 0.0005
POOL = 40
PRELOAD = 800
OPS = 400
THREADS = (1, 2, 4, 8)
PROTOCOLS = ("link", "coupling", "subtree")


def run_baseline(protocol: str, threads: int) -> dict:
    tree = make_baseline(
        protocol,
        BTreeExtension(),
        page_capacity=8,
        io_delay=IO_DELAY,
        pool_capacity=POOL,
    )
    workload = ScalarWorkload(
        seed=17,
        mix=MixSpec(insert=0.5, search=0.5),
        key_space=50_000,
        selectivity=0.002,
    )
    driver = BaselineDriver(tree)
    driver.preload(workload.preload(PRELOAD))
    metrics = driver.run(list(workload.ops(OPS)), threads=threads)
    row = metrics.row()
    row["protocol"] = protocol
    return row


def test_c1_protocol_scaling(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        for protocol in PROTOCOLS:
            for threads in THREADS:
                rows.append(run_baseline(protocol, threads))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "C1 — throughput (ops/s) by protocol and thread count "
        f"(io_delay={IO_DELAY * 1e3:.1f} ms, mixed 50/50 workload)",
        rows,
        columns=[
            "protocol",
            "threads",
            "ops",
            "ops_per_sec",
            "p95_ms",
            "rightlinks",
            "splits",
            "restarts",
        ],
    )
    perf = {
        (r["protocol"], r["threads"]): r["ops_per_sec"] for r in rows
    }
    # the paper's shape: at high concurrency the link protocol beats the
    # coupled protocols (which serialize I/O under latches)
    assert perf[("link", 8)] > perf[("subtree", 8)]
    assert perf[("link", 8)] > perf[("coupling", 8)]
    # and the link protocol actually scales with threads
    assert perf[("link", 8)] > perf[("link", 1)] * 1.3


def test_c1_full_system_vs_bare_protocol(benchmark, emit):
    """The full transactional GiST against the bare link baseline."""
    rows = []

    def run():
        rows.clear()
        for threads in (1, 4, 8):
            rows.append(run_baseline("link", threads))
        for threads in (1, 4, 8):
            db = Database(
                page_capacity=8,
                io_delay=IO_DELAY,
                pool_capacity=POOL,
                lock_timeout=30.0,
            )
            tree = db.create_tree("c1", BTreeExtension())
            workload = ScalarWorkload(
                seed=17,
                mix=MixSpec(insert=0.5, search=0.5),
                key_space=50_000,
                selectivity=0.002,
            )
            driver = TransactionalDriver(db, tree, ops_per_txn=4)
            driver.preload(workload.preload(PRELOAD))
            metrics = driver.run(
                list(workload.ops(OPS)), threads=threads
            )
            row = metrics.row()
            row["protocol"] = "gist-full"
            rows.append(row)

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "C1b — bare link protocol vs full transactional GiST "
        "(WAL + 2PL + predicate locking)",
        rows,
        columns=[
            "protocol",
            "threads",
            "ops",
            "ops_per_sec",
            "p95_ms",
            "aborts",
        ],
    )
    perf = {
        (r["protocol"], r["threads"]): r["ops_per_sec"] for r in rows
    }
    # the transactional machinery must not destroy scaling
    assert perf[("gist-full", 8)] > perf[("gist-full", 1)] * 1.1
