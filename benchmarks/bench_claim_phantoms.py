"""Claim C3: the hybrid mechanism delivers repeatable read.

Randomized double-read probes (see ``repro.harness.phantoms``) under
concurrent writers: zero anomalies must be observed at REPEATABLE READ;
the READ COMMITTED run is the positive control showing the probe *can*
detect anomalies; the cost of RR appears as writer aborts/blocking.
"""

from __future__ import annotations

from repro.harness.phantoms import run_phantom_campaign
from repro.txn.transaction import IsolationLevel


def campaign(isolation: IsolationLevel, think: float) -> dict:
    report = run_phantom_campaign(
        isolation=isolation,
        probes=15,
        writers=3,
        think_time=think,
        seed=23,
    )
    return {
        "isolation": report.isolation,
        "probes": report.probes,
        "anomalies": report.anomalies,
        "anomaly_rate": round(report.anomaly_rate, 3),
        "writer_commits": report.writer_commits,
        "writer_aborts": report.writer_aborts,
        "reader_aborts": report.reader_aborts,
    }


def test_c3_phantom_rates(benchmark, emit):
    rows = []

    def run():
        rows.clear()
        rows.append(
            campaign(IsolationLevel.REPEATABLE_READ, think=0.003)
        )
        rows.append(
            campaign(IsolationLevel.READ_COMMITTED, think=0.02)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "C3 — double-read anomaly rates under concurrent writers "
        "(hybrid locking on vs read committed)",
        rows,
    )
    by_iso = {r["isolation"]: r for r in rows}
    assert by_iso["repeatable-read"]["anomalies"] == 0
    assert by_iso["read-committed"]["anomalies"] > 0
    # RR must still let writers through (no global serialization)
    assert by_iso["repeatable-read"]["writer_commits"] > 0
