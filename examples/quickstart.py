"""Quickstart: a transactional B-tree index in a few lines.

Run:  python examples/quickstart.py
"""

from repro import BTreeExtension, Database, Interval, IsolationLevel
from repro.tools.inspect import dump_stats

def main() -> None:
    # A database bundles the storage, WAL, lock and transaction
    # machinery; trees are created against it.
    db = Database(page_capacity=16)
    accounts = db.create_tree("accounts_by_balance", BTreeExtension())

    # --- insert under a transaction -------------------------------
    txn = db.begin()
    for account_id, balance in [
        ("alice", 1200),
        ("bob", 50),
        ("carol", 7800),
        ("dave", 450),
        ("erin", 3100),
    ]:
        accounts.insert(txn, key=balance, rid=account_id)
    db.commit(txn)

    # --- range search ----------------------------------------------
    txn = db.begin()
    mid_tier = accounts.search(txn, Interval(100, 5000))
    print("balances in [100, 5000]:")
    for balance, account in sorted(mid_tier):
        print(f"  {account:>6}  {balance}")
    db.commit(txn)

    # --- rollback really rolls back --------------------------------
    txn = db.begin()
    accounts.insert(txn, key=999_999, rid="mallory")
    db.rollback(txn)
    txn = db.begin()
    assert accounts.search(txn, Interval(999_999, 999_999)) == []
    db.commit(txn)
    print("\nmallory's uncommitted insert rolled back cleanly")

    # --- repeatable read in action ---------------------------------
    reader = db.begin(IsolationLevel.REPEATABLE_READ)
    first = accounts.search(reader, Interval(0, 100))
    # (a concurrent writer inserting into [0, 100] would now block on
    #  the reader's predicate until the reader commits)
    second = accounts.search(reader, Interval(0, 100))
    assert first == second
    db.commit(reader)
    print("double read inside one transaction returned identical rows")

    # --- crash and recover ------------------------------------------
    txn = db.begin()
    accounts.insert(txn, key=42, rid="frank")
    db.commit(txn)
    db.crash()  # buffer pool and unflushed log tail are gone
    db = db.restart({"accounts_by_balance": BTreeExtension()})
    accounts = db.tree("accounts_by_balance")
    txn = db.begin()
    assert accounts.search(txn, Interval(42, 42)) == [(42, "frank")]
    db.commit(txn)
    print("frank's committed insert survived a crash + restart")

    # --- what the database measured about all of this ----------------
    print("\n=== observability: db.metrics (dump_stats) ===")
    print(dump_stats(db))


if __name__ == "__main__":
    main()
