"""Watch the link protocol win — a miniature of experiment C1.

Runs the same mixed search/insert workload against the three correct
concurrency protocols over identical storage with simulated disk
latency, and prints the throughput table.  The numbers move with your
machine; the *ordering* (link > coupling > subtree at high thread
counts) is the paper's claim.

Run:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.baselines.simpletree import make_baseline
from repro.ext.btree import BTreeExtension
from repro.harness.driver import BaselineDriver
from repro.harness.report import render_table
from repro.workload.generator import MixSpec, ScalarWorkload

IO_DELAY = 0.0005  # 0.5 ms per simulated page read/write
POOL = 40          # frames — far fewer than the tree's pages
PRELOAD = 600
OPS = 300


def measure(protocol: str, threads: int) -> dict:
    tree = make_baseline(
        protocol,
        BTreeExtension(),
        page_capacity=8,
        io_delay=IO_DELAY,
        pool_capacity=POOL,
    )
    workload = ScalarWorkload(
        seed=11, mix=MixSpec(insert=0.5, search=0.5), key_space=50_000,
        selectivity=0.002,
    )
    driver = BaselineDriver(tree)
    driver.preload(workload.preload(PRELOAD))
    metrics = driver.run(list(workload.ops(OPS)), threads=threads)
    row = metrics.row()
    row["protocol"] = protocol
    return row


def main() -> None:
    rows = []
    for protocol in ("link", "coupling", "subtree"):
        for threads in (1, 4, 8):
            print(f"running {protocol} x{threads} ...", flush=True)
            rows.append(measure(protocol, threads))
    print()
    print(
        render_table(
            rows,
            title=(
                "mixed 50/50 workload, 0.5 ms simulated I/O, "
                "40-frame pool"
            ),
            columns=[
                "protocol",
                "threads",
                "ops_per_sec",
                "p95_ms",
                "rightlinks",
            ],
        )
    )
    by_key = {(r["protocol"], r["threads"]): r["ops_per_sec"] for r in rows}
    print()
    print(
        "link speedup over subtree locking at 8 threads: "
        f"{by_key[('link', 8)] / by_key[('subtree', 8)]:.1f}x"
    )


if __name__ == "__main__":
    main()
