"""A tagged document store on the RD-tree extension.

Documents carry tag sets; queries retrieve every document overlapping a
probe set of tags.  Set-valued keys have no linear order whatsoever —
the key domain the GiST (and its concurrency protocol) exists for.
The example also demonstrates logical deletion + vacuum: deleted
documents disappear from queries immediately but their pages are only
reclaimed by maintenance.

Run:  python examples/tagged_documents.py
"""

from __future__ import annotations

import random

from repro import Database, RDTreeExtension, vacuum

TAGS = [
    "systems", "databases", "indexing", "recovery", "locking",
    "spatial", "btree", "rtree", "wal", "aries", "gist", "sigmod",
]


def main() -> None:
    db = Database(page_capacity=16)
    docs = db.create_tree("docs_by_tags", RDTreeExtension())
    rng = random.Random(1997)

    # --- load a corpus ----------------------------------------------
    corpus = {}
    txn = db.begin()
    for doc_id in range(120):
        tags = frozenset(rng.sample(TAGS, k=rng.randint(2, 4)))
        rid = f"paper-{doc_id:03d}"
        docs.insert(txn, tags, rid)
        corpus[rid] = tags
    db.commit(txn)
    print(f"loaded {len(corpus)} documents, tree pages: {docs.page_count()}")

    # --- overlap queries ---------------------------------------------
    txn = db.begin()
    probe = frozenset({"recovery", "locking"})
    hits = docs.search(txn, probe)
    db.commit(txn)
    expected = sum(1 for tags in corpus.values() if tags & probe)
    print(f"documents tagged recovery|locking: {len(hits)} "
          f"(ground truth {expected})")
    assert len(hits) == expected

    # --- retract a batch (logical deletes) ----------------------------
    retracted = [rid for rid, tags in corpus.items() if "wal" in tags]
    txn = db.begin()
    for rid in retracted:
        docs.delete(txn, corpus[rid], rid)
    db.commit(txn)
    txn = db.begin()
    still_there = {rid for _, rid in docs.search(txn, frozenset({"wal"}))}
    db.commit(txn)
    # some docs overlap 'wal' probes via other tags; none of the
    # retracted ones may appear
    assert not (still_there & set(retracted))
    print(f"retracted {len(retracted)} documents; queries no longer "
          "see them")

    # --- maintenance: tombstones vs vacuum ----------------------------
    pages_before = docs.page_count()
    txn = db.begin()
    report = vacuum(docs, txn)
    db.commit(txn)
    print(
        f"vacuum: {report.entries_collected} tombstones collected, "
        f"{report.nodes_deleted} nodes retired, "
        f"{pages_before} -> {docs.page_count()} pages"
    )

    # --- crash safety --------------------------------------------------
    db.crash()
    db2 = db.restart({"docs_by_tags": RDTreeExtension()})
    docs2 = db2.tree("docs_by_tags")
    txn = db2.begin()
    survivors = {
        rid for _, rid in docs2.search(txn, frozenset(TAGS))
    }
    db2.commit(txn)
    assert survivors == set(corpus) - set(retracted)
    print("after crash + restart the store matches the committed state ✓")


if __name__ == "__main__":
    main()
