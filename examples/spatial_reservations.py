"""Spatial reservations on an R-tree: the paper's concurrency story, live.

A venue rents rectangular floor areas.  Concurrent agents try to reserve
plots; a reservation must not overlap any existing one.  This is exactly
the workload the hybrid locking mechanism was built for: the "is this
area free?" check is a spatial range scan whose result must stay valid
until the reserving transaction commits — i.e. phantom insertions into
the scanned rectangle must be blocked — and rectangles have no linear
order, so key-range locking (section 4.1) cannot help.

Run:  python examples/spatial_reservations.py
"""

from __future__ import annotations

import random
import threading

from repro import Database, IsolationLevel, Rect, RTreeExtension
from repro.errors import TransactionAbort

FLOOR = Rect(0.0, 0.0, 1.0, 1.0)
AGENTS = 6
ATTEMPTS_PER_AGENT = 15
PLOT_SIZE = 0.12


def main() -> None:
    db = Database(page_capacity=16, lock_timeout=15.0)
    plots = db.create_tree("floor_plots", RTreeExtension())
    stats = {"reserved": 0, "occupied": 0, "retries": 0}
    lock = threading.Lock()

    def agent(agent_id: int) -> None:
        rng = random.Random(agent_id)
        for attempt in range(ATTEMPTS_PER_AGENT):
            x = rng.random() * (1 - PLOT_SIZE)
            y = rng.random() * (1 - PLOT_SIZE)
            wanted = Rect(x, y, x + PLOT_SIZE, y + PLOT_SIZE)
            txn = db.begin(IsolationLevel.REPEATABLE_READ)
            try:
                # The availability check: a spatial search under
                # repeatable read.  Its predicate stays attached to the
                # visited nodes, so a racing agent inserting an
                # overlapping plot will block (or deadlock-abort) —
                # never silently double-book.
                overlapping = plots.search(txn, wanted)
                if overlapping:
                    db.rollback(txn)
                    with lock:
                        stats["occupied"] += 1
                    continue
                plots.insert(
                    txn, wanted, f"reservation-{agent_id}-{attempt}"
                )
                db.commit(txn)
                with lock:
                    stats["reserved"] += 1
            except TransactionAbort:
                # lost a race: the deadlock detector picked us
                try:
                    db.rollback(txn)
                except Exception:
                    pass
                with lock:
                    stats["retries"] += 1

    threads = [
        threading.Thread(target=agent, args=(a,)) for a in range(AGENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # verify: no two committed reservations overlap
    txn = db.begin()
    committed = plots.search(txn, FLOOR)
    db.commit(txn)
    overlaps = 0
    for i, (rect_a, _) in enumerate(committed):
        for rect_b, _ in committed[i + 1 :]:
            if rect_a.intersects(rect_b):
                overlaps += 1
    print(f"agents:               {AGENTS}")
    print(f"reservations made:    {stats['reserved']}")
    print(f"rejected (occupied):  {stats['occupied']}")
    print(f"deadlock retries:     {stats['retries']}")
    print(f"committed plots:      {len(committed)}")
    print(f"overlapping pairs:    {overlaps}   <- must be 0")
    assert overlaps == 0, "double booking detected!"
    assert len(committed) == stats["reserved"]
    print("\nno double bookings under full concurrency ✓")


if __name__ == "__main__":
    main()
