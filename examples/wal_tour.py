"""A guided tour of the write-ahead log and restart recovery.

Performs a tiny workload, prints the log records it generated (the
executable face of the paper's Table 1), crashes the database, and
narrates what the three recovery passes did.

Run:  python examples/wal_tour.py
"""

from __future__ import annotations

from repro import BTreeExtension, Database, Interval
from repro.tools.inspect import dump_stats
from repro.wal.recovery import RestartRecovery


def main() -> None:
    db = Database(page_capacity=4)
    tree = db.create_tree("demo", BTreeExtension())

    # enough inserts to force a root split and a node split
    txn = db.begin()
    for i in range(10):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    # a logical delete
    txn = db.begin()
    tree.delete(txn, 3, "r3")
    db.commit(txn)
    # and a loser: in flight at the crash
    loser = db.begin()
    tree.insert(loser, 99, "doomed")
    db.log.flush()

    print("=== the log (Table 1 in action) ===")
    counts: dict[str, int] = {}
    for record in db.log.records_from(1):
        counts[record.type_name()] = counts.get(record.type_name(), 0) + 1
    width = max(len(n) for n in counts)
    for name, n in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}}  x{n}")

    print("\n=== crash ===")
    print("buffer pool dropped; unflushed log tail dropped")
    db.crash()

    print("\n=== restart recovery (ARIES three-pass, section 9) ===")
    db2 = Database(store=db.store, log=db.log, page_capacity=4)
    report = RestartRecovery(db2, {"demo": BTreeExtension()}).run()
    print(f"  analysis: scanned {report.analyzed_records} records, "
          f"found trees {report.trees}, losers {report.losers}")
    print(f"  redo:     from LSN {report.redo_start_lsn}, "
          f"re-applied {report.redone_records} records, "
          f"rebuilt {report.pages_rebuilt} never-flushed pages")
    print(f"  undo:     rolled back {report.undone_records} records "
          f"of {len(report.losers)} loser transaction(s)")

    tree2 = db2.tree("demo")
    txn = db2.begin()
    rows = sorted(tree2.search(txn, Interval(0, 100)))
    db2.commit(txn)
    print("\n=== recovered contents ===")
    print(" ", rows)
    assert (3, "r3") not in rows, "committed delete lost"
    assert (99, "doomed") not in rows, "loser insert survived"
    assert len(rows) == 9
    print("\ncommitted work preserved, loser rolled back ✓")

    # the recovered database carries full instrumentation too: the
    # recovery passes themselves were timed (recovery.*_ns)
    print("\n=== observability: db2.metrics (dump_stats) ===")
    print(dump_stats(db2))


if __name__ == "__main__":
    main()
