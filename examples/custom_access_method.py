"""Write a brand-new access method in ~60 lines — the paper's thesis.

Section 12: "The core DBMS plus GiST can be extended with a new access
method simply by supplying it with a set of pre-specified methods ...
Details such as concurrency and recovery — which usually account for a
major fraction of the complexity of the code — can be ignored by the
extension code."

Here we build an **IP-range index** (keys are CIDR-like address ranges,
queries are addresses or ranges) by implementing only the extension
methods.  The resulting index is immediately transactional, concurrent,
and crash-recoverable — none of which appears below.

Run:  python examples/custom_access_method.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import Database, GiSTExtension


@dataclass(frozen=True)
class IpRange:
    """An inclusive range of IPv4 addresses (stored as ints)."""

    lo: int
    hi: int

    @staticmethod
    def cidr(dotted: str, prefix: int) -> "IpRange":
        parts = [int(p) for p in dotted.split(".")]
        base = (
            (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]
        )
        span = 1 << (32 - prefix)
        lo = base & ~(span - 1)
        return IpRange(lo, lo + span - 1)

    def overlaps(self, other: "IpRange") -> bool:
        return not (self.hi < other.lo or other.hi < self.lo)

    def __str__(self) -> str:
        def dotted(v: int) -> str:
            return ".".join(str((v >> s) & 255) for s in (24, 16, 8, 0))

        return f"{dotted(self.lo)}-{dotted(self.hi)}"


class IpRangeExtension(GiSTExtension):
    """The complete extension: six small methods, nothing else."""

    name = "iprange"

    def consistent(self, pred: object, query: object) -> bool:
        return pred.overlaps(query)

    def union(self, preds: Sequence[object]) -> object:
        return IpRange(
            min(p.lo for p in preds), max(p.hi for p in preds)
        )

    def penalty(self, bp: object, key: object) -> float:
        grown = self.union([bp, key])
        return float((grown.hi - grown.lo) - (bp.hi - bp.lo))

    def pick_split(self, preds):
        order = sorted(range(len(preds)), key=lambda i: preds[i].lo)
        mid = len(order) // 2
        return order[:mid], order[mid:]

    def same(self, a: object, b: object) -> bool:
        return a == b

    def eq_query(self, key: object) -> object:
        return key


def main() -> None:
    db = Database(page_capacity=16)
    firewall = db.create_tree("firewall_rules", IpRangeExtension())

    rules = {
        "office-lan": IpRange.cidr("10.1.0.0", 16),
        "build-farm": IpRange.cidr("10.2.4.0", 24),
        "guests": IpRange.cidr("192.168.10.0", 24),
        "vpn-pool": IpRange.cidr("172.16.0.0", 20),
        "dmz": IpRange.cidr("203.0.113.0", 24),
    }
    txn = db.begin()
    for rule, cidr in rules.items():
        firewall.insert(txn, cidr, rule)
    db.commit(txn)

    probe = IpRange.cidr("10.2.4.17", 32)  # a single build-farm host
    txn = db.begin()
    matches = firewall.search(txn, probe)
    db.commit(txn)
    print("rules matching 10.2.4.17:")
    for cidr, rule in matches:
        print(f"  {rule:<12} {cidr}")
    assert {rule for _, rule in matches} == {"build-farm"}

    # ...and the custom index is crash-safe for free:
    db.crash()
    db = db.restart({"firewall_rules": IpRangeExtension()})
    firewall = db.tree("firewall_rules")
    txn = db.begin()
    assert {
        rule for _, rule in firewall.search(txn, probe)
    } == {"build-farm"}
    db.commit(txn)
    print("\ncustom access method recovered from a crash "
          "with zero recovery code in the extension ✓")


if __name__ == "__main__":
    main()
