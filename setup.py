"""Legacy setup shim (offline environments without wheel/build)."""

from setuptools import setup

setup()
