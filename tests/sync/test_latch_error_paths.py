"""Regression tests for SXLatch error paths.

A faulty metrics sink (timer) or an interrupted condition wait must
never corrupt latch state: grants roll back fully, the writer-
preference queue count stays exact, and waiters are always notified.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.sync.latch import LatchMode, SXLatch


class _Hist:
    def __init__(self) -> None:
        self.fail_next = False
        self.records: list[int] = []

    def record(self, ns: int) -> None:
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("metrics sink down")
        self.records.append(ns)


class _Timer:
    """Always-sampling latch timer whose sinks can fail on demand."""

    def __init__(self) -> None:
        self.wait_ns = _Hist()
        self.hold_ns = _Hist()

    def sample(self) -> bool:
        return True


class _InterruptingCond:
    """Wraps a real Condition; ``wait()`` raises for one victim thread.

    The victim parks in short real waits (keeping its queue position
    and releasing the underlying lock like any waiter) until ``fire``
    is set, then raises KeyboardInterrupt out of the wait — the closest
    emulation of an asynchronous interrupt landing in ``cond.wait()``.
    """

    def __init__(self, cond, victim, fire) -> None:
        self._cond = cond
        self._victim = victim
        self._fire = fire

    def __enter__(self):
        return self._cond.__enter__()

    def __exit__(self, *exc):
        return self._cond.__exit__(*exc)

    def wait(self, timeout=None):
        if threading.get_ident() == self._victim[0]:
            self._cond.wait(0.02)
            if self._fire.is_set():
                raise KeyboardInterrupt
            return True
        return self._cond.wait(timeout)

    def notify_all(self) -> None:
        self._cond.notify_all()


def _wait_for(predicate, timeout=5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


def test_faulty_wait_timer_rolls_back_x_grant():
    timer = _Timer()
    latch = SXLatch(name="fw", timer=timer)
    timer.wait_ns.fail_next = True
    with pytest.raises(RuntimeError):
        latch.acquire(LatchMode.X)
    assert latch.held_by_me() is None
    assert latch.holders() == ()
    assert latch.acquisitions == 0
    # the latch is fully usable afterwards
    assert latch.acquire(LatchMode.X)
    latch.release()
    assert timer.hold_ns.records, "hold time of the good acquire recorded"


def test_faulty_wait_timer_rolls_back_s_grant():
    timer = _Timer()
    latch = SXLatch(name="fs", timer=timer)
    timer.wait_ns.fail_next = True
    with pytest.raises(RuntimeError):
        latch.acquire(LatchMode.S)
    assert latch.held_by_me() is None
    # no phantom reader was leaked: an exclusive grant succeeds at once
    assert latch.acquire(LatchMode.X, nowait=True)
    latch.release()


def test_faulty_hold_timer_still_releases_and_wakes_waiters():
    timer = _Timer()
    latch = SXLatch(name="fh", timer=timer)
    latch.acquire(LatchMode.X)

    got = threading.Event()

    def waiter() -> None:
        latch.acquire(LatchMode.X)
        got.set()
        latch.release()

    t = threading.Thread(target=waiter)
    t.start()
    _wait_for(lambda: latch._waiting_writers == 1)
    timer.hold_ns.fail_next = True
    with pytest.raises(RuntimeError):
        latch.release()
    # ownership was dropped and the waiter notified despite the raise
    assert latch.held_by_me() is None
    assert got.wait(5.0)
    t.join(5.0)
    assert not t.is_alive()


def test_interrupted_x_waiter_resets_queue_count():
    latch = SXLatch(name="ix")
    victim = [None]
    fire = threading.Event()
    fire.set()  # raise on the very first wait
    latch._cond = _InterruptingCond(latch._cond, victim, fire)

    holder_in = threading.Event()
    holder_out = threading.Event()

    def reader() -> None:
        latch.acquire(LatchMode.S)
        holder_in.set()
        holder_out.wait(10.0)
        latch.release()

    t = threading.Thread(target=reader)
    t.start()
    assert holder_in.wait(5.0)
    victim[0] = threading.get_ident()
    with pytest.raises(KeyboardInterrupt):
        latch.acquire(LatchMode.X)
    victim[0] = None
    # the aborted writer left the queue: S grants are possible again
    assert latch._waiting_writers == 0
    assert latch.acquire(LatchMode.S, nowait=True)
    latch.release()
    holder_out.set()
    t.join(5.0)
    assert not t.is_alive()


def test_interrupted_x_waiter_wakes_queued_s_waiters():
    latch = SXLatch(name="iw")
    victim = [None]
    fire = threading.Event()
    latch._cond = _InterruptingCond(latch._cond, victim, fire)

    latch.acquire(LatchMode.S)  # main thread blocks the writer

    writer_failed = threading.Event()

    def writer() -> None:
        victim[0] = threading.get_ident()
        try:
            latch.acquire(LatchMode.X)
        except KeyboardInterrupt:
            writer_failed.set()

    tw = threading.Thread(target=writer)
    tw.start()
    _wait_for(lambda: latch._waiting_writers == 1)

    reader_got = threading.Event()

    def reader() -> None:
        latch.acquire(LatchMode.S)
        reader_got.set()
        latch.release()

    tr = threading.Thread(target=reader)
    tr.start()
    time.sleep(0.05)
    # writer preference: the queued writer blocks the second reader
    assert not reader_got.is_set()

    fire.set()  # interrupt the writer inside its wait
    tw.join(5.0)
    assert writer_failed.is_set()
    # the dying writer decremented the queue count AND notified: the
    # parked reader must come through without any further release
    assert reader_got.wait(5.0)
    tr.join(5.0)
    latch.release()
    assert latch.holders() == ()
