"""Unit tests for S/X latches."""

import threading
import time

import pytest

from repro.errors import LatchError
from repro.sync.latch import LatchMode, SXLatch


class TestBasicModes:
    def test_multiple_readers(self):
        latch = SXLatch()
        assert latch.acquire(LatchMode.S)
        done = threading.Event()

        def reader():
            latch.acquire(LatchMode.S)
            done.set()
            latch.release()

        t = threading.Thread(target=reader)
        t.start()
        assert done.wait(2.0)
        t.join()
        latch.release()

    def test_writer_excludes_reader(self):
        latch = SXLatch()
        latch.acquire(LatchMode.X)
        assert latch.held_by_me() == LatchMode.X
        got = []

        def reader():
            got.append(latch.acquire(LatchMode.S, nowait=True))

        t = threading.Thread(target=reader)
        t.start()
        t.join()
        assert got == [False]
        latch.release()

    def test_reader_excludes_writer(self):
        latch = SXLatch()
        latch.acquire(LatchMode.S)
        got = []
        t = threading.Thread(
            target=lambda: got.append(
                latch.acquire(LatchMode.X, nowait=True)
            )
        )
        t.start()
        t.join()
        assert got == [False]
        latch.release()

    def test_blocking_writer_eventually_granted(self):
        latch = SXLatch()
        latch.acquire(LatchMode.S)
        acquired = threading.Event()

        def writer():
            latch.acquire(LatchMode.X)
            acquired.set()
            latch.release()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.02)
        assert not acquired.is_set()
        latch.release()
        assert acquired.wait(2.0)
        t.join()


class TestProtocolErrors:
    def test_reacquire_raises(self):
        latch = SXLatch(name="n")
        latch.acquire(LatchMode.S)
        with pytest.raises(LatchError):
            latch.acquire(LatchMode.S)
        latch.release()

    def test_release_unheld_raises(self):
        latch = SXLatch()
        with pytest.raises(LatchError):
            latch.release()

    def test_x_then_s_request_raises(self):
        latch = SXLatch()
        latch.acquire(LatchMode.X)
        with pytest.raises(LatchError):
            latch.acquire(LatchMode.S)
        latch.release()


class TestWriterPreference:
    def test_queued_writer_blocks_new_readers(self):
        latch = SXLatch()
        latch.acquire(LatchMode.S)
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            latch.acquire(LatchMode.X)
            writer_done.set()
            latch.release()

        wt = threading.Thread(target=writer)
        wt.start()
        writer_started.wait()
        time.sleep(0.02)  # let the writer queue up
        # a fresh reader must now fail nowait (writer preference)
        got = []
        rt = threading.Thread(
            target=lambda: got.append(
                latch.acquire(LatchMode.S, nowait=True)
            )
        )
        rt.start()
        rt.join()
        assert got == [False]
        latch.release()
        assert writer_done.wait(2.0)
        wt.join()


class TestUpgrade:
    def test_upgrade_sole_reader(self):
        latch = SXLatch()
        latch.acquire(LatchMode.S)
        assert latch.upgrade()
        assert latch.held_by_me() == LatchMode.X
        latch.release()

    def test_upgrade_with_other_reader_fails(self):
        latch = SXLatch()
        latch.acquire(LatchMode.S)
        other_in = threading.Event()
        release_other = threading.Event()

        def other():
            latch.acquire(LatchMode.S)
            other_in.set()
            release_other.wait(5.0)
            latch.release()

        t = threading.Thread(target=other)
        t.start()
        other_in.wait()
        assert not latch.upgrade()
        assert latch.held_by_me() == LatchMode.S  # S retained
        release_other.set()
        t.join()
        latch.release()

    def test_upgrade_without_s_raises(self):
        latch = SXLatch()
        with pytest.raises(LatchError):
            latch.upgrade()


class TestIntrospection:
    def test_holders_and_counts(self):
        latch = SXLatch()
        assert latch.holders() == ()
        latch.acquire(LatchMode.S)
        assert threading.get_ident() in latch.holders()
        assert latch.acquisitions == 1
        latch.release()
