"""Unit tests for the deterministic interleaving hooks."""

import threading

from repro.sync.hooks import (
    CountingGate,
    EventLog,
    FiringCounter,
    Gate,
    Hooks,
    PredicateGate,
)


class TestHooks:
    def test_fire_without_callbacks_is_noop(self):
        hooks = Hooks()
        hooks.fire("nothing", x=1)  # no error

    def test_callbacks_receive_context(self):
        hooks = Hooks()
        got = []
        hooks.on("p", lambda **ctx: got.append(ctx))
        hooks.fire("p", pid=7, is_leaf=True)
        assert got == [{"pid": 7, "is_leaf": True}]

    def test_remove_and_clear(self):
        hooks = Hooks()
        got = []

        def fn(**ctx):
            got.append(1)

        hooks.on("p", fn)
        hooks.remove("p", fn)
        hooks.fire("p")
        hooks.on("p", fn)
        hooks.clear()
        hooks.fire("p")
        assert got == []

    def test_multiple_callbacks_in_order(self):
        hooks = Hooks()
        got = []
        hooks.on("p", lambda **ctx: got.append("a"))
        hooks.on("p", lambda **ctx: got.append("b"))
        hooks.fire("p")
        assert got == ["a", "b"]


class TestGate:
    def test_gate_blocks_until_opened(self):
        gate = Gate()
        passed = threading.Event()

        def victim():
            gate.block()
            passed.set()

        t = threading.Thread(target=victim)
        t.start()
        assert gate.wait_blocked(2.0)
        assert not passed.is_set()
        gate.open()
        assert passed.wait(2.0)
        t.join()

    def test_counting_gate_triggers_on_nth(self):
        gate = CountingGate(trigger_on=3)
        passed = []

        def worker():
            for _ in range(2):
                gate.block()
            passed.append(True)

        t = threading.Thread(target=worker)
        t.start()
        t.join(2.0)
        assert passed == [True]  # first two firings pass through
        blocker = threading.Thread(target=gate.block)
        blocker.start()
        assert gate.wait_blocked(2.0)
        gate.open()
        blocker.join()

    def test_predicate_gate_filters_by_context(self):
        gate = PredicateGate(lambda pid=None, **_: pid == 42)
        gate.block(pid=1)  # passes through instantly
        t = threading.Thread(target=gate.block, kwargs={"pid": 42})
        t.start()
        assert gate.wait_blocked(2.0)
        gate.open()
        t.join()


class TestEventLogAndCounter:
    def test_event_log_records(self):
        hooks = Hooks()
        log = EventLog()
        log.attach(hooks, "a", "b")
        hooks.fire("a", x=1)
        hooks.fire("b")
        hooks.fire("a", x=2)
        assert log.points() == ["a", "b", "a"]
        assert log.count("a") == 2
        assert log.events[0] == ("a", {"x": 1})

    def test_firing_counter_groups_by_key(self):
        counter = FiringCounter(key="pid")
        counter(pid=1)
        counter(pid=1)
        counter(pid=2)
        assert counter.total == 3
        assert counter.by_key() == {1: 2, 2: 1}
