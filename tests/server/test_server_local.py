"""End-to-end serving over an embedded database backend."""

import json
import threading
import time

import pytest

from repro.database import Database
from repro.errors import DeadlineExceededError, RemoteOpError, RetryLater
from repro.ext.btree import BTreeExtension, Interval
from repro.server import (
    DatabaseServer,
    LocalBackend,
    PipelinedClient,
    ReproClient,
    call_with_retry,
)


@pytest.fixture
def backend():
    db = Database()
    db.create_tree("t", BTreeExtension())
    yield LocalBackend(db)
    db.shutdown()


@pytest.fixture
def server(backend):
    with DatabaseServer(backend, port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ReproClient("127.0.0.1", server.port, "test-client") as c:
        yield c


def _count(server, *path):
    node = server.metrics.snapshot().get("server", {})
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return 0
        node = node[part]
    return node if isinstance(node, int) else 0


class TestVerbs:
    def test_put_get_delete_round_trip(self, client):
        ack = client.put("t", 10, "r1")
        assert ack["commit_lsn"] > 0
        assert ack["durable_lsn"] >= ack["commit_lsn"]
        assert client.get("t", 10) == ["r1"]
        client.delete("t", 10, "r1")
        assert client.get("t", 10) == []

    def test_multi_ops_and_search(self, client):
        client.multi_put("t", [(k, f"r{k}") for k in range(20)])
        got = client.multi_get("t", [3, 7, 99])
        assert got[3] == ["r3"]
        assert got[7] == ["r7"]
        assert got[99] == []
        pairs = client.search("t", Interval(5, 10))
        assert sorted(pairs) == [(k, f"r{k}") for k in range(5, 11)]
        client.multi_delete("t", [(3, "r3")])
        assert client.get("t", 3) == []

    def test_batch_preserves_input_order(self, client):
        ack = client.batch(
            "t",
            [
                ("put", 1, "a"),
                ("put", 2, "b"),
                ("get", 1),
                ("delete", 1, "a"),
                ("get", 1),
            ],
        )
        results = ack["results"]
        assert results[2] == ["a"]
        assert results[4] == []
        assert ack["commit_lsn"] > 0

    def test_ping_health_stats(self, client):
        assert client.ping() == "pong"
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["queues"]) == {"point", "scan"}
        stats = client.stats()
        assert "server" in stats and "merged" in stats

    def test_unknown_method_is_protocol_error(self, client, server):
        with pytest.raises(RemoteOpError):
            client._call("drop_everything", None, 1.0)
        assert _count(server, "protocol_errors") == 1

    def test_error_frames_carry_kind(self, client):
        with pytest.raises(RemoteOpError) as info:
            client.get("no-such-tree", 1)
        assert info.value.kind  # exception class name travels the wire

    def test_two_clients_are_independent_sessions(self, server, client):
        with ReproClient("127.0.0.1", server.port, "other") as other:
            assert other.session != client.session
            client.put("t", 5, "mine")
            assert other.get("t", 5) == ["mine"]


class TestDeadlines:
    def test_expired_on_arrival_is_shed_at_admission(
        self, server, client
    ):
        with pytest.raises(DeadlineExceededError):
            client._call("get", ("t", 1), -0.05)
        assert _count(server, "shed", "admission", "point") == 1
        assert _count(server, "admitted", "point") == 0

    def test_expired_in_queue_is_shed_at_dequeue(self, backend):
        # one slow worker: the first op occupies it while the second
        # ages out in the queue and must be shed before its descent
        real_get = backend.get

        def slow_get(tree, key, timeout=None):
            time.sleep(0.4)
            return real_get(tree, key, timeout=timeout)

        backend.get = slow_get
        with DatabaseServer(
            backend, port=0, point_workers=1
        ) as server:
            outcomes = []
            lock = threading.Lock()

            def note(result):
                with lock:
                    outcomes.append(result)

            with PipelinedClient(
                "127.0.0.1", server.port, "dl"
            ) as cli:
                cli.submit("get", ("t", 1), note, timeout=5.0)
                cli.submit("get", ("t", 2), note, timeout=0.1)
                deadline = time.monotonic() + 5.0
                while len(outcomes) < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
            by_status = {o["status"] for o in outcomes}
            assert by_status == {"ok", "deadline"}
            assert _count(server, "shed", "dequeue", "point") == 1

    def test_accounting_balances_after_deadline_sheds(
        self, server, client
    ):
        for i in range(5):
            client.put("t", i, f"r{i}")
        for _ in range(3):
            with pytest.raises(DeadlineExceededError):
                client._call("get", ("t", 1), -0.05)
        offered = _count(server, "offered", "point")
        admitted = _count(server, "admitted", "point")
        shed_admission = _count(server, "shed", "admission", "point")
        assert offered == admitted + shed_admission == 8
        assert admitted == _count(server, "completed", "point") == 5


class TestBackpressure:
    def test_queue_full_gets_retry_with_hint(self, backend):
        # zero workers: nothing drains the queue, so offers past the
        # bound must come back as explicit RETRY frames, never hang
        server = DatabaseServer(
            backend,
            port=0,
            point_capacity=2,
            point_workers=0,
            scan_workers=0,
        )
        server.start()
        outcomes = []
        lock = threading.Lock()

        def note(result):
            with lock:
                outcomes.append(result)

        try:
            with PipelinedClient(
                "127.0.0.1", server.port, "bp"
            ) as cli:
                for i in range(4):
                    cli.submit("put", ("t", i, f"r{i}"), note)
                deadline = time.monotonic() + 2.0
                while len(outcomes) < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
                with lock:
                    retries = [
                        o for o in outcomes if o["status"] == "retry"
                    ]
                assert len(retries) == 2
                for o in retries:
                    assert o["payload"]["reason"] == "queue_full"
                    assert o["payload"]["retry_after"] > 0
                assert _count(server, "rejected", "queue", "point") == 2
                # graceful stop sheds the two parked tickets with
                # explicit frames — while the client still listens
                server.stop()
                deadline = time.monotonic() + 5.0
                while len(outcomes) < 4 and time.monotonic() < deadline:
                    time.sleep(0.01)
        finally:
            server.stop()
        with lock:
            stopping = [
                o
                for o in outcomes
                if o["status"] == "retry"
                and o["payload"]["reason"] == "stopping"
            ]
        assert len(stopping) == 2
        assert _count(server, "shed", "stopping", "point") == 2

    def test_rate_limit_sheds_with_exact_hint(self, backend):
        with DatabaseServer(
            backend, port=0, rate_limit=5.0, rate_burst=2.0
        ) as server:
            with ReproClient(
                "127.0.0.1", server.port, "greedy"
            ) as cli:
                cli.put("t", 1, "a")
                cli.put("t", 2, "b")
                with pytest.raises(RetryLater) as info:
                    cli.put("t", 3, "c")
                assert info.value.reason == "rate_limit"
                assert 0 < info.value.retry_after <= 0.25
                assert (
                    _count(server, "rejected", "rate", "point") == 1
                )

    def test_call_with_retry_rides_through_rate_limit(self, backend):
        with DatabaseServer(
            backend, port=0, rate_limit=50.0, rate_burst=1.0
        ) as server:
            with ReproClient(
                "127.0.0.1", server.port, "patient"
            ) as cli:
                for i in range(5):
                    ack = call_with_retry(
                        lambda i=i: cli.put("t", i, f"r{i}")
                    )
                    assert ack["commit_lsn"] > 0


class TestShedBurstBlackBox:
    def test_burst_of_sheds_dumps_flight_recorder(
        self, backend, tmp_path
    ):
        with DatabaseServer(
            backend,
            port=0,
            rate_limit=0.001,
            rate_burst=1.0,
            blackbox_dir=str(tmp_path),
            shed_burst=5,
            shed_burst_window=10.0,
        ) as server:
            with ReproClient(
                "127.0.0.1", server.port, "storm"
            ) as cli:
                cli.put("t", 0, "r0")  # the single burst token
                for i in range(6):
                    with pytest.raises(RetryLater):
                        cli.put("t", i, "x")
            dumps = sorted(tmp_path.glob("server-shed-burst-*.jsonl"))
            assert len(dumps) == 1
            events = [
                json.loads(line)
                for line in dumps[0].read_text().splitlines()
            ]
            shed_events = [
                e for e in events if e["name"] == "server.shed"
            ]
            assert len(shed_events) >= 5
            assert shed_events[0]["data"]["reason"] == "rate_limit"
            assert server.metrics.snapshot()["server"][
                "blackbox_dumps"
            ] == 1
