"""Load generator ledgers: every sent frame lands in one bucket."""

import random

import pytest

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.server import DatabaseServer, LocalBackend
from repro.server.loadgen import (
    LoadReport,
    run_closed_loop,
    run_open_loop,
)
from repro.workload.generator import PoissonArrivals


@pytest.fixture
def server():
    db = Database()
    db.create_tree("t", BTreeExtension())
    with DatabaseServer(LocalBackend(db), port=0) as srv:
        yield srv
    db.shutdown()


class TestLoadReport:
    def test_balanced_accounting(self):
        report = LoadReport(offered=10, completed=6, failed=1)
        report.note_retry("queue_full")
        report.note_retry("queue_full")
        assert not report.balanced()  # 9 terminal vs 10 offered
        report.timeouts = 1
        assert report.balanced()
        assert report.retries == 2

    def test_merge_folds_every_bucket(self):
        a = LoadReport(offered=5, completed=4, latencies=[0.1])
        a.note_retry("rate_limit")
        b = LoadReport(offered=4, completed=2, dropped=1)
        b.note_retry("rate_limit")
        a.merge(b)
        assert a.offered == 9
        assert a.completed == 6
        assert a.retried == {"rate_limit": 2}
        assert a.dropped == 1
        assert a.balanced()

    def test_percentile(self):
        report = LoadReport(
            latencies=[i / 100 for i in range(1, 101)]
        )
        assert report.percentile(0.5) == pytest.approx(0.50, abs=0.02)
        assert report.percentile(0.99) == pytest.approx(0.99, abs=0.02)
        assert LoadReport().percentile(0.99) == 0.0


class TestClosedLoop:
    def test_clean_run_is_fully_completed(self, server):
        plan = [("put", ("t", k, f"r{k}")) for k in range(30)]
        plan += [("get", ("t", k)) for k in range(30)]
        report = run_closed_loop(
            "127.0.0.1",
            server.port,
            plan,
            client_id="clean",
            deadline=5.0,
        )
        assert report.offered == 60
        assert report.completed == 60
        assert report.balanced()
        assert len(report.latencies) == 60

    def test_retries_are_ledgered_and_resolve(self):
        db = Database()
        db.create_tree("t", BTreeExtension())
        with DatabaseServer(
            LocalBackend(db),
            port=0,
            rate_limit=200.0,
            rate_burst=2.0,
        ) as srv:
            report = run_closed_loop(
                "127.0.0.1",
                srv.port,
                [("put", ("t", k, "r")) for k in range(20)],
                client_id="throttled",
                deadline=5.0,
                rng=random.Random(7),
            )
        db.shutdown()
        assert report.completed == 20
        assert report.retried.get("rate_limit", 0) > 0
        assert report.balanced()


class TestOpenLoop:
    def test_poisson_schedule_drives_and_balances(self, server):
        arrivals = PoissonArrivals(
            rate=400.0, duration=0.25, seed=11
        )
        ops = []
        rng = random.Random(11)
        for i in range(len(arrivals.offsets())):
            key = rng.randrange(100)
            if rng.random() < 0.5:
                ops.append(("put", ("t", key, f"r{i}")))
            else:
                ops.append(("get", ("t", key)))
        schedule = arrivals.schedule(ops)
        report = run_open_loop(
            "127.0.0.1",
            server.port,
            schedule,
            client_id="open",
            deadline=2.0,
        )
        assert report.offered == len(schedule)
        assert report.completed > 0
        assert report.balanced()

    def test_open_loop_outruns_a_tiny_queue(self):
        # open-loop arrivals past capacity must shed, not wedge
        db = Database()
        db.create_tree("t", BTreeExtension())
        with DatabaseServer(
            LocalBackend(db),
            port=0,
            point_capacity=2,
            point_workers=1,
            rate_limit=None,
        ) as srv:
            real_put = srv.backend.put

            def slow_put(tree, key, rid, timeout=None):
                import time as _time

                _time.sleep(0.02)
                return real_put(tree, key, rid, timeout=timeout)

            srv.backend.put = slow_put
            schedule = [
                (i * 0.002, "put", ("t", i, f"r{i}"))
                for i in range(50)
            ]
            report = run_open_loop(
                "127.0.0.1",
                srv.port,
                schedule,
                client_id="flood",
                deadline=5.0,
            )
        db.shutdown()
        assert report.offered == 50
        assert report.balanced()
        assert report.retried.get("queue_full", 0) > 0
        assert report.completed > 0
