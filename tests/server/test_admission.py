"""Admission queue unit tests: bounds, FIFO, hints, shutdown."""

import threading
import time

import pytest

from repro.server.admission import AdmissionQueue, Ticket


def _ticket(req_id=1, deadline=None):
    return Ticket(
        req_id=req_id,
        method="get",
        payload=("t", req_id),
        deadline=deadline,
        conn=None,
        klass="point",
    )


class TestOfferTake:
    def test_fifo_order(self):
        q = AdmissionQueue("point", 8)
        for i in range(5):
            assert q.offer(_ticket(i)) is True
        assert [q.take().req_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_offer_refuses_when_full(self):
        q = AdmissionQueue("point", 2)
        assert q.offer(_ticket(0))
        assert q.offer(_ticket(1))
        assert q.offer(_ticket(2)) is False
        assert q.rejected == 1
        assert q.accepted == 2

    def test_offer_never_blocks(self):
        q = AdmissionQueue("point", 1)
        q.offer(_ticket(0))
        start = time.monotonic()
        assert q.offer(_ticket(1)) is False
        assert time.monotonic() - start < 0.05

    def test_take_timeout_returns_none(self):
        q = AdmissionQueue("point", 4)
        start = time.monotonic()
        assert q.take(timeout=0.05) is None
        assert time.monotonic() - start >= 0.04

    def test_take_wakes_on_offer(self):
        q = AdmissionQueue("point", 4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(2.0)))
        t.start()
        time.sleep(0.05)
        q.offer(_ticket(7))
        t.join(timeout=2.0)
        assert got and got[0].req_id == 7

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue("point", 0)


class TestRetryHint:
    def test_hint_clamped_to_floor_when_idle(self):
        q = AdmissionQueue("point", 8, min_hint=0.005, max_hint=1.0)
        assert q.retry_hint() == 0.005

    def test_hint_clamped_to_ceiling(self):
        q = AdmissionQueue("point", 4, min_hint=0.005, max_hint=0.25)
        # simulate a long observed wait
        q._ema_wait = 10.0
        for i in range(4):
            q.offer(_ticket(i))
        assert q.retry_hint() == 0.25

    def test_hint_grows_with_observed_wait(self):
        q = AdmissionQueue("point", 4)
        q.offer(_ticket(0))
        time.sleep(0.05)
        q.take()
        assert q.retry_hint() > 0.005


class TestTicket:
    def test_no_deadline_never_expires(self):
        t = _ticket(deadline=None)
        assert t.expired() is False
        assert t.remaining() is None

    def test_expired_and_remaining(self):
        t = _ticket(deadline=200.0)
        assert t.expired(now=199.0) is False
        assert t.expired(now=200.0) is True
        assert t.remaining(now=199.5) == pytest.approx(0.5)


class TestShutdown:
    def test_close_refuses_offers(self):
        q = AdmissionQueue("point", 4)
        q.close()
        assert q.offer(_ticket(0)) is False

    def test_close_wakes_blocked_taker(self):
        q = AdmissionQueue("point", 4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(5.0)))
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert got == [None]

    def test_drain_returns_leftovers(self):
        q = AdmissionQueue("point", 4)
        for i in range(3):
            q.offer(_ticket(i))
        drained = q.drain()
        assert [t.req_id for t in drained] == [0, 1, 2]
        assert len(q) == 0


class TestSnapshot:
    def test_snapshot_fields(self):
        q = AdmissionQueue("point", 4)
        q.offer(_ticket(0))
        q.offer(_ticket(1))
        q.take()
        snap = q.snapshot()
        assert snap["depth"] == 1
        assert snap["capacity"] == 4
        assert snap["accepted"] == 2
        assert snap["rejected"] == 0
        assert snap["ema_wait_ms"] >= 0.0
