"""Token bucket / rate limiter unit tests (fake clock, no sleeps)."""

import pytest

from repro.server.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_burst_then_refuse(self, clock):
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        for _ in range(5):
            ok, wait = bucket.try_acquire()
            assert ok and wait == 0.0
        ok, wait = bucket.try_acquire()
        assert not ok
        assert wait == pytest.approx(0.1)  # 1 token at 10/s

    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        for _ in range(5):
            bucket.try_acquire()
        clock.advance(0.35)
        assert bucket.available() == pytest.approx(3.5)
        ok, _ = bucket.try_acquire(3.0)
        assert ok

    def test_refill_capped_at_burst(self, clock):
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == 5.0

    def test_wait_hint_is_exact(self, clock):
        bucket = TokenBucket(4.0, 1.0, clock=clock)
        bucket.try_acquire()
        ok, wait = bucket.try_acquire()
        assert not ok
        assert wait == pytest.approx(0.25)
        clock.advance(wait)
        ok, _ = bucket.try_acquire()
        assert ok

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.0, clock=clock)


class TestRateLimiter:
    def test_disabled_always_admits(self, clock):
        limiter = RateLimiter(None, clock=clock)
        assert not limiter.enabled
        for _ in range(10_000):
            ok, wait = limiter.check("c1")
            assert ok and wait == 0.0

    def test_per_client_isolation(self, clock):
        limiter = RateLimiter(10.0, 2.0, clock=clock)
        limiter.check("greedy")
        limiter.check("greedy")
        ok, _ = limiter.check("greedy")
        assert not ok
        # a different client has its own untouched bucket
        ok, wait = limiter.check("polite")
        assert ok and wait == 0.0

    def test_default_burst_is_twice_rate(self, clock):
        limiter = RateLimiter(8.0, clock=clock)
        assert limiter.burst == 16.0

    def test_snapshot(self, clock):
        limiter = RateLimiter(10.0, clock=clock)
        limiter.check("a")
        limiter.check("b")
        snap = limiter.snapshot()
        assert snap["enabled"] is True
        assert snap["rate"] == 10.0
        assert snap["clients"] == 2
