"""End-to-end serving over a partitioned cluster backend.

The robustness story under test: a hung (SIGSTOPped) partition worker
must surface to network clients as *bounded* ``RetryLater``
backpressure — first ``partition_timeout`` when the RPC deadline
fires, then ``circuit_open`` fast-fails while the breaker cools down —
and the partition must come back via the half-open probe, all without
stalling clients whose keys live on healthy partitions.
"""

import os
import signal
import time

import pytest

from repro.cluster import PartitionedDatabase
from repro.errors import RemoteOpError, RetryLater
from repro.ext.btree import BTreeExtension, Interval
from repro.server import (
    ClusterBackend,
    DatabaseServer,
    ReproClient,
    call_with_retry,
)


@pytest.fixture
def cluster():
    c = PartitionedDatabase(
        2,
        router="hash",
        rpc_timeout=0.4,
        breaker_cooldown=0.5,
    )
    c.create_tree("t", BTreeExtension())
    yield c
    c.shutdown()


@pytest.fixture
def server(cluster):
    with DatabaseServer(ClusterBackend(cluster), port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ReproClient("127.0.0.1", server.port, "cluster-test") as c:
        yield c


def _key_for(cluster, partition):
    return next(
        k
        for k in range(1000)
        if cluster.router.partition_of(k) == partition
    )


class TestVerbs:
    def test_round_trip_across_partitions(self, cluster, client):
        for k in range(40):
            client.put("t", k, f"r{k}")
        assert client.get("t", 17) == ["r17"]
        got = client.multi_get("t", [3, 8, 900])
        assert got[3] == ["r3"] and got[900] == []
        pairs = client.search("t", Interval(10, 14))
        assert [k for k, _ in pairs] == [10, 11, 12, 13, 14]

    def test_batch_results_in_input_order(self, cluster, client):
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        ack = client.batch(
            "t",
            [
                ("put", k0, "a0"),
                ("put", k1, "b0"),
                ("get", k0),
                ("get", k1),
                ("delete", k0, "a0"),
                ("get", k0),
            ],
        )
        results = ack["results"]
        # apply_batch executes per partition; the backend must restore
        # the caller's positional order across the partition split
        assert results[2] == ["a0"]
        assert results[3] == ["b0"]
        assert results[5] == []
        assert set(ack["commit_lsn"]) == {0, 1}

    def test_stats_merges_cluster_namespaces(self, client):
        client.put("t", 1, "r1")
        stats = client.stats()
        assert "cluster" in stats["backend"]
        assert "aggregate" in stats["backend"]
        merged = stats["merged"]
        assert "server" in merged and "cluster" in merged

    def test_health_includes_breaker_states(self, client):
        health = client.health()
        breakers = health["backend"]["breakers"]
        assert breakers["0"]["state"] == "closed"
        assert breakers["1"]["state"] == "closed"


class TestHungPartition:
    def _sigstop(self, cluster, partition):
        os.kill(
            cluster.supervisor.handles[partition].process.pid,
            signal.SIGSTOP,
        )

    def test_hung_partition_becomes_bounded_backpressure(
        self, cluster, client
    ):
        k0 = _key_for(cluster, 0)
        client.put("t", k0, "r0")
        self._sigstop(cluster, 0)
        start = time.monotonic()
        with pytest.raises(RetryLater) as info:
            client.get("t", k0, timeout=5.0)
        # bounded by the RPC deadline, not the client's 5s budget
        assert time.monotonic() - start < 2.0
        assert info.value.reason == "partition_timeout"
        assert info.value.retry_after > 0

    def test_open_breaker_fast_fails_then_recovers(
        self, cluster, client
    ):
        k0 = _key_for(cluster, 0)
        client.put("t", k0, "r0")
        self._sigstop(cluster, 0)
        with pytest.raises(RetryLater):
            client.get("t", k0, timeout=5.0)
        start = time.monotonic()
        with pytest.raises(RetryLater) as info:
            client.get("t", k0, timeout=5.0)
        assert time.monotonic() - start < 0.2
        assert info.value.reason == "circuit_open"
        time.sleep(0.55)  # breaker cooldown elapses
        assert client.get("t", k0, timeout=5.0) == ["r0"]
        assert cluster.supervisor.restarts == 1

    def test_healthy_partition_unaffected(self, cluster, client):
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        client.put("t", k1, "r1")
        self._sigstop(cluster, 0)
        with pytest.raises(RetryLater):
            client.get("t", k0, timeout=5.0)
        start = time.monotonic()
        assert client.get("t", k1, timeout=5.0) == ["r1"]
        assert time.monotonic() - start < 0.3

    def test_retry_loop_rides_through_the_hang(self, cluster, server):
        k0 = _key_for(cluster, 0)
        self._sigstop(cluster, 0)
        with ReproClient(
            "127.0.0.1", server.port, "persistent"
        ) as cli:
            ack = call_with_retry(
                lambda: cli.put("t", k0, "after", timeout=5.0),
                attempts=12,
                max_backoff=0.3,
            )
            assert ack["durable_lsn"] > 0
            assert cli.get("t", k0, timeout=5.0) == ["after"]


class TestKilledPartition:
    def test_killed_worker_errors_then_recovers(self, cluster, client):
        k0 = _key_for(cluster, 0)
        client.put("t", k0, "r0")
        cluster.kill_partition(0)
        # the death is detected on first contact; the supervisor
        # replays the WAL shadow inline and the next call serves
        try:
            got = client.get("t", k0, timeout=5.0)
        except (RemoteOpError, RetryLater):
            got = client.get("t", k0, timeout=5.0)
        assert got == ["r0"]
