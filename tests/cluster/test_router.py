"""Router policies: determinism, disjoint ownership, query pruning."""

import pickle
import subprocess
import sys

import pytest

from repro.cluster.router import (
    HashRouter,
    RangeRouter,
    make_router,
    stable_hash,
)
from repro.errors import ClusterError
from repro.ext.btree import Interval


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "x")) == stable_hash((1, "x"))

    def test_int_and_bool_do_not_collide_by_identity(self):
        # bool is an int subclass; route it by pickle so True != 1
        # hashing stays explicit rather than accidental
        assert stable_hash(True) == stable_hash(True)

    def test_negative_and_large_ints(self):
        assert stable_hash(-1) == stable_hash(-1)
        assert stable_hash(2**70) == stable_hash(2**70)
        assert stable_hash(-1) != stable_hash(1)

    def test_stable_across_interpreter_processes(self):
        # builtin hash() of strings is salted per process; the router
        # hash must not be, or partition placement would change from
        # run to run and break deterministic per-partition accounting
        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.cluster.router import stable_hash; "
            "print(stable_hash('partition-me'), stable_hash(987654))"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                cwd=".",
            ).stdout
            for _ in range(2)
        }
        assert len(outs) == 1
        expected = f"{stable_hash('partition-me')} {stable_hash(987654)}\n"
        assert outs == {expected}


class TestHashRouter:
    def test_covers_all_partitions(self):
        router = HashRouter(4)
        seen = {router.partition_of(k) for k in range(1000)}
        assert seen == {0, 1, 2, 3}

    def test_point_routing_is_a_function(self):
        router = HashRouter(3)
        for key in ["a", 0, -5, (1, 2), frozenset({3})]:
            assert router.partition_of(key) == router.partition_of(key)

    def test_never_prunes_queries(self):
        assert HashRouter(3).partitions_for_query(Interval(0, 10)) is None

    def test_roundtrips_through_spec(self):
        router = HashRouter(5)
        again = make_router(router.spec(), 5)
        assert [again.partition_of(k) for k in range(50)] == [
            router.partition_of(k) for k in range(50)
        ]


class TestRangeRouter:
    def test_boundary_ownership(self):
        router = RangeRouter(3, [100, 200])
        assert router.partition_of(0) == 0
        assert router.partition_of(99) == 0
        assert router.partition_of(100) == 1
        assert router.partition_of(199) == 1
        assert router.partition_of(200) == 2
        assert router.partition_of(10**9) == 2

    def test_even_split(self):
        router = RangeRouter.even(4, 1000)
        assert router.boundaries == [250, 500, 750]

    def test_interval_pruning(self):
        router = RangeRouter(4, [100, 200, 300])
        assert router.partitions_for_query(Interval(0, 50)) == [0]
        assert router.partitions_for_query(Interval(150, 250)) == [1, 2]
        assert router.partitions_for_query(Interval(0, 999)) == [
            0,
            1,
            2,
            3,
        ]

    def test_point_query_routes_to_one_partition(self):
        router = RangeRouter(3, [10, 20])
        assert router.partitions_for_query(15) == [1]

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ClusterError):
            RangeRouter(3, [5])  # wrong count
        with pytest.raises(ClusterError):
            RangeRouter(3, [20, 10])  # not increasing

    def test_roundtrips_through_spec(self):
        router = RangeRouter(3, [7, 77])
        again = make_router(router.spec(), 3)
        assert again.boundaries == [7, 77]


class TestMakeRouter:
    def test_shorthands(self):
        assert make_router("hash", 4).kind == "hash"
        ranged = make_router("range:1000", 4)
        assert ranged.kind == "range"
        assert ranged.boundaries == [250, 500, 750]

    def test_partition_count_mismatch_rejected(self):
        with pytest.raises(ClusterError):
            make_router(HashRouter(2), 3)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ClusterError):
            make_router("consistent-hashing", 3)
        with pytest.raises(ClusterError):
            make_router({"kind": "geo"}, 3)

    def test_router_pickles_for_fork(self):
        router = RangeRouter(3, [10, 20])
        clone = pickle.loads(pickle.dumps(router))
        assert clone.partition_of(15) == 1


class TestDisjointOwnership:
    """The merged-scan exactly-once guarantee rests on this invariant."""

    @pytest.mark.parametrize("spec", ["hash", "range:10000"])
    def test_each_key_has_exactly_one_owner(self, spec):
        router = make_router(spec, 5)
        for key in range(0, 10_000, 37):
            owners = [
                p
                for p in range(5)
                if router.partition_of(key) == p
            ]
            assert len(owners) == 1
