"""Per-call RPC timeouts: channel layer + cluster layer + SIGSTOP.

The regression that motivates this file: before per-call timeouts, a
SIGSTOPped partition worker (hung, not dead — no EOF ever arrives)
would hang ``_call`` and ``_scatter`` forever.  Now the call raises
:class:`~repro.errors.PartitionTimeoutError` within its deadline, the
hung worker is SIGKILLed, its breaker opens, and healthy partitions
keep serving.
"""

import os
import signal
import threading
import time

import pytest

from repro.cluster.breaker import BreakerState
from repro.cluster.rpc import channel_pair
from repro.errors import (
    CircuitOpenError,
    PartitionFailedError,
    PartitionTimeoutError,
    RpcTimeoutError,
)
from repro.ext.btree import BTreeExtension


class TestChannelTimeouts:
    def test_recv_timeout_raises_typed_error(self):
        a, b = channel_pair()
        try:
            start = time.monotonic()
            with pytest.raises(RpcTimeoutError):
                a.recv(timeout=0.05)
            assert time.monotonic() - start < 1.0
        finally:
            a.close()
            b.close()

    def test_recv_without_timeout_still_blocks_until_data(self):
        a, b = channel_pair()
        try:
            threading.Timer(0.05, lambda: b.send("late")).start()
            assert a.recv(timeout=5.0) == "late"
        finally:
            a.close()
            b.close()

    def test_recv_timeout_spans_whole_frame(self):
        """The deadline covers header + payload, not each chunk."""
        a, b = channel_pair()
        try:
            b.send(list(range(1000)))
            assert a.recv(timeout=1.0) == list(range(1000))
        finally:
            a.close()
            b.close()

    def test_send_timeout_on_full_buffer(self):
        a, b = channel_pair()
        try:
            payload = b"x" * 1_000_000
            with pytest.raises(RpcTimeoutError):
                # nobody drains b: the socketpair buffer fills and
                # sendall blocks until the timeout fires
                for _ in range(64):
                    a.send(payload, timeout=0.05)
        finally:
            a.close()
            b.close()


@pytest.fixture
def cluster():
    from repro.cluster import PartitionedDatabase

    c = PartitionedDatabase(
        2,
        router="hash",
        rpc_timeout=0.4,
        breaker_cooldown=0.4,
    )
    c.create_tree("t", BTreeExtension())
    yield c
    c.shutdown()


def _key_for(cluster, partition):
    return next(
        k
        for k in range(1000)
        if cluster.router.partition_of(k) == partition
    )


def _sigstop(cluster, partition):
    os.kill(
        cluster.supervisor.handles[partition].process.pid,
        signal.SIGSTOP,
    )


class TestClusterTimeouts:
    def test_sigstopped_worker_times_out_not_hangs(self, cluster):
        """The headline regression: a hung worker used to hang forever."""
        k0 = _key_for(cluster, 0)
        cluster.put("t", k0, "r0")
        _sigstop(cluster, 0)
        start = time.monotonic()
        with pytest.raises(PartitionTimeoutError) as info:
            cluster.get("t", k0)
        assert time.monotonic() - start < 2.0
        assert info.value.partition == 0
        assert info.value.timeout == pytest.approx(0.4)
        assert cluster.metrics.counter_value("cluster.rpc.timeouts") == 1

    def test_timeout_trips_breaker_and_fails_fast(self, cluster):
        k0 = _key_for(cluster, 0)
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        assert cluster._breakers[0].state == BreakerState.OPEN
        start = time.monotonic()
        with pytest.raises(CircuitOpenError) as info:
            cluster.get("t", k0)
        assert time.monotonic() - start < 0.05  # no RPC happened
        assert info.value.retry_after <= 0.4

    def test_healthy_partition_unaffected_by_hung_sibling(self, cluster):
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        cluster.put("t", k1, "r1")
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        start = time.monotonic()
        assert cluster.get("t", k1) == ["r1"]
        assert time.monotonic() - start < 0.2

    def test_probe_recovers_hung_partition(self, cluster):
        k0 = _key_for(cluster, 0)
        cluster.put("t", k0, "r0")
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        time.sleep(0.45)  # cooldown elapses; next call is the probe
        assert cluster.get("t", k0) == ["r0"]
        assert cluster._breakers[0].state == BreakerState.CLOSED
        assert cluster.supervisor.restarts == 1

    def test_acked_writes_survive_the_kill(self, cluster):
        """SIGKILLing the hung worker must not lose acked commits."""
        k0 = _key_for(cluster, 0)
        for i in range(5):
            cluster.put("t", k0, f"r{i}")
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        time.sleep(0.45)
        assert sorted(cluster.get("t", k0)) == [
            f"r{i}" for i in range(5)
        ]

    def test_per_call_timeout_overrides_default(self, cluster):
        k0 = _key_for(cluster, 0)
        _sigstop(cluster, 0)
        start = time.monotonic()
        with pytest.raises(PartitionTimeoutError) as info:
            cluster.get("t", k0, timeout=0.1)
        assert time.monotonic() - start < 0.35
        assert info.value.timeout == pytest.approx(0.1)


class TestScatterTimeouts:
    def test_sigstop_mid_scatter_times_out_with_partial_acks(
        self, cluster
    ):
        """A hung leg fails its own deadline; healthy legs still ack."""
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        _sigstop(cluster, 0)
        with pytest.raises(PartitionFailedError) as info:
            cluster.apply_batch(
                "t",
                [("put", k0, "x0"), ("put", k1, "x1")],
            )
        assert isinstance(info.value, PartitionTimeoutError)
        # collect-all semantics: the healthy leg's ack is preserved
        acked = info.value.acked
        assert list(acked) == [1]
        assert acked[1]["durable_lsn"] > 0

    def test_scatter_skips_open_breaker_legs_fast(self, cluster):
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        start = time.monotonic()
        with pytest.raises(CircuitOpenError) as info:
            cluster.apply_batch(
                "t",
                [("put", k0, "y0"), ("put", k1, "y1")],
            )
        # the open leg fails fast (no 0.4s deadline wait), and the
        # healthy leg still committed
        assert time.monotonic() - start < 0.3
        assert list(info.value.acked) == [1]

    def test_scatter_probe_recovers_after_cooldown(self, cluster):
        k0, k1 = _key_for(cluster, 0), _key_for(cluster, 1)
        _sigstop(cluster, 0)
        with pytest.raises(PartitionTimeoutError):
            cluster.get("t", k0)
        time.sleep(0.45)
        acks = cluster.apply_batch(
            "t", [("put", k0, "z0"), ("put", k1, "z1")]
        )
        assert sorted(acks) == [0, 1]


class TestManifestKnobs:
    def test_rpc_knobs_persist_across_reopen(self, tmp_path):
        from repro.cluster import PartitionedDatabase

        ext = BTreeExtension()
        c = PartitionedDatabase(
            2,
            data_dir=str(tmp_path),
            rpc_timeout=1.5,
            breaker_threshold=5,
            breaker_cooldown=2.5,
        )
        c.create_tree("t", ext)
        c.shutdown()
        c2 = PartitionedDatabase.open(str(tmp_path), {"t": ext})
        try:
            assert c2.rpc_timeout == 1.5
            assert c2.breaker_threshold == 5
            assert c2.breaker_cooldown == 2.5
            assert c2._breakers[0].threshold == 5
        finally:
            c2.shutdown()

    def test_rpc_knobs_overridable_on_reopen(self, tmp_path):
        from repro.cluster import PartitionedDatabase

        ext = BTreeExtension()
        c = PartitionedDatabase(
            2, data_dir=str(tmp_path), rpc_timeout=1.5
        )
        c.create_tree("t", ext)
        c.shutdown()
        c2 = PartitionedDatabase.open(
            str(tmp_path), {"t": ext}, rpc_timeout=0.7
        )
        try:
            assert c2.rpc_timeout == 0.7
        finally:
            c2.shutdown()
