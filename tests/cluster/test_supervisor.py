"""Worker death and resurrection: SIGKILL, detection, shadow recovery."""

import pytest

from repro.cluster import PartitionedDatabase
from repro.errors import PartitionFailedError
from repro.ext.btree import BTreeExtension, Interval
from repro.harness.chaos import ChaosHarness


@pytest.fixture
def cluster():
    cluster = PartitionedDatabase(3, router="hash", page_capacity=16)
    cluster.create_tree("t", BTreeExtension())
    try:
        yield cluster
    finally:
        cluster.shutdown()


class TestKillRecover:
    def test_acked_commits_survive_sigkill(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(200)])
        cluster.kill_partition(1)
        info = cluster.recover_partition(1)
        assert info["recovered"] is not None
        assert info["recovered"]["redone"] > 0
        rows = cluster.search("t", Interval(0, 200))
        assert [k for k, _ in rows] == list(range(200))

    def test_death_detected_and_auto_recovered_on_next_op(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(100)])
        cluster.kill_partition(2)
        # ops keep flowing; each either succeeds (other partitions) or
        # fails once with PartitionFailedError while recovery runs
        failures = 0
        for key in range(100, 160):
            try:
                cluster.put("t", key, f"late{key}")
            except PartitionFailedError as exc:
                assert exc.partition == 2
                failures += 1
        assert failures >= 1  # the victim was hit at least once
        assert cluster.supervisor.restarts == 1
        # after recovery everything routes again, nothing acked is lost
        rows = cluster.search("t", Interval(0, 100))
        assert [k for k, _ in rows] == list(range(100))

    def test_scatter_failure_carries_acked_legs(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(60)])
        cluster.kill_partition(0)
        with pytest.raises(PartitionFailedError) as info:
            cluster.apply_batch(
                "t", [("put", k, f"x{k}") for k in range(60, 90)]
            )
        acked = info.value.acked
        assert 0 not in acked
        for partition, ack in acked.items():
            assert ack["commit_lsn"] > 0
        # acked legs are durable: their keys are present after the dust
        # settles; the victim's leg is "maybe" (here: absent, since the
        # worker died before the request was sent)
        survivors = {
            k
            for k, _ in cluster.search("t", Interval(60, 89))
        }
        expected_from_acked = {
            k
            for k in range(60, 90)
            if cluster.router.partition_of(k) in acked
        }
        assert expected_from_acked <= survivors

    def test_unaffected_partitions_never_blocked(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(50)])
        cluster.kill_partition(1)
        for key in range(50, 200):
            if cluster.router.partition_of(key) != 1:
                cluster.put("t", key, f"r{key}")
                break
        else:  # pragma: no cover - hash covers all partitions
            pytest.fail("no key routed away from the victim")

    def test_repeated_kill_recover_cycles(self, cluster):
        for round_no in range(3):
            base = round_no * 40
            cluster.multi_put(
                "t", [(base + i, f"r{base + i}") for i in range(40)]
            )
            victim = round_no % cluster.partitions
            cluster.kill_partition(victim)
            cluster.recover_partition(victim)
        rows = cluster.search("t", Interval(0, 120))
        assert [k for k, _ in rows] == list(range(120))
        assert cluster.supervisor.restarts == 3


class TestPartitionChaosTrial:
    def test_partition_trial_passes_oracle(self):
        harness = ChaosHarness()
        result = harness.run_partition_trial(seed=7, batches=16)
        assert result.errors == []
        assert result.ok
        assert result.killed_partition >= 0
        assert result.partition_restarts >= 1
        assert result.recovered_ok

    def test_partition_trials_across_seeds(self):
        harness = ChaosHarness()
        for seed in range(3):
            result = harness.run_partition_trial(
                seed, partitions=2, batches=12, batch_size=6
            )
            assert result.ok, result.errors
