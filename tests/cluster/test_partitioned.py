"""PartitionedDatabase: routing, scatter-gather, metrics, re-open."""

import threading

import pytest

from repro.cluster import PartitionedDatabase, RangeRouter
from repro.errors import ClusterError, WorkerFaultError
from repro.ext.btree import BTreeExtension, Interval


@pytest.fixture
def cluster():
    cluster = PartitionedDatabase(3, router="hash", page_capacity=16)
    cluster.create_tree("t", BTreeExtension())
    try:
        yield cluster
    finally:
        cluster.shutdown()


class TestBasicOps:
    def test_put_get_delete(self, cluster):
        ack = cluster.put("t", 42, "r42")
        assert ack["commit_lsn"] > 0
        assert ack["durable_lsn"] >= ack["commit_lsn"]
        assert cluster.get("t", 42) == ["r42"]
        cluster.delete("t", 42, "r42")
        assert cluster.get("t", 42) == []

    def test_multi_ops_span_partitions(self, cluster):
        pairs = [(i, f"r{i}") for i in range(120)]
        assert cluster.multi_put("t", pairs) == 120
        got = cluster.multi_get("t", list(range(120)))
        assert all(got[i] == [f"r{i}"] for i in range(120))
        assert cluster.multi_delete("t", pairs[:50]) == 50
        assert cluster.get("t", 0) == []
        assert cluster.get("t", 50) == ["r50"]

    def test_worker_errors_surface_typed(self, cluster):
        with pytest.raises(WorkerFaultError) as info:
            cluster.delete("t", 1, "never-inserted")
        assert "KeyNotFound" in info.value.kind

    def test_duplicate_tree_rejected(self, cluster):
        with pytest.raises(ClusterError):
            cluster.create_tree("t", BTreeExtension())

    def test_worker_survives_a_failed_request(self, cluster):
        with pytest.raises(WorkerFaultError):
            cluster.delete("t", 1, "nope")
        cluster.put("t", 1, "r1")  # same worker still serves
        assert cluster.get("t", 1) == ["r1"]


class TestScatterGather:
    def test_range_scan_is_ordered_and_complete(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(300)])
        rows = cluster.search("t", Interval(37, 251))
        assert [k for k, _ in rows] == list(range(37, 252))

    def test_range_router_prunes_fan_out(self):
        cluster = PartitionedDatabase(
            4, router=RangeRouter.even(4, 1000), page_capacity=16
        )
        try:
            cluster.create_tree("t", BTreeExtension())
            cluster.multi_put("t", [(i, f"r{i}") for i in range(1000)])
            before = cluster.metrics.counter(
                "cluster.scatter_queries"
            ).value
            rows = cluster.search("t", Interval(10, 40))  # partition 0
            assert [k for k, _ in rows] == list(range(10, 41))
            after = cluster.metrics.counter(
                "cluster.scatter_queries"
            ).value
            assert after == before  # single-leg query, no scatter
        finally:
            cluster.shutdown()

    def test_merged_scan_each_key_exactly_once_under_inserts(
        self, cluster
    ):
        """The exactly-once gather invariant, attacked concurrently.

        Writers keep inserting while scans run; a concurrent key may
        or may not appear in any given scan, but no key may ever
        appear twice — ownership is disjoint, so the merge never sees
        the same key from two partitions.
        """
        cluster.multi_put("t", [(i, f"base{i}") for i in range(200)])
        stop = threading.Event()
        errors: list[str] = []

        def writer(offset: int) -> None:
            i = 0
            while not stop.is_set() and i < 150:
                cluster.put("t", 200 + offset + i * 4, f"w{offset}-{i}")
                i += 1

        def scanner() -> None:
            for _ in range(25):
                rows = cluster.search("t", Interval(0, 10_000))
                keys = [k for k, _ in rows]
                if keys != sorted(keys):
                    errors.append("scan not ordered")
                if len(keys) != len(set(keys)):
                    dupes = {k for k in keys if keys.count(k) > 1}
                    errors.append(f"duplicate keys {sorted(dupes)[:5]}")
                if not set(range(200)) <= set(keys):
                    errors.append("preloaded keys missing from scan")

        threads = [
            threading.Thread(target=writer, args=(off,))
            for off in range(3)
        ] + [threading.Thread(target=scanner) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        assert errors == []


class TestMetrics:
    def test_snapshot_namespacing(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(60)])
        cluster.search("t", Interval(0, 60))
        snap = cluster.snapshot()
        assert set(snap) == {"cluster", "partition", "aggregate"}
        assert sorted(snap["partition"]) == ["0", "1", "2"]
        routed = snap["cluster"]["cluster"]["routed_ops"]
        assert routed == 60
        per_partition = sum(
            snap["cluster"]["cluster"]["partition"][str(p)]["routed_ops"]
            for p in range(3)
        )
        assert per_partition == routed
        assert snap["cluster"]["cluster"]["scatter_queries"] == 1

    def test_aggregate_sums_partition_counters(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(90)])
        snap = cluster.snapshot()
        total = snap["aggregate"]["txn"]["committed"]
        per = sum(
            snap["partition"][str(p)]["txn"]["committed"]
            for p in range(3)
        )
        assert total == per > 0


class TestReopen:
    def test_reopen_recovers_all_partitions(self, cluster):
        cluster.multi_put("t", [(i, f"r{i}") for i in range(150)])
        reopened = cluster.restart()
        try:
            rows = reopened.search("t", Interval(0, 150))
            assert [k for k, _ in rows] == list(range(150))
            # every partition really recovered from its shadow
            for handle in reopened.supervisor.handles.values():
                assert handle.ready_info["recovered"] is not None
        finally:
            reopened.shutdown()
