"""Circuit breaker state machine unit tests (fake clock, no sleeps)."""

import pytest

from repro.cluster.breaker import BreakerState, CircuitBreaker
from repro.errors import CircuitOpenError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(0, threshold=3, cooldown=1.0, clock=clock)


class TestClosed:
    def test_starts_closed_and_admits(self, breaker):
        assert breaker.state == BreakerState.CLOSED
        assert breaker.check() is False  # normal call, not a probe

    def test_single_failure_stays_closed(self, breaker):
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_threshold_consecutive_failures_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_timeout_trips_immediately(self, breaker):
        breaker.record_failure(timeout=True)
        assert breaker.state == BreakerState.OPEN

    def test_threshold_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(0, threshold=0, clock=clock)


class TestOpen:
    def test_rejects_with_remaining_cooldown(self, breaker, clock):
        breaker.record_failure(timeout=True)
        clock.advance(0.4)
        with pytest.raises(CircuitOpenError) as info:
            breaker.check()
        assert info.value.retry_after == pytest.approx(0.6)
        assert info.value.partition == 0
        assert breaker.rejections == 1

    def test_retry_after_reports_remaining(self, breaker, clock):
        assert breaker.retry_after() == 0.0
        breaker.record_failure(timeout=True)
        clock.advance(0.25)
        assert breaker.retry_after() == pytest.approx(0.75)

    def test_cooldown_elapsed_admits_probe(self, breaker, clock):
        breaker.record_failure(timeout=True)
        clock.advance(1.0)
        assert breaker.check() is True  # the probe slot
        assert breaker.state == BreakerState.HALF_OPEN


class TestHalfOpen:
    def _open_and_probe(self, breaker, clock):
        breaker.record_failure(timeout=True)
        clock.advance(1.0)
        assert breaker.check() is True

    def test_single_probe_slot(self, breaker, clock):
        self._open_and_probe(breaker, clock)
        with pytest.raises(CircuitOpenError):
            breaker.check()  # second caller: probe already in flight

    def test_probe_success_closes(self, breaker, clock):
        self._open_and_probe(breaker, clock)
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.check() is False

    def test_probe_failure_reopens(self, breaker, clock):
        self._open_and_probe(breaker, clock)
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 2
        # a fresh cooldown starts from the re-open
        with pytest.raises(CircuitOpenError):
            breaker.check()
        clock.advance(1.0)
        assert breaker.check() is True


class TestSnapshot:
    def test_snapshot_counters(self, breaker, clock):
        breaker.record_failure(timeout=True)
        with pytest.raises(CircuitOpenError):
            breaker.check()
        snap = breaker.snapshot()
        assert snap["state"] == BreakerState.OPEN
        assert snap["trips"] == 1
        assert snap["rejections"] == 1
        assert snap["failures"] == 1
