"""Frame channel + WAL shadow: framing, corruption, torn tails."""

import os
import struct
import threading

import pytest

from repro.cluster.rpc import FrameChannel, channel_pair
from repro.cluster.shadow import WalShadow
from repro.database import Database
from repro.errors import ChannelClosedError, FrameCorruptionError
from repro.ext.btree import BTreeExtension


class TestFrameChannel:
    def test_roundtrip(self):
        a, b = channel_pair()
        a.send({"hello": [1, 2, 3]})
        assert b.recv() == {"hello": [1, 2, 3]}
        b.send(("req", 1, None))
        assert a.recv() == ("req", 1, None)
        a.close()
        b.close()

    def test_large_payload(self):
        a, b = channel_pair()
        blob = list(range(200_000))
        done = []

        # a socketpair buffer cannot hold the whole frame; send and
        # recv must run concurrently, exactly as client and worker do
        def pump():
            a.send(blob)
            done.append(True)

        t = threading.Thread(target=pump)
        t.start()
        assert b.recv() == blob
        t.join()
        assert done
        a.close()
        b.close()

    def test_wire_accounting(self):
        a, b = channel_pair()
        a.send("x")
        b.recv()
        assert a.frames_sent == 1
        assert b.frames_received == 1
        assert a.bytes_sent == b.bytes_received > 0
        a.close()
        b.close()

    def test_eof_is_channel_closed(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(ChannelClosedError):
            b.recv()
        b.close()

    def test_send_to_dead_peer_is_channel_closed(self):
        import socket

        a, b = channel_pair()
        b.close()
        # the first send may be swallowed by the kernel buffer;
        # repeating it must surface the broken pipe
        with pytest.raises(ChannelClosedError):
            for _ in range(100):
                a.send(b"x" * 4096)
        a.close()
        assert isinstance(socket.socketpair, object)  # keep import used

    def test_corrupt_crc_detected(self):
        import socket

        a, b = socket.socketpair()
        payload = b"not-a-valid-frame"
        a.sendall(struct.pack("!II", len(payload), 0xDEAD) + payload)
        with pytest.raises(FrameCorruptionError):
            FrameChannel(b).recv()
        a.close()
        b.close()

    def test_absurd_length_rejected_fast(self):
        import socket

        a, b = socket.socketpair()
        a.sendall(struct.pack("!II", 2**31, 0))
        with pytest.raises(FrameCorruptionError):
            FrameChannel(b).recv()
        a.close()
        b.close()

    def test_truncated_frame_is_channel_closed(self):
        import socket

        a, b = socket.socketpair()
        a.sendall(struct.pack("!II", 100, 0) + b"only-some")
        a.close()
        with pytest.raises(ChannelClosedError):
            FrameChannel(b).recv()
        b.close()


def _build_db_with_commits(keys):
    db = Database(page_capacity=8)
    tree = db.create_tree("t", BTreeExtension())
    for key in keys:
        txn = db.begin()
        tree.insert(txn, key, f"r{key}")
        db.commit(txn)
    db.log.flush()
    return db


class TestWalShadow:
    def test_append_and_load_roundtrip(self, tmp_path):
        db = _build_db_with_commits(range(20))
        shadow = WalShadow(str(tmp_path / "p0.walshadow"))
        appended = shadow.append_durable(db.log)
        assert appended == db.log.flushed_lsn
        assert shadow.shadowed_lsn == db.log.flushed_lsn
        shadow.close()

        again = WalShadow(shadow.path)
        records = again.load_records()
        assert [r.lsn for r in records] == list(
            range(1, db.log.flushed_lsn + 1)
        )

    def test_append_is_incremental(self, tmp_path):
        db = _build_db_with_commits(range(5))
        shadow = WalShadow(str(tmp_path / "p0.walshadow"))
        first = shadow.append_durable(db.log)
        assert first > 0
        assert shadow.append_durable(db.log) == 0  # nothing new
        tree = db.tree("t")
        txn = db.begin()
        tree.insert(txn, 99, "r99")
        db.commit(txn)
        assert shadow.append_durable(db.log) > 0
        shadow.close()

    def test_unflushed_tail_not_shadowed(self, tmp_path):
        db = _build_db_with_commits(range(3))
        shadow = WalShadow(str(tmp_path / "p0.walshadow"))
        shadow.append_durable(db.log)
        boundary = shadow.shadowed_lsn
        assert boundary == db.log.flushed_lsn
        # commit appends an unflushed End record past the commit; the
        # shadow must stop at the flush boundary, never past it
        assert boundary <= db.log.end_lsn
        shadow.close()

    def test_torn_tail_truncated_on_load(self, tmp_path):
        db = _build_db_with_commits(range(10))
        path = str(tmp_path / "p0.walshadow")
        shadow = WalShadow(path)
        shadow.append_durable(db.log)
        shadow.close()
        intact = len(WalShadow(path).load_records())

        # a SIGKILL mid-append leaves a half-written frame: simulate by
        # appending a header that promises more bytes than follow
        with open(path, "ab") as fh:
            fh.write(struct.pack("!II", 500, 123) + b"torn")
        survivors = WalShadow(path).load_records()
        assert len(survivors) == intact

        # corrupt the *middle* instead: everything from there on drops
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            fh.write(b"\xff\xff\xff\xff")
        truncated = WalShadow(path).load_records()
        assert len(truncated) < intact
        assert [r.lsn for r in truncated] == list(
            range(1, len(truncated) + 1)
        )

    def test_missing_file_is_empty_history(self, tmp_path):
        shadow = WalShadow(str(tmp_path / "never-written"))
        assert shadow.load_records() == []
        assert shadow.load_log().end_lsn == 0

    def test_load_log_feeds_recovery(self, tmp_path):
        db = _build_db_with_commits(range(30))
        shadow = WalShadow(str(tmp_path / "p0.walshadow"))
        shadow.append_durable(db.log)
        shadow.close()

        log = WalShadow(shadow.path).load_log()
        db2 = Database.open_from_log(log, {"t": BTreeExtension()})
        tree2 = db2.tree("t")
        txn = db2.begin()
        from repro.ext.btree import Interval

        found = {k for k, _ in tree2.search(txn, Interval(0, 100))}
        db2.commit(txn)
        assert found == set(range(30))
