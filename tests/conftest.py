"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.ext.rdtree import RDTreeExtension
from repro.ext.rtree import RTreeExtension


@pytest.fixture
def db() -> Database:
    """A small-page database (splits happen early)."""
    return Database(page_capacity=4, lock_timeout=10.0)


@pytest.fixture
def big_db() -> Database:
    """A database with a realistic fanout."""
    return Database(page_capacity=32, lock_timeout=10.0)


@pytest.fixture
def btree(db: Database):
    """An empty B-tree GiST on the small-page database."""
    return db.create_tree("bt", BTreeExtension())


@pytest.fixture
def rtree(db: Database):
    return db.create_tree("rt", RTreeExtension())


@pytest.fixture
def rdtree(db: Database):
    return db.create_tree("rd", RDTreeExtension())


@pytest.fixture
def loaded_btree(db: Database):
    """A B-tree preloaded with keys 0..99 (rids "r0".."r99")."""
    tree = db.create_tree("bt", BTreeExtension())
    txn = db.begin()
    for i in range(100):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return tree
