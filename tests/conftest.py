"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.analysis.lockdep import drain_new_violations
from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.ext.rdtree import RDTreeExtension
from repro.ext.rtree import RTreeExtension


@pytest.fixture(autouse=True)
def _protocol_enforcement():
    """Fail any test that recorded a *hard* protocol violation.

    Active only when ``REPRO_PROTOCOL_CHECKS`` is set (every Database
    then attaches a lockdep witness; CI runs a battery this way).
    Tests that deliberately seed violations drain their own witnesses
    in a module-level autouse fixture, which tears down before this one.
    """
    yield
    if os.environ.get("REPRO_PROTOCOL_CHECKS", "").lower() in (
        "",
        "0",
        "false",
        "off",
    ):
        return
    fresh = drain_new_violations()
    assert not fresh, "hard protocol violations recorded: " + "; ".join(
        str(v) for v in fresh
    )


@pytest.fixture
def db() -> Database:
    """A small-page database (splits happen early)."""
    return Database(page_capacity=4, lock_timeout=10.0)


@pytest.fixture
def big_db() -> Database:
    """A database with a realistic fanout."""
    return Database(page_capacity=32, lock_timeout=10.0)


@pytest.fixture
def btree(db: Database):
    """An empty B-tree GiST on the small-page database."""
    return db.create_tree("bt", BTreeExtension())


@pytest.fixture
def rtree(db: Database):
    return db.create_tree("rt", RTreeExtension())


@pytest.fixture
def rdtree(db: Database):
    return db.create_tree("rd", RDTreeExtension())


@pytest.fixture
def loaded_btree(db: Database):
    """A B-tree preloaded with keys 0..99 (rids "r0".."r99")."""
    tree = db.create_tree("bt", BTreeExtension())
    txn = db.begin()
    for i in range(100):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return tree
