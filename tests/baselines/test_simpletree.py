"""Baseline trees: correctness of all four protocols, quiesced and hot."""

import random
import threading

import pytest

from repro.baselines.simpletree import (
    PROTOCOLS,
    make_baseline,
)
from repro.errors import ReproError
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rtree import Rect, RTreeExtension


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
class TestSequentialCorrectness:
    def test_insert_search_roundtrip(self, protocol):
        tree = make_baseline(protocol, BTreeExtension(), page_capacity=4)
        for i in range(100):
            tree.insert(i, f"r{i}")
        found = {k for k, _ in tree.search(Interval(0, 99))}
        assert found == set(range(100))

    def test_delete(self, protocol):
        tree = make_baseline(protocol, BTreeExtension(), page_capacity=4)
        for i in range(30):
            tree.insert(i, f"r{i}")
        assert tree.delete(5, "r5")
        assert not tree.delete(5, "r5")
        found = {k for k, _ in tree.search(Interval(0, 29))}
        assert found == set(range(30)) - {5}

    def test_contents_matches_search(self, protocol):
        tree = make_baseline(protocol, BTreeExtension(), page_capacity=8)
        rng = random.Random(protocol)
        for i in range(200):
            tree.insert(rng.randrange(1000), f"r{i}")
        assert sorted(tree.contents()) == sorted(
            tree.search(Interval(0, 1000))
        )

    def test_works_with_rtree_extension(self, protocol):
        tree = make_baseline(protocol, RTreeExtension(), page_capacity=8)
        rng = random.Random(1)
        rects = [
            Rect.point(rng.random(), rng.random()) for _ in range(80)
        ]
        for i, rect in enumerate(rects):
            tree.insert(rect, f"p{i}")
        window = Rect(0.2, 0.2, 0.8, 0.8)
        found = {rid for _, rid in tree.search(window)}
        expected = {
            f"p{i}"
            for i, rect in enumerate(rects)
            if rect.intersects(window)
        }
        assert found == expected


@pytest.mark.parametrize("protocol", ["link", "coupling", "subtree"])
class TestConcurrentCorrectness:
    def test_concurrent_writers_lose_nothing(self, protocol):
        tree = make_baseline(protocol, BTreeExtension(), page_capacity=8)
        errors = []

        def writer(wid):
            try:
                rng = random.Random(wid)
                for i in range(150):
                    tree.insert(rng.randrange(100000), f"{wid}-{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert errors == []
        assert len(tree.contents()) == 600
        assert len(tree.search(Interval(0, 100000))) == 600

    def test_concurrent_readers_and_writers(self, protocol):
        tree = make_baseline(protocol, BTreeExtension(), page_capacity=8)
        for i in range(100):
            tree.insert(i, f"pre-{i}")
        errors = []
        stop = threading.Event()

        def writer(wid):
            try:
                for i in range(100):
                    tree.insert(1000 + wid * 1000 + i, f"{wid}-{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        def reader():
            try:
                while not stop.is_set():
                    found = {
                        k for k, _ in tree.search(Interval(0, 99))
                    }
                    # the preloaded range is stable: must always be seen
                    # in full under any correct protocol
                    assert found >= set(range(100))
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        writers = [
            threading.Thread(target=writer, args=(w,)) for w in range(3)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(60.0)
        stop.set()
        for t in readers:
            t.join(10.0)
        assert errors == []


class TestFactory:
    def test_unknown_protocol_raises(self):
        with pytest.raises(ReproError):
            make_baseline("nope", BTreeExtension())

    def test_protocol_labels(self):
        for name, cls in PROTOCOLS.items():
            assert cls.protocol == name
