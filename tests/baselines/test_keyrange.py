"""Key-range locking baseline (section 4.1)."""

import threading

import pytest

from repro.baselines.keyrange import EOF_LOCK, KeyRangeIndex
from repro.errors import DeadlockError, LockTimeoutError
from repro.lock.manager import LockManager


def make_index(timeout=5.0):
    return KeyRangeIndex(LockManager(default_timeout=timeout))


class TestBasics:
    def test_insert_and_scan(self):
        index = make_index()
        for i in (5, 1, 3):
            index.insert(1, i, f"r{i}")
        index.end(1)
        assert index.scan(2, 1, 5) == [(1, "r1"), (3, "r3"), (5, "r5")]
        index.end(2)

    def test_scan_locks_next_key_past_range(self):
        index = make_index()
        for i in (1, 3, 5, 7):
            index.insert(1, i, f"r{i}")
        index.end(1)
        index.scan(2, 1, 5)
        # the first record past the range (7) must be S-locked
        assert 2 in index.locks.holders(("kr", 7, "r7"))
        index.end(2)

    def test_scan_at_end_locks_eof(self):
        index = make_index()
        index.insert(1, 1, "r1")
        index.end(1)
        index.scan(2, 0, 100)
        assert 2 in index.locks.holders(EOF_LOCK)
        index.end(2)

    def test_delete(self):
        index = make_index()
        for i in (1, 2, 3):
            index.insert(1, i, f"r{i}")
        index.end(1)
        index.delete(2, 2, "r2")
        index.end(2)
        assert index.contents() == [(1, "r1"), (3, "r3")]


class TestPhantomProtection:
    def test_insert_into_scanned_gap_blocks(self):
        index = make_index(timeout=0.3)
        for i in (10, 20, 30):
            index.insert(1, i, f"r{i}")
        index.end(1)
        index.scan(2, 10, 25)  # locks r10, r20 and next key r30
        with pytest.raises((LockTimeoutError, DeadlockError)):
            index.insert(3, 25, "phantom")
        index.end(2)
        index.end(3)

    def test_insert_outside_scanned_range_proceeds(self):
        index = make_index()
        for i in (10, 20, 30):
            index.insert(1, i, f"r{i}")
        index.end(1)
        index.scan(2, 10, 15)  # locks r10 and next key r20
        index.insert(3, 25, "fine")  # gap (20,30] is unlocked
        index.end(3)
        index.end(2)

    def test_repeatable_scan_under_concurrent_writer(self):
        index = make_index()
        for i in range(0, 100, 10):
            index.insert(1, i, f"r{i}")
        index.end(1)
        first = index.scan(2, 20, 60)
        done = threading.Event()

        def writer():
            try:
                index.insert(3, 45, "phantom")
            except (LockTimeoutError, DeadlockError):
                pass
            finally:
                index.end(3)
                done.set()

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.2)
        second = index.scan(2, 20, 60)
        assert first == second  # repeatable while txn 2 lives
        index.end(2)
        assert done.wait(10.0)
        t.join()

    def test_lock_count_is_proportional_to_result(self):
        """The efficiency claim of §4.1: a scan takes |result| + 1
        cheap physical locks (vs one predicate per visited node)."""
        index = make_index()
        for i in range(50):
            index.insert(1, i, f"r{i}")
        index.end(1)
        before = index.lock_requests
        result = index.scan(2, 10, 19)
        index.end(2)
        assert len(result) == 10
        assert index.lock_requests - before == len(result) + 1
