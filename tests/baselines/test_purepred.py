"""Pure predicate locking baseline (section 4.2)."""

import threading

import pytest

from repro.baselines.purepred import (
    GlobalPredicateTable,
    PurePredicateIndex,
)
from repro.baselines.simpletree import make_baseline
from repro.errors import LockTimeoutError
from repro.ext.btree import BTreeExtension, Interval


def make_table(timeout=5.0):
    return GlobalPredicateTable(BTreeExtension().consistent, timeout)


class TestGlobalTable:
    def test_compatible_predicates_coexist(self):
        table = make_table()
        table.register(1, Interval(0, 10), "search")
        table.register(2, Interval(20, 30), "insert")
        assert table.size() == 2

    def test_readers_never_conflict_with_readers(self):
        table = make_table()
        table.register(1, Interval(0, 10), "search")
        table.register(2, Interval(0, 10), "search")
        assert table.size() == 2

    def test_conflicting_insert_blocks_until_release(self):
        table = make_table()
        table.register(1, Interval(0, 10), "search")
        registered = threading.Event()

        def inserter():
            table.register(2, Interval(5, 5), "insert")
            registered.set()

        t = threading.Thread(target=inserter)
        t.start()
        t.join(0.2)
        assert not registered.is_set()
        table.release_owner(1)
        assert registered.wait(5.0)
        t.join()

    def test_conflicting_search_blocks_on_insert_pred(self):
        table = make_table(timeout=0.3)
        table.register(1, Interval(5, 5), "insert")
        with pytest.raises(LockTimeoutError):
            table.register(2, Interval(0, 10), "search")

    def test_comparisons_scale_with_global_count(self):
        """The §4.2 drawback: each check scans the whole table."""
        table = make_table()
        for owner in range(50):
            table.register(owner, Interval(owner * 100, owner * 100 + 1), "search")
        before = table.stats.snapshot()["comparisons"]
        table.register(999, Interval(10**6, 10**6), "insert")
        after = table.stats.snapshot()["comparisons"]
        assert after - before == 50  # every scan predicate was compared

    def test_release_owner_wakes_waiters(self):
        table = make_table()
        table.register(1, Interval(0, 100), "search")
        done = []

        def worker(owner):
            table.register(owner, Interval(50, 50), "insert")
            done.append(owner)
            table.release_owner(owner)

        threads = [
            threading.Thread(target=worker, args=(o,)) for o in (2, 3)
        ]
        for t in threads:
            t.start()
        table.release_owner(1)
        for t in threads:
            t.join(5.0)
        assert sorted(done) == [2, 3]


class TestPurePredicateIndex:
    def test_repeatable_read_semantics(self):
        tree = make_baseline("link", BTreeExtension(), page_capacity=8)
        index = PurePredicateIndex(tree, timeout=5.0)
        for i in range(20):
            index.insert(0, i, f"r{i}")
        index.end(0)
        first = index.search(1, Interval(5, 15))
        blocked = threading.Event()
        done = threading.Event()

        def writer():
            blocked.set()
            index.insert(2, 10, "phantom")
            index.end(2)
            done.set()

        t = threading.Thread(target=writer)
        t.start()
        blocked.wait()
        t.join(0.2)
        assert not done.is_set()  # blocked by the global search predicate
        second = index.search(1, Interval(5, 15))
        assert first == second
        index.end(1)
        assert done.wait(5.0)
        t.join()

    def test_range_locked_before_any_record_retrieved(self):
        """Section 4.2's second drawback: the whole range is locked
        up-front, even where no data exists."""
        tree = make_baseline("link", BTreeExtension(), page_capacity=8)
        index = PurePredicateIndex(tree, timeout=0.3)
        index.search(1, Interval(1000, 2000))  # empty region
        with pytest.raises(LockTimeoutError):
            index.insert(2, 1500, "blocked-even-though-region-empty")
        index.end(1)
