"""Unit tests for the predicate manager (section 10.3)."""

from repro.ext.btree import BTreeExtension, Interval
from repro.predicate.manager import PredicateKind, PredicateManager


def make_pm() -> PredicateManager:
    return PredicateManager(BTreeExtension().consistent)


class TestRegistrationAndAttachment:
    def test_register_tracks_per_transaction(self):
        pm = make_pm()
        p1 = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        p2 = pm.register(1, Interval(20, 30), PredicateKind.SEARCH)
        pm.register(2, Interval(5, 6), PredicateKind.INSERT)
        assert pm.predicates_of(1) == [p1, p2]
        assert pm.total_predicates() == 3

    def test_attach_is_idempotent(self):
        pm = make_pm()
        plock = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        pm.attach(plock, 5)
        pm.attach(plock, 5)
        assert len(pm.predicates_on(5)) == 1
        assert plock.attachments == {5}

    def test_detach(self):
        pm = make_pm()
        plock = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        pm.attach(plock, 5)
        pm.detach(plock, 5)
        assert pm.predicates_on(5) == []
        assert plock.attachments == set()

    def test_unregister_removes_everywhere(self):
        pm = make_pm()
        plock = pm.register(1, Interval(0, 10), PredicateKind.INSERT)
        pm.attach(plock, 5)
        pm.attach(plock, 6)
        pm.unregister(plock)
        assert pm.predicates_on(5) == [] and pm.predicates_on(6) == []
        assert pm.predicates_of(1) == []

    def test_release_transaction(self):
        pm = make_pm()
        p1 = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        p2 = pm.register(2, Interval(0, 10), PredicateKind.SEARCH)
        pm.attach(p1, 5)
        pm.attach(p2, 5)
        pm.release_transaction(1)
        assert pm.predicates_on(5) == [p2]
        assert pm.predicates_of(1) == []


class TestConflictChecking:
    def test_conflicting_respects_kind_and_owner(self):
        pm = make_pm()
        search = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        insert = pm.register(2, Interval(5, 5), PredicateKind.INSERT)
        mine = pm.register(3, Interval(5, 5), PredicateKind.SEARCH)
        for plock in (search, insert, mine):
            pm.attach(plock, 7)
        found = pm.conflicting(
            7, 5, kinds=(PredicateKind.SEARCH,), exclude_owner=3
        )
        assert found == [search]  # kind filter drops insert, owner drops mine

    def test_conflicting_uses_consistent(self):
        pm = make_pm()
        near = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        far = pm.register(2, Interval(100, 110), PredicateKind.SEARCH)
        pm.attach(near, 7)
        pm.attach(far, 7)
        found = pm.conflicting(
            7, 5, kinds=(PredicateKind.SEARCH,), exclude_owner=99
        )
        assert found == [near]

    def test_before_limits_to_fifo_prefix(self):
        pm = make_pm()
        first = pm.register(1, Interval(0, 10), PredicateKind.SEARCH)
        mine = pm.register(2, Interval(0, 10), PredicateKind.INSERT)
        later = pm.register(3, Interval(0, 10), PredicateKind.SEARCH)
        pm.attach(first, 7)
        pm.attach(mine, 7)
        pm.attach(later, 7)  # behind mine: must not be checked
        found = pm.conflicting(
            7,
            5,
            kinds=(PredicateKind.SEARCH,),
            exclude_owner=2,
            before=mine,
        )
        assert found == [first]

    def test_stats_count_comparisons(self):
        pm = make_pm()
        for owner in range(5):
            plock = pm.register(
                owner, Interval(owner, owner), PredicateKind.SEARCH
            )
            pm.attach(plock, 1)
        pm.conflicting(
            1, 2, kinds=(PredicateKind.SEARCH,), exclude_owner=99
        )
        snap = pm.stats.snapshot()
        assert snap["checks"] == 1
        assert snap["comparisons"] == 5
        assert snap["conflicts"] == 1  # only interval (2,2) matches


class TestStructuralMaintenance:
    def test_replicate_for_split_copies_consistent_only(self):
        pm = make_pm()
        low = pm.register(1, Interval(0, 4), PredicateKind.SEARCH)
        high = pm.register(2, Interval(6, 9), PredicateKind.SEARCH)
        pm.attach(low, 10)
        pm.attach(high, 10)
        copied = pm.replicate_for_split(10, 11, Interval(5, 9))
        assert copied == 1
        assert pm.predicates_on(11) == [high]

    def test_replicate_preserves_fifo_order(self):
        pm = make_pm()
        plocks = [
            pm.register(i, Interval(0, 10), PredicateKind.SEARCH)
            for i in range(4)
        ]
        for plock in plocks:
            pm.attach(plock, 10)
        pm.replicate_for_split(10, 11, Interval(0, 10))
        assert pm.predicates_on(11) == plocks

    def test_percolate_only_newly_consistent(self):
        pm = make_pm()
        always = pm.register(1, Interval(0, 4), PredicateKind.SEARCH)
        newly = pm.register(2, Interval(8, 9), PredicateKind.SEARCH)
        never = pm.register(3, Interval(50, 60), PredicateKind.SEARCH)
        for plock in (always, newly, never):
            pm.attach(plock, 10)  # the parent
        copied = pm.percolate(
            10, 11, child_new_bp=Interval(0, 9), child_old_bp=Interval(0, 4)
        )
        # 'always' was already consistent with the old BP (no copy),
        # 'newly' becomes consistent (copied), 'never' stays out
        assert copied == 1
        assert pm.predicates_on(11) == [newly]
