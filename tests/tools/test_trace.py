"""Trace pretty-printer CLI."""

from repro.obs.flightrec import FlightRecorder
from repro.obs.spans import SpanTracker
from repro.tools.trace import (
    main,
    render_file,
    render_flight_events,
    render_span_attribution,
    render_span_table,
)

SPANS = [
    {
        "op_id": 1, "kind": "insert", "tree": "t", "total_ns": 10_000,
        "cpu_ns": 6_000, "latch_wait_ns": 1_000, "lock_wait_ns": 0,
        "io_ns": 2_000, "wal_ns": 1_000, "wal_appends": 2,
        "buffer_fixes": 3,
    },
    {
        "op_id": 2, "kind": "search", "tree": "t", "total_ns": 4_000,
        "cpu_ns": 4_000, "latch_wait_ns": 0, "lock_wait_ns": 0,
        "io_ns": 0, "wal_ns": 0, "wal_appends": 0, "buffer_fixes": 2,
    },
]


class TestRendering:
    def test_span_table(self):
        out = render_span_table(SPANS)
        assert "insert" in out and "search" in out
        assert "10.000" in out  # total_us of op 1

    def test_span_table_empty(self):
        assert "no spans" in render_span_table([])

    def test_attribution_percentages(self):
        out = render_span_attribution(SPANS)
        assert "insert" in out
        # insert: io 2000/10000 = 20%
        assert "20.0" in out

    def test_flight_events(self):
        out = render_flight_events(
            [
                {"seq": 1, "ts_ns": 5, "thread": 9, "name": "txn.begin",
                 "data": {"xid": 1}},
                {"seq": 2, "ts_ns": 6, "thread": 9, "name": "db.crash"},
            ]
        )
        assert "txn.begin" in out and "db.crash" in out
        # nondeterministic fields are not rendered
        assert "thread" not in out

    def test_flight_events_limit(self):
        events = [
            {"seq": i, "name": "e", "ts_ns": 0, "thread": 0}
            for i in range(10)
        ]
        out = render_flight_events(events, limit=3)
        assert "7 older omitted" in out


class TestAutodetect:
    def test_renders_span_export(self, tmp_path):
        tracker = SpanTracker()
        tracker.finish(tracker.begin("insert", tree="t"))
        path = tracker.export_jsonl(str(tmp_path / "spans.jsonl"))
        out = render_file(path)
        assert "op spans" in out
        assert "latency attribution" in out

    def test_renders_flight_dump(self, tmp_path):
        fr = FlightRecorder()
        fr.record("txn.begin", xid=3)
        path = fr.dump(str(tmp_path / "box.jsonl"))
        out = render_file(path)
        assert "flight recorder (1 events)" in out
        assert "xid=3" in out

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "empty" in render_file(str(path))


class TestCli:
    def test_main_renders_paths(self, tmp_path, capsys):
        fr = FlightRecorder()
        fr.record("gist.split", pid=4)
        path = fr.dump(str(tmp_path / "box.jsonl"))
        assert main([path]) == 0
        assert "gist.split" in capsys.readouterr().out

    def test_main_requires_input(self, capsys):
        try:
            main([])
        except SystemExit as exc:
            assert exc.code != 0
        else:  # pragma: no cover - argparse always exits
            raise AssertionError("expected SystemExit")

    def test_demo_mode(self, capsys):
        assert main(["--demo"]) == 0
        out = capsys.readouterr().out
        assert "op spans" in out
        assert "flight recorder" in out
