"""Inspection tooling: dumps must be accurate and latch-safe."""

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.tools.inspect import (
    describe_record,
    dump_log,
    dump_tree,
    format_stats,
    lock_table_report,
)


def build():
    db = Database(page_capacity=4)
    tree = db.create_tree("t", BTreeExtension())
    txn = db.begin()
    for i in range(10):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestDumpTree:
    def test_contains_every_node(self):
        db, tree = build()
        text = dump_tree(tree)
        for pid in tree.all_pids():
            assert f"[{pid}]" in text

    def test_shows_tombstones(self):
        db, tree = build()
        txn = db.begin()
        tree.delete(txn, 3, "r3")
        db.commit(txn)
        text = dump_tree(tree, max_entries=10)
        assert f"(deleted by {txn.xid})" in text

    def test_header_metadata(self):
        db, tree = build()
        text = dump_tree(tree)
        assert "tree 't'" in text and "btree" in text


class TestDumpLog:
    def test_one_line_per_record(self):
        db, tree = build()
        text = dump_log(db.log)
        assert text.count("\n") == db.log.end_lsn  # header + N lines
        assert "SplitRecord" in text or "RootSplitRecord" in text
        assert "AddLeafEntryRecord" in text

    def test_limit_truncates(self):
        db, tree = build()
        text = dump_log(db.log, limit=3)
        assert "truncated" in text

    def test_describe_every_record_type(self):
        db, tree = build()
        txn = db.begin()
        tree.delete(txn, 1, "r1")
        db.rollback(txn)
        for record in db.log.records_from(1):
            line = describe_record(record)
            assert str(record.lsn) in line
            assert record.type_name() in line


class TestReports:
    def test_format_stats(self):
        db, tree = build()
        text = format_stats(db)
        assert "trees:" in text and "inserts: 10" in text

    def test_lock_table_report(self):
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 99, "held")
        text = lock_table_report(db)
        assert "rid" in text and "held" in text
        db.commit(txn)
        assert "(empty)" in lock_table_report(db)
