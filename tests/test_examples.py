"""Every shipped example must run clean (examples are executable docs).

The slow protocol-comparison demo is exercised with reduced parameters
via direct import; the rest run as scripts exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "spatial_reservations.py",
    "tagged_documents.py",
    "custom_access_method.py",
    "wal_tour.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip()  # examples narrate what they did
    if name in ("quickstart.py", "wal_tour.py"):
        # these close with a dump_stats() section over db.metrics
        assert "dump_stats" in result.stdout
        assert "wal.appends" in result.stdout


def test_protocol_comparison_measure_function():
    sys.path.insert(0, str(EXAMPLES))
    try:
        import protocol_comparison as pc
    finally:
        sys.path.pop(0)
    row = pc.measure("link", threads=2)
    assert row["protocol"] == "link"
    assert row["ops_per_sec"] > 0
