"""B-tree extension: interval algebra and extension-method contract."""

import pytest

from repro.ext.btree import BTreeExtension, Interval, as_interval


class TestInterval:
    def test_point_contains_itself(self):
        assert Interval.point(5).contains(5)

    def test_closed_bounds(self):
        iv = Interval(1, 5)
        assert iv.contains(1) and iv.contains(5) and iv.contains(3)
        assert not iv.contains(0) and not iv.contains(6)

    def test_open_bounds(self):
        iv = Interval(1, 5, lo_incl=False, hi_incl=False)
        assert not iv.contains(1) and not iv.contains(5)
        assert iv.contains(2)

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            Interval(5, 1)

    def test_intersects_overlap(self):
        assert Interval(1, 5).intersects(Interval(4, 9))
        assert Interval(4, 9).intersects(Interval(1, 5))
        assert not Interval(1, 3).intersects(Interval(4, 9))

    def test_intersects_touching_closed(self):
        assert Interval(1, 5).intersects(Interval(5, 9))

    def test_intersects_touching_open(self):
        assert not Interval(1, 5, hi_incl=False).intersects(
            Interval(5, 9)
        )
        assert not Interval(1, 5).intersects(
            Interval(5, 9, lo_incl=False)
        )

    def test_union_spans_both(self):
        assert Interval(1, 3).union_with(Interval(7, 9)) == Interval(1, 9)

    def test_union_preserves_inclusivity_at_extremes(self):
        a = Interval(1, 5, lo_incl=False)
        b = Interval(3, 9, hi_incl=False)
        u = a.union_with(b)
        assert u == Interval(1, 9, lo_incl=False, hi_incl=False)

    def test_strings_work(self):
        iv = Interval("apple", "mango")
        assert iv.contains("banana")
        assert not iv.contains("zebra")


class TestExtensionContract:
    ext = BTreeExtension()

    def test_consistent_point_vs_interval(self):
        assert self.ext.consistent(5, Interval(0, 10))
        assert self.ext.consistent(Interval(0, 10), 5)
        assert not self.ext.consistent(50, Interval(0, 10))

    def test_union_of_points_and_intervals(self):
        u = self.ext.union([3, Interval(5, 9), 1])
        assert u == Interval(1, 9)

    def test_union_empty_raises(self):
        with pytest.raises(ValueError):
            self.ext.union([])

    def test_penalty_zero_when_covered(self):
        assert self.ext.penalty(Interval(0, 10), 5) == 0.0

    def test_penalty_equals_stretch(self):
        assert self.ext.penalty(Interval(0, 10), 14) == 4.0
        assert self.ext.penalty(Interval(10, 20), 4) == 6.0

    def test_penalty_non_numeric_fallback(self):
        assert self.ext.penalty(Interval("b", "d"), "z") == 1.0
        assert self.ext.penalty(Interval("b", "d"), "c") == 0.0

    def test_pick_split_is_partition(self):
        preds = [9, 1, 5, 3, 7, 2]
        left, right = self.ext.pick_split(preds)
        assert sorted(left + right) == list(range(len(preds)))
        assert left and right

    def test_pick_split_respects_order(self):
        preds = [9, 1, 5, 3]
        left, right = self.ext.pick_split(preds)
        max_left = max(preds[i] for i in left)
        min_right = min(preds[i] for i in right)
        assert max_left <= min_right

    def test_same(self):
        assert self.ext.same(Interval(1, 5), Interval(1, 5))
        assert self.ext.same(5, Interval(5, 5))
        assert not self.ext.same(Interval(1, 5), Interval(1, 6))

    def test_eq_query_matches_only_key(self):
        eq = self.ext.eq_query(5)
        assert self.ext.consistent(5, eq)
        assert not self.ext.consistent(6, eq)

    def test_covers(self):
        assert self.ext.covers(Interval(0, 10), 5)
        assert not self.ext.covers(Interval(0, 10), 11)
        assert self.ext.covers(None, 123)  # None = whole space

    def test_organize_sorts(self):
        order = self.ext.organize([5, 1, 3])
        assert order == [1, 2, 0]

    def test_as_interval_idempotent(self):
        iv = Interval(1, 2)
        assert as_interval(iv) is iv
        assert as_interval(7) == Interval(7, 7)
