"""R-tree extension: rectangle algebra, quadratic split, end-to-end."""

import random

import pytest

from repro.ext.rtree import Rect, RTreeExtension
from repro.gist.checker import check_tree


class TestRect:
    def test_point_rect(self):
        p = Rect.point(0.5, 0.5)
        assert p.area == 0.0
        assert p.intersects(Rect(0, 0, 1, 1))

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_intersects_and_disjoint(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_contains(self):
        assert Rect(0, 0, 4, 4).contains(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 4, 4).contains(Rect(3, 3, 5, 5))

    def test_union_and_area(self):
        u = Rect(0, 0, 1, 1).union_with(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)
        assert u.area == 9.0


class TestExtensionContract:
    ext = RTreeExtension()

    def test_penalty_is_area_growth(self):
        bp = Rect(0, 0, 2, 2)
        assert self.ext.penalty(bp, Rect(1, 1, 2, 2)) == 0.0
        assert self.ext.penalty(bp, Rect(0, 0, 4, 2)) == pytest.approx(
            4.0
        )

    def test_union(self):
        u = self.ext.union([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)])
        assert u == Rect(0, 0, 6, 6)

    def test_pick_split_partition_and_balance(self):
        rng = random.Random(0)
        rects = [
            Rect.point(rng.random(), rng.random()) for _ in range(20)
        ]
        left, right = self.ext.pick_split(rects)
        assert sorted(left + right) == list(range(20))
        assert len(left) >= 20 // 3 and len(right) >= 20 // 3

    def test_pick_split_separates_clusters(self):
        low = [Rect.point(0.1 + i * 0.01, 0.1) for i in range(5)]
        high = [Rect.point(0.9 - i * 0.01, 0.9) for i in range(5)]
        rects = low + high
        left, right = self.ext.pick_split(rects)
        groups = [set(left), set(right)]
        assert {0, 1, 2, 3, 4} in groups or {
            5,
            6,
            7,
            8,
            9,
        } in groups

    def test_pick_split_minimum_size(self):
        with pytest.raises(ValueError):
            self.ext.pick_split([Rect.point(0, 0)])


class TestRTreeEndToEnd:
    def test_window_queries(self, db, rtree):
        rng = random.Random(42)
        points = {}
        txn = db.begin()
        for i in range(150):
            rect = Rect.point(rng.random(), rng.random())
            rid = f"p{i}"
            rtree.insert(txn, rect, rid)
            points[rid] = rect
        db.commit(txn)
        assert check_tree(rtree).ok
        window = Rect(0.25, 0.25, 0.75, 0.75)
        txn = db.begin()
        found = {rid for _, rid in rtree.search(txn, window)}
        db.commit(txn)
        expected = {
            rid
            for rid, rect in points.items()
            if rect.intersects(window)
        }
        assert found == expected

    def test_delete_and_research(self, db, rtree):
        txn = db.begin()
        rects = [Rect.point(i / 10, i / 10) for i in range(10)]
        for i, rect in enumerate(rects):
            rtree.insert(txn, rect, f"p{i}")
        db.commit(txn)
        txn = db.begin()
        rtree.delete(txn, rects[3], "p3")
        db.commit(txn)
        txn = db.begin()
        found = {rid for _, rid in rtree.search(txn, Rect(0, 0, 1, 1))}
        db.commit(txn)
        assert found == {f"p{i}" for i in range(10) if i != 3}

    def test_crash_recovery_spatial(self, db, rtree):
        txn = db.begin()
        for i in range(60):
            rtree.insert(txn, Rect.point(i / 60, (i * 7 % 60) / 60), f"p{i}")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"rt": RTreeExtension()})
        tree2 = db2.tree("rt")
        txn = db2.begin()
        found = tree2.search(txn, Rect(0, 0, 1, 1))
        db2.commit(txn)
        assert len(found) == 60
        assert check_tree(tree2).ok
