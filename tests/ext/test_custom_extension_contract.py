"""The extension contract, proven with a from-scratch access method.

Mirrors examples/custom_access_method.py as a test: a brand-new key
domain (1-D integer ranges) implemented against the GiSTExtension ABC
gets search/insert/delete, splits, repeatable read and crash recovery
without touching any of it — the paper's extensibility thesis (§12) as
an executable assertion.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.database import Database
from repro.errors import TransactionAbort
from repro.gist.checker import check_tree
from repro.gist.extension import GiSTExtension


@dataclass(frozen=True)
class Span:
    lo: int
    hi: int

    def overlaps(self, other: "Span") -> bool:
        return not (self.hi < other.lo or other.hi < self.lo)


class SpanExtension(GiSTExtension):
    """Minimal custom access method: integer spans, overlap queries."""

    name = "span"

    def consistent(self, pred, query) -> bool:
        return pred.overlaps(query)

    def union(self, preds: Sequence) -> Span:
        return Span(min(p.lo for p in preds), max(p.hi for p in preds))

    def penalty(self, bp, key) -> float:
        grown = self.union([bp, key])
        return float((grown.hi - grown.lo) - (bp.hi - bp.lo))

    def pick_split(self, preds):
        order = sorted(range(len(preds)), key=lambda i: preds[i].lo)
        mid = len(order) // 2
        return order[:mid], order[mid:]

    def same(self, a, b) -> bool:
        return a == b

    def eq_query(self, key) -> Span:
        return key


def build():
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("spans", SpanExtension())
    return db, tree


class TestCustomExtensionGetsEverything:
    def test_basic_operations(self):
        db, tree = build()
        txn = db.begin()
        for i in range(50):
            tree.insert(txn, Span(i * 10, i * 10 + 15), f"s{i}")
        db.commit(txn)
        txn = db.begin()
        hits = tree.search(txn, Span(100, 120))
        db.commit(txn)
        expected = {
            f"s{i}"
            for i in range(50)
            if Span(i * 10, i * 10 + 15).overlaps(Span(100, 120))
        }
        assert {r for _, r in hits} == expected
        assert check_tree(tree).ok

    def test_splits_happen_through_template_code(self):
        db, tree = build()
        txn = db.begin()
        for i in range(80):
            tree.insert(txn, Span(i, i + 2), f"s{i}")
        db.commit(txn)
        assert tree.stats.splits > 5
        assert tree.height() >= 3

    def test_repeatable_read_for_free(self):
        db, tree = build()
        setup = db.begin()
        for i in range(20):
            tree.insert(setup, Span(i * 10, i * 10 + 5), f"s{i}")
        db.commit(setup)
        reader = db.begin()
        first = tree.search(reader, Span(0, 100))
        done = threading.Event()

        def writer():
            txn = db.begin()
            try:
                tree.insert(txn, Span(50, 55), "phantom")
                db.commit(txn)
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        t.join(0.3)
        assert not done.is_set()  # blocked by the reader's predicate
        second = tree.search(reader, Span(0, 100))
        assert first == second
        db.commit(reader)
        assert done.wait(10.0)

    def test_crash_recovery_for_free(self):
        db, tree = build()
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, Span(i, i + 1), f"s{i}")
        db.commit(txn)
        loser = db.begin()
        tree.insert(loser, Span(999, 1000), "lost")
        db.log.flush()
        db.crash()
        db2 = db.restart({"spans": SpanExtension()})
        tree2 = db2.tree("spans")
        txn = db2.begin()
        found = {r for _, r in tree2.search(txn, Span(0, 10_000))}
        db2.commit(txn)
        assert found == {f"s{i}" for i in range(30)}
        assert check_tree(tree2).ok

    def test_vacuum_for_free(self):
        from repro.gist.maintenance import vacuum

        db, tree = build()
        txn = db.begin()
        for i in range(60):
            tree.insert(txn, Span(i, i + 1), f"s{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(60):
            tree.delete(txn, Span(i, i + 1), f"s{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(tree, txn)
        db.commit(txn)
        assert report.entries_collected == 60
        assert report.nodes_deleted > 0
