"""RD-tree extension: set algebra and overlap queries end-to-end."""

import random

import pytest

from repro.errors import ExtensionError
from repro.ext.rdtree import RDTreeExtension, as_key_set
from repro.gist.checker import check_tree


class TestKeyNormalization:
    def test_as_key_set_accepts_iterables(self):
        assert as_key_set([1, 2, 2]) == frozenset({1, 2})
        assert as_key_set({"a"}) == frozenset({"a"})

    def test_empty_set_rejected(self):
        with pytest.raises(ExtensionError):
            as_key_set([])


class TestExtensionContract:
    ext = RDTreeExtension()

    def test_consistent_is_overlap(self):
        assert self.ext.consistent({1, 2}, {2, 3})
        assert not self.ext.consistent({1, 2}, {3, 4})

    def test_union(self):
        assert self.ext.union([{1}, {2}, {2, 3}]) == frozenset({1, 2, 3})

    def test_penalty_counts_new_elements(self):
        assert self.ext.penalty({1, 2, 3}, {2, 3}) == 0.0
        assert self.ext.penalty({1, 2}, {2, 3, 4}) == 2.0

    def test_pick_split_partition(self):
        sets = [frozenset({i, i + 1}) for i in range(10)]
        left, right = self.ext.pick_split(sets)
        assert sorted(left + right) == list(range(10))
        assert left and right

    def test_pick_split_separates_disjoint_families(self):
        family_a = [frozenset({1, 2, i}) for i in range(100, 104)]
        family_b = [frozenset({50, 60, i}) for i in range(200, 204)]
        left, right = self.ext.pick_split(family_a + family_b)
        left_set, right_set = set(left), set(right)
        a_idx, b_idx = set(range(4)), set(range(4, 8))
        assert (a_idx <= left_set and b_idx <= right_set) or (
            a_idx <= right_set and b_idx <= left_set
        )

    def test_same_and_eq_query(self):
        assert self.ext.same({1, 2}, frozenset({2, 1}))
        eq = self.ext.eq_query({1, 2})
        assert self.ext.consistent({2, 9}, eq)  # overlap superset of eq


class TestRDTreeEndToEnd:
    def test_overlap_queries(self, db, rdtree):
        rng = random.Random(7)
        docs = {}
        txn = db.begin()
        for i in range(100):
            tags = frozenset(rng.sample(range(30), k=4))
            rid = f"doc{i}"
            rdtree.insert(txn, tags, rid)
            docs[rid] = tags
        db.commit(txn)
        assert check_tree(rdtree).ok
        probe = frozenset({3, 17})
        txn = db.begin()
        found = {rid for _, rid in rdtree.search(txn, probe)}
        db.commit(txn)
        expected = {rid for rid, tags in docs.items() if tags & probe}
        assert found == expected

    def test_exact_delete_among_overlapping_sets(self, db, rdtree):
        txn = db.begin()
        rdtree.insert(txn, {1, 2, 3}, "a")
        rdtree.insert(txn, {2, 3, 4}, "b")
        rdtree.insert(txn, {1, 2, 3}, "c")  # same key as "a"
        db.commit(txn)
        txn = db.begin()
        rdtree.delete(txn, {1, 2, 3}, "a")
        db.commit(txn)
        txn = db.begin()
        found = sorted(rid for _, rid in rdtree.search(txn, {2}))
        db.commit(txn)
        assert found == ["b", "c"]
