"""Chaos serving trials: whole-server SIGKILL + commit-LSN oracle."""

import pytest

from repro.harness.chaos import ChaosHarness


@pytest.mark.parametrize("seed", [1, 7])
def test_server_trial_oracle_holds(seed):
    harness = ChaosHarness()
    result = harness.run_server_trial(
        seed, partitions=2, batches=20, batch_size=3
    )
    assert result.ok, result.errors


def test_server_trial_commits_before_the_kill():
    harness = ChaosHarness()
    result = harness.run_server_trial(
        11, partitions=2, batches=20, batch_size=3
    )
    assert result.ok, result.errors
    # the kill is seeded to land mid-load: some batches must have been
    # acknowledged before it, or the oracle verified an empty run
    assert result.committed_txns > 0
