"""run_with_retry: jittered-backoff retry of retryable aborts."""

import random

import pytest

from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    TransientIOError,
    UniqueViolationError,
)
from repro.harness.driver import RETRYABLE_ERRORS, run_with_retry


class Flaky:
    """Fails ``failures`` times with ``exc``, then returns ``value``."""

    def __init__(self, failures, exc, value="done"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


class TestRunWithRetry:
    def test_success_first_try(self):
        fn = Flaky(0, DeadlockError("never"))
        assert run_with_retry(fn) == "done"
        assert fn.calls == 1

    @pytest.mark.parametrize(
        "exc_type", RETRYABLE_ERRORS, ids=lambda t: t.__name__
    )
    def test_retries_each_retryable_error(self, exc_type):
        fn = Flaky(2, exc_type("flaky"))
        assert run_with_retry(fn, attempts=5) == "done"
        assert fn.calls == 3

    def test_exhausted_attempts_reraise(self):
        fn = Flaky(10, TransientIOError("always"))
        with pytest.raises(TransientIOError):
            run_with_retry(fn, attempts=3)
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(1, UniqueViolationError("dup"))
        with pytest.raises(UniqueViolationError):
            run_with_retry(fn, attempts=5)
        assert fn.calls == 1

    def test_on_retry_sees_every_failure(self):
        seen = []
        fn = Flaky(4, DeadlockError("d"))
        with pytest.raises(DeadlockError):
            run_with_retry(
                fn,
                attempts=3,
                on_retry=lambda n, exc: seen.append((n, type(exc))),
            )
        # called for every retryable failure, including the final one
        assert seen == [
            (1, DeadlockError),
            (2, DeadlockError),
            (3, DeadlockError),
        ]

    def test_backoff_is_jittered_and_bounded(self, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.harness.driver.time.sleep", delays.append
        )
        fn = Flaky(4, LockTimeoutError("t"))
        run_with_retry(
            fn,
            attempts=5,
            base_backoff=0.010,
            max_backoff=0.020,
            rng=random.Random(7),
        )
        assert len(delays) == 4
        # exponential growth up to the cap, jittered in [0.5x, 1.5x)
        bases = [0.010, 0.020, 0.020, 0.020]
        for delay, base in zip(delays, bases):
            assert 0.5 * base <= delay < 1.5 * base

    def test_seeded_rng_is_deterministic(self, monkeypatch):
        def run():
            delays = []
            monkeypatch.setattr(
                "repro.harness.driver.time.sleep", delays.append
            )
            fn = Flaky(3, DeadlockError("d"))
            run_with_retry(
                fn,
                attempts=5,
                base_backoff=0.001,
                rng=random.Random(42),
            )
            return delays

        assert run() == run()

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        def no_sleep(_):  # pragma: no cover - should not be called
            raise AssertionError("slept with base_backoff=0")

        monkeypatch.setattr("repro.harness.driver.time.sleep", no_sleep)
        fn = Flaky(2, DeadlockError("d"))
        assert run_with_retry(fn, attempts=5) == "done"
