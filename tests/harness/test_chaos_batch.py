"""Chaos batch trials: crashing mid-bulk_load and mid-multi_put."""

import pytest

from repro.harness.chaos import ChaosHarness


class TestBatchTrials:
    def test_seeded_trials_pass(self):
        harness = ChaosHarness(protocol_checks=True)
        for seed in range(6):
            result = harness.run_batch_trial(seed)
            assert result.ok, f"seed {seed}: {result.errors}"

    @pytest.mark.parametrize("crash_point", ChaosHarness.BATCH_CRASH_POINTS)
    def test_every_crash_point_recovers(self, crash_point):
        # pin the crash point; the oracle (commit-LSN cut + tree check +
        # linearizable contents) must hold wherever the batch dies
        harness = ChaosHarness(protocol_checks=True)
        for seed in (1, 4):
            result = harness.run_batch_trial(
                seed, crash_point=crash_point
            )
            assert result.ok, (
                f"{crash_point} seed {seed}: {result.errors}"
            )

    def test_trial_reports_crash_metadata(self):
        harness = ChaosHarness()
        result = harness.run_batch_trial(2)
        assert result.ok
        assert result.seed == 2

    def test_same_seed_is_deterministic(self):
        harness = ChaosHarness()
        a = harness.run_batch_trial(7)
        b = harness.run_batch_trial(7)
        assert a.ok and b.ok
        assert a.committed_txns == b.committed_txns
        assert a.uncommitted_txns == b.uncommitted_txns
