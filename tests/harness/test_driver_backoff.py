"""ClusterDriver retry backoff: gate the retry storm.

A partition crash fails every client thread routed at it at the same
moment.  With the old ``base_backoff=0`` hot loop, each thread burned
its whole retry budget in microseconds — a storm of doomed calls
against the partition mid-recovery.  The driver now forwards jittered
exponential backoff into :func:`run_with_retry`; these tests count the
sleeps to pin that behavior (and pin that ``retry_backoff=0`` still
means the deterministic hot loop).
"""

import random

import pytest

from repro.errors import PartitionFailedError
from repro.harness import driver as driver_mod
from repro.harness.driver import ClusterDriver
from repro.workload.generator import Op


class FlakyCluster:
    """Stub cluster: each put fails ``failures`` times, then lands."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0
        self.partitions = 2

    def put(self, tree, key, rid) -> None:
        self.calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise PartitionFailedError(0, "injected crash")

    def snapshot(self) -> dict:
        return {"cluster": {"cluster": {}}}


@pytest.fixture
def sleeps(monkeypatch):
    recorded: list[float] = []
    monkeypatch.setattr(
        driver_mod.time, "sleep", lambda s: recorded.append(s)
    )
    return recorded


def _run_one_op(cluster, **knobs):
    drv = ClusterDriver(cluster, "t", **knobs)
    return drv.run([Op(kind="insert", key=1, rid="r1")], threads=1)


class TestBackoffGate:
    def test_default_backs_off_between_retries(self, sleeps):
        cluster = FlakyCluster(failures=5)
        metrics = _run_one_op(
            cluster, rng=random.Random(42)
        )
        assert metrics.commits == 1
        assert metrics.aborts == 5
        # the storm gate: every retry slept, none was a hot retry
        assert len(sleeps) == 5
        assert all(delay > 0 for delay in sleeps)

    def test_backoff_grows_and_is_capped(self, sleeps):
        cluster = FlakyCluster(failures=9)
        _run_one_op(
            cluster,
            retry_backoff=0.002,
            retry_max_backoff=0.05,
            rng=random.Random(7),
        )
        # jitter scales each delay by [0.5, 1.5); the cap still binds
        assert max(sleeps) <= 0.05 * 1.5
        assert min(sleeps) >= 0.002 * 0.5
        # late retries wait longer than the first (exponential growth
        # dominates the jitter band at 4 doublings)
        assert sleeps[-1] > sleeps[0]

    def test_zero_backoff_restores_hot_loop(self, sleeps):
        cluster = FlakyCluster(failures=5)
        metrics = _run_one_op(cluster, retry_backoff=0.0)
        assert metrics.commits == 1
        assert sleeps == []

    def test_seeded_rng_is_deterministic(self, monkeypatch):
        runs = []
        for _ in range(2):
            recorded: list[float] = []
            monkeypatch.setattr(
                driver_mod.time,
                "sleep",
                lambda s, r=recorded: r.append(s),
            )
            _run_one_op(
                FlakyCluster(failures=4), rng=random.Random(123)
            )
            runs.append(recorded)
        assert runs[0] == runs[1]
        assert len(runs[0]) == 4

    def test_exhausted_retries_abandon_the_op(self, sleeps):
        cluster = FlakyCluster(failures=100)
        metrics = _run_one_op(cluster, max_retries=3)
        assert metrics.commits == 0
        assert metrics.aborts == 4  # initial try + 3 retries, all failed
        assert cluster.calls == 4
