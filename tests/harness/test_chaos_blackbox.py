"""Failed chaos trials ship a replayable flight-recorder black box."""

import os

from repro.faults import FaultKind
from repro.harness.chaos import ChaosHarness
from repro.obs.export import canonical_events, load_jsonl


class _BrokenOracleHarness(ChaosHarness):
    """Test-only: misreport every commit LSN so the oracle's expected
    contents are wrong and any trial with surviving commits fails."""

    def _commit_lsn(self, db, xid, mark):
        return 0


#: a quiet fault mix (no WAL-tail loss) so commits always survive and
#: the broken oracle reliably produces a content mismatch
QUIET = frozenset({FaultKind.TRANSIENT_READ})


class TestBlackboxOnFailure:
    def test_failed_trial_dumps_and_embeds_path(self, tmp_path):
        harness = _BrokenOracleHarness(
            kinds=QUIET, blackbox_dir=str(tmp_path)
        )
        result = harness.run_trial(3, txns=8)
        assert not result.ok
        assert result.blackbox_path is not None
        assert result.blackbox_path.startswith(str(tmp_path))
        assert os.path.exists(result.blackbox_path)
        # the result embeds the dump path and the last-events tail
        blackbox_errors = [
            e for e in result.errors if e.startswith("blackbox: ")
        ]
        assert len(blackbox_errors) == 1
        assert result.blackbox_path in blackbox_errors[0]
        assert "last events:" in blackbox_errors[0]
        assert "db.recovered" in blackbox_errors[0]

    def test_dump_holds_the_precrash_story(self, tmp_path):
        harness = _BrokenOracleHarness(
            kinds=QUIET, blackbox_dir=str(tmp_path)
        )
        result = harness.run_trial(3, txns=8)
        names = [e["name"] for e in load_jsonl(result.blackbox_path)]
        assert "txn.commit" in names  # pre-crash events survived
        assert "db.crash" in names
        assert "db.recovered" in names

    def test_passing_trial_ships_no_blackbox(self, tmp_path):
        harness = ChaosHarness(kinds=QUIET, blackbox_dir=str(tmp_path))
        result = harness.run_trial(3, txns=8)
        assert result.ok
        assert result.blackbox_path is None
        assert os.listdir(str(tmp_path)) == []


class TestReplayDeterminism:
    def test_same_seed_replays_bit_for_bit(self, tmp_path):
        """Acceptance: the black box of a failed seeded trial replays
        to the same canonical event sequence on a second run."""
        dumps = []
        for run in ("a", "b"):
            directory = str(tmp_path / run)
            harness = _BrokenOracleHarness(
                kinds=QUIET, blackbox_dir=directory, protocol_checks=True
            )
            result = harness.run_trial(3, txns=8)
            assert not result.ok
            dumps.append(load_jsonl(result.blackbox_path))
        assert canonical_events(dumps[0]) == canonical_events(dumps[1])
        # and the raw dumps differ only in the nondeterministic fields
        assert len(dumps[0]) == len(dumps[1])

    def test_faulty_seeds_replay_bit_for_bit(self, tmp_path):
        """Same, under the full fault mix (storage + WAL-tail faults)."""
        seed = 1
        dumps = []
        for run in ("a", "b"):
            directory = str(tmp_path / run)
            harness = _BrokenOracleHarness(blackbox_dir=directory)
            result = harness.run_trial(seed, txns=10)
            if result.blackbox_path is None:
                # broken oracle did not trip (no surviving commits);
                # the determinism claim is then vacuous for this seed
                return
            dumps.append(load_jsonl(result.blackbox_path))
        assert canonical_events(dumps[0]) == canonical_events(dumps[1])
