"""Unit coverage of the phantom-probe harness itself."""

from repro.harness.phantoms import AnomalyReport, run_phantom_campaign
from repro.txn.transaction import IsolationLevel


class TestAnomalyReport:
    def test_rate_zero_probes(self):
        assert AnomalyReport().anomaly_rate == 0.0

    def test_rate(self):
        report = AnomalyReport(probes=10, anomalies=3)
        assert report.anomaly_rate == 0.3


class TestCampaignPlumbing:
    def test_reports_isolation_name(self):
        report = run_phantom_campaign(
            isolation=IsolationLevel.REPEATABLE_READ,
            probes=2,
            writers=1,
            preload=50,
            think_time=0.001,
        )
        assert report.isolation == "repeatable-read"
        assert report.probes <= 2

    def test_zero_writers_zero_anomalies_trivially(self):
        report = run_phantom_campaign(
            isolation=IsolationLevel.READ_COMMITTED,
            probes=3,
            writers=0,
            preload=50,
            think_time=0.0,
        )
        assert report.anomalies == 0
        assert report.writer_commits == 0

    def test_phantom_rids_recorded_on_anomaly(self):
        report = run_phantom_campaign(
            isolation=IsolationLevel.READ_COMMITTED,
            probes=6,
            writers=3,
            preload=200,
            think_time=0.02,
            seed=3,
        )
        if report.anomalies:
            assert report.phantom_rids
