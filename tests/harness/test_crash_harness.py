"""The crash harness itself: result plumbing and oracle correctness."""

from repro.harness.crash import CrashRecoveryHarness, CrashTrialResult


class TestTrialResult:
    def test_ok_requires_all_three(self):
        result = CrashTrialResult(seed=0)
        assert not result.ok
        result.recovered_ok = True
        result.contents_match = True
        assert not result.ok
        result.structure_ok = True
        assert result.ok


class TestHarnessKnobs:
    def test_commit_probability_zero(self):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(3, txns=6, commit_probability=0.0)
        assert result.committed_txns == 0
        assert result.uncommitted_txns > 0
        assert result.ok, result.errors

    def test_commit_probability_one(self):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(3, txns=6, commit_probability=1.0)
        assert result.uncommitted_txns == 0
        assert result.ok, result.errors

    def test_run_many_distinct_seeds(self):
        harness = CrashRecoveryHarness()
        results = harness.run_many(3, base_seed=50, txns=5)
        assert [r.seed for r in results] == [50, 51, 52]
        assert all(r.ok for r in results)

    def test_mid_smo_flag_reported(self):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(7, txns=5, crash_mid_smo=True)
        assert result.crashed_mid_smo
        assert result.ok, result.errors

    def test_small_pages_exercise_deep_trees(self):
        harness = CrashRecoveryHarness(page_capacity=4)
        result = harness.run_trial(11, txns=10)
        assert result.ok, result.errors
