"""Benchmark drivers: metrics plumbing and end-to-end sanity."""

from repro.baselines.simpletree import make_baseline
from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.harness.driver import (
    BaselineDriver,
    DriverMetrics,
    TransactionalDriver,
)
from repro.harness.report import render_table
from repro.workload.generator import MixSpec, ScalarWorkload


class TestDriverMetrics:
    def test_ops_per_sec(self):
        metrics = DriverMetrics(ops=100, elapsed=2.0)
        assert metrics.ops_per_sec == 50.0

    def test_zero_elapsed_safe(self):
        assert DriverMetrics().ops_per_sec == 0.0

    def test_latency_percentiles(self):
        metrics = DriverMetrics(
            latencies=[i / 100 for i in range(1, 101)]
        )
        assert metrics.latency_percentile(0.5) == 0.51
        assert metrics.latency_percentile(0.95) == 0.96

    def test_row_shape(self):
        metrics = DriverMetrics(protocol="x", threads=2, ops=10, elapsed=1)
        row = metrics.row()
        assert row["protocol"] == "x"
        assert "ops_per_sec" in row and "p95_ms" in row


class TestTransactionalDriver:
    def test_runs_workload_and_counts(self):
        db = Database(page_capacity=16, lock_timeout=10.0)
        tree = db.create_tree("w", BTreeExtension())
        driver = TransactionalDriver(db, tree, ops_per_txn=5)
        workload = ScalarWorkload(
            3, mix=MixSpec(0.6, 0.3, 0.1), key_space=10_000
        )
        driver.preload(workload.preload(50))
        metrics = driver.run(list(workload.ops(120)), threads=3)
        assert metrics.ops > 0
        assert metrics.commits > 0
        assert metrics.elapsed > 0
        assert "rightlinks" in metrics.extra

    def test_tree_consistent_after_run(self):
        from repro.gist.checker import check_tree

        db = Database(page_capacity=8, lock_timeout=10.0)
        tree = db.create_tree("w", BTreeExtension())
        driver = TransactionalDriver(db, tree, ops_per_txn=4)
        workload = ScalarWorkload(5, key_space=5_000)
        driver.preload(workload.preload(40))
        driver.run(list(workload.ops(200)), threads=4)
        report = check_tree(tree)
        assert report.ok, report.errors


class TestBaselineDriver:
    def test_runs_against_baseline(self):
        tree = make_baseline("link", BTreeExtension(), page_capacity=16)
        driver = BaselineDriver(tree)
        workload = ScalarWorkload(3, key_space=10_000)
        driver.preload(workload.preload(50))
        metrics = driver.run(list(workload.ops(100)), threads=4)
        assert metrics.ops == 100
        assert metrics.protocol == "link"


class TestReport:
    def test_render_table_alignment(self):
        rows = [
            {"a": 1, "b": "xy"},
            {"a": 22.5, "b": "longer-value"},
        ]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = render_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header
