"""Figure 1: a concurrent node split makes a naive traversal miss keys.

The paper's motivating anomaly: a search reads the parent and stacks a
pointer to leaf B; a concurrent insert splits B, moving some keys to a
new right sibling whose downlink the search never saw; the search visits
the stale B and reports an incomplete result — silently.

We reproduce the interleaving deterministically with hooks: the searcher
is frozen immediately after it has examined the parent (stacking its
child pointers), the split runs to completion, the searcher resumes.
The naive tree (no NSN/rightlink compensation) **must** lose keys; the
link tree under the *identical* interleaving must not (that second half
is asserted in test_fig2_nsn_detection.py).
"""

from __future__ import annotations

import threading

from repro.baselines.simpletree import LinkTree, NaiveTree
from repro.ext.btree import BTreeExtension, Interval
from repro.sync.hooks import Hooks, PredicateGate
from repro.sync.latch import LatchMode


def build_tree(cls):
    hooks = Hooks()
    tree = cls(BTreeExtension(), page_capacity=4, hooks=hooks)
    for i in range(1, 13):
        tree.insert(i, f"r{i}")
    return tree, hooks


def find_full_leaf(tree):
    """A full, non-root leaf: (pid, key set)."""
    pool = tree.pool
    frontier = [tree.root_pid]
    while frontier:
        pid = frontier.pop()
        with pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            if page.is_leaf:
                if page.is_full and pid != tree.root_pid:
                    return pid, sorted(e.key for e in page.entries)
            else:
                frontier.extend(e.child for e in page.entries)
    raise AssertionError("no full leaf found; adjust the preload")


def find_parent(tree, child_pid):
    pool = tree.pool
    frontier = [tree.root_pid]
    while frontier:
        pid = frontier.pop()
        with pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            if page.is_internal:
                if page.find_child_entry(child_pid) is not None:
                    return pid
                frontier.extend(e.child for e in page.entries)
    raise AssertionError(f"no parent for {child_pid}")


def run_interleaving(cls):
    """Search paused right after it has read the target leaf's parent
    entry (the pointer to leaf B is stacked, Figure 1's top panel); the
    split of B runs in between; the search resumes (bottom panel).
    Returns (expected keys, found keys, moved-away keys)."""
    tree, hooks = build_tree(cls)
    leaf_pid, keys = find_full_leaf(tree)
    parent_pid = find_parent(tree, leaf_pid)
    lo, hi = keys[0], keys[-1]
    query = Interval(lo, hi)

    # freeze the searcher the moment it finishes examining the parent —
    # the stale pointer to the leaf is now on its stack
    gate = PredicateGate(lambda pid=None, **_: pid == parent_pid)
    hooks.on("search:node-visited", gate.block)
    result: list = []
    searcher = threading.Thread(
        target=lambda: result.extend(tree.search(query))
    )
    searcher.start()
    assert gate.wait_blocked(5.0)

    # The racing insert: a key inside the full leaf's range forces the
    # split of exactly that leaf.
    hooks.remove("search:node-visited", gate.block)
    splits_before = tree.stats.splits
    tree.insert(lo + 0.5, "racer")
    assert tree.stats.splits == splits_before + 1

    # some of the original keys must have moved off the stale leaf
    with tree.pool.fixed(leaf_pid, LatchMode.S) as frame:
        still_there = {e.key for e in frame.page.entries}
    moved = [k for k in keys if k not in still_there]
    assert moved, "split did not move any target keys; scenario broken"

    gate.open()
    searcher.join(10.0)
    assert not searcher.is_alive()
    # ground truth: every key in the whole tree that the query covers
    # (GiST leaves may overlap in key range, so other leaves contribute)
    expected = {
        k for k, _ in tree.contents() if lo <= k <= hi
    }
    found = {k for k, _ in result}
    return expected, found, set(moved) | {lo + 0.5}


class TestFigure1:
    def test_naive_tree_misses_moved_keys(self):
        expected, found, moved = run_interleaving(NaiveTree)
        assert found != expected, (
            "the naive tree accidentally saw the split; "
            "the anomaly scenario must reproduce Figure 1"
        )
        missing = expected - found
        assert missing and missing <= moved, (
            f"the missing keys {missing} should be among the keys the "
            f"split moved away ({moved})"
        )

    def test_naive_tree_result_is_silent_subset(self):
        expected, found, _ = run_interleaving(NaiveTree)
        # the dangerous part: the result is a *plausible* subset — no
        # error, just silently incomplete
        assert found < expected

    def test_link_tree_immune_under_identical_interleaving(self):
        expected, found, _ = run_interleaving(LinkTree)
        assert found == expected

    def test_quiesced_naive_tree_is_complete(self):
        """Without the race the naive tree is correct — the anomaly is
        purely an interleaving effect."""
        tree, _ = build_tree(NaiveTree)
        found = {k for k, _ in tree.search(Interval(1, 12))}
        assert found == set(range(1, 13))
