"""Figure 5 / section 7.2: node deletion must drain references first.

Figure 5 shows why a traversal cannot "reposition" itself after its
target node vanished (the parent has changed; in a non-partitioning tree
there is no key range to re-enter by).  The paper's remedy is the drain
technique: traversals hold *signaling locks* on every stacked pointer,
and a node deletion probes them with a no-wait X lock.

This scenario freezes a search while it holds a stacked pointer to a
leaf, empties that leaf, and shows that vacuum cannot retire the node
until the search has moved past it — and that the freed page is only
reused afterwards.
"""

from __future__ import annotations

import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.maintenance import vacuum
from repro.sync.hooks import PredicateGate
from repro.sync.latch import LatchMode


def build():
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("fig5", BTreeExtension())
    txn = db.begin()
    for i in range(1, 13):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


def some_leaf_and_parent(db, tree):
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            if page.is_leaf or pid == tree.root_pid:
                continue
            # an internal node: take its first leaf child
            for entry in page.entries:
                with db.pool.fixed(entry.child, LatchMode.S) as cf:
                    if cf.page.is_leaf:
                        keys = [e.key for e in cf.page.entries]
                        return entry.child, pid, keys
    # height-2 tree: parent is the root
    with db.pool.fixed(tree.root_pid, LatchMode.S) as frame:
        entry = frame.page.entries[0]
    with db.pool.fixed(entry.child, LatchMode.S) as cf:
        keys = [e.key for e in cf.page.entries]
    return entry.child, tree.root_pid, keys


class TestDrainTechnique:
    def test_stacked_pointer_blocks_node_deletion(self):
        db, tree = build()
        leaf_pid, parent_pid, keys = some_leaf_and_parent(db, tree)

        # freeze a search right after it stacked the pointer to the leaf
        gate = PredicateGate(lambda pid=None, **_: pid == parent_pid)
        db.hooks.on("search:node-visited", gate.block)
        result: list = []

        def searcher():
            txn = db.begin()
            result.extend(tree.search(txn, Interval(1, 12)))
            db.commit(txn)

        t = threading.Thread(target=searcher)
        t.start()
        assert gate.wait_blocked(5.0)
        db.hooks.remove("search:node-visited", gate.block)

        # empty the leaf under the paused search and try to delete it
        deleter = db.begin()
        for key in keys:
            tree.delete(deleter, key, f"r{key}")
        db.commit(deleter)
        vac = db.begin()
        report = vacuum(tree, vac)
        db.commit(vac)
        # the leaf is drained-protected: its deletion must be refused
        assert leaf_pid not in report.freed_pids
        assert report.deletions_blocked >= 1
        assert db.store.is_allocated(leaf_pid)

        gate.open()
        t.join(10.0)
        assert not t.is_alive()
        # the paused search is *correct*: the deleted keys are simply
        # gone, everything else is found
        found = {k for k, _ in result}
        assert found == set(range(1, 13)) - set(keys)

        # with the search finished, the drain condition clears
        vac = db.begin()
        report = vacuum(tree, vac)
        db.commit(vac)
        assert leaf_pid in report.freed_pids
        assert not db.store.is_allocated(leaf_pid)

    def test_fresh_traversals_unaffected_by_drained_node(self):
        """While a node deletion is blocked by the drain, new searches
        simply never see the empty node's keys."""
        db, tree = build()
        leaf_pid, parent_pid, keys = some_leaf_and_parent(db, tree)
        deleter = db.begin()
        for key in keys:
            tree.delete(deleter, key, f"r{key}")
        db.commit(deleter)
        txn = db.begin()
        found = {k for k, _ in tree.search(txn, Interval(1, 12))}
        db.commit(txn)
        assert found == set(range(1, 13)) - set(keys)

    def test_insert_target_leaf_protected_until_commit(self):
        """Section 7.2's exception: the insert's target-leaf signaling
        lock persists to end of transaction, so the leaf holding an
        uncommitted entry cannot be retired even after the entry is
        deleted again within the same transaction."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 100, "mine")
        # find the leaf that took the entry
        target = None
        for pid in tree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                if frame.page.is_leaf and frame.page.find_leaf_entry(
                    100, "mine"
                ):
                    target = pid
        assert target is not None
        name = tree.node_lock(target)
        assert db.locks.held_mode(txn.xid, name) is not None
        db.commit(txn)
        assert db.locks.holders(name) == {}
