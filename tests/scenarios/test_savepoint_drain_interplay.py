"""Section 10.2 meets section 7.2: savepoints pin signaling locks.

"We have to make sure that the signaling locks that exist when the
savepoint is established are not released later on" — because a partial
rollback restores the cursor's stack, resurrecting the stacked pointers
those locks protect.  This scenario proves both directions:

* with a savepoint: the node stays deletion-protected even after the
  cursor visited it, and the restored cursor traverses safely;
* without a savepoint: the same visit releases the lock and the node
  becomes reclaimable.
"""

from __future__ import annotations

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.maintenance import vacuum


def build():
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("sp", BTreeExtension())
    txn = db.begin()
    for i in range(24):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestSavepointPinsSignalingLocks:
    def test_visited_nodes_stay_locked_after_savepoint(self):
        db, tree = build()
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 23))
        cursor.fetch_next()  # some pointers stacked, some visited
        savepoint = db.txns.savepoint(txn, "mid-scan")
        assert savepoint.pinned_signaling  # node locks were captured
        pinned = set(savepoint.pinned_signaling)
        # drain the cursor: without the savepoint these visits would
        # release the locks; the pins must keep them
        cursor.fetch_all()
        for name in pinned:
            assert db.locks.held_mode(txn.xid, name) is not None, (
                f"pinned signaling lock {name} was released by a visit"
            )
        cursor.close()
        db.commit(txn)

    def test_restored_cursor_traverses_after_partial_rollback(self):
        db, tree = build()
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 23))
        first = [cursor.fetch_next() for _ in range(4)]
        savepoint = db.txns.savepoint(txn)
        cursor.fetch_all()  # drain fully
        db.txns.rollback_to_savepoint(txn, savepoint)
        # the cursor's stacked pointers are alive again; finish the scan
        replay = cursor.fetch_all()
        cursor.close()
        rids = {r for _, r in first} | {r for _, r in replay}
        assert rids == {f"r{i}" for i in range(24)}
        db.commit(txn)

    def test_without_savepoint_locks_release_on_visit(self):
        db, tree = build()
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 23))
        cursor.fetch_all()
        cursor.close()
        node_locks = [
            name
            for name in db.locks.locks_of(txn.xid)
            if isinstance(name, tuple) and name[0] == "node"
        ]
        # only the locks with an end-of-transaction reason may remain
        # (a pure reader has none)
        assert node_locks == []
        db.commit(txn)

    def test_pinned_node_resists_vacuum_until_commit(self):
        from repro.txn.transaction import IsolationLevel

        db, tree = build()
        # read committed: no record locks are retained (the deleter must
        # not block on them), but signaling locks are still taken and
        # pinned by the savepoint — which is exactly what is under test
        reader = db.begin(IsolationLevel.READ_COMMITTED)
        cursor = tree.open_cursor(reader, Interval(0, 23))
        cursor.fetch_next()
        db.txns.savepoint(reader, "keep-refs")
        cursor.fetch_all()  # visits everything; pins keep the locks
        cursor.close()

        # another transaction empties the whole tree
        deleter = db.begin()
        for i in range(24):
            tree.delete(deleter, i, f"r{i}")
        db.commit(deleter)

        vac = db.begin()
        report = vacuum(tree, vac)
        db.commit(vac)
        # at least some deletions must have been refused: the reader's
        # pinned signaling locks still protect its stacked pointers
        assert report.deletions_blocked > 0

        db.commit(reader)  # releases everything
        vac = db.begin()
        report = vacuum(tree, vac)
        db.commit(vac)
        assert report.nodes_deleted > 0
