"""Figure 2: the NSN + rightlink protocol detects concurrent splits.

The same interleaving as Figure 1, against the full GiST: a search is
frozen after it has read the target leaf's parent entry (memorizing the
global counter value); a concurrent insert splits the leaf, incrementing
the counter and stamping the new value on the original node; the search
resumes, observes ``memorized < NSN``, follows the rightlink, and — per
Figure 2's bottom panel — stops at the sibling because the sibling's
inherited NSN is ≤ the memorized value.
"""

from __future__ import annotations

import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.storage.page import NO_PAGE
from repro.sync.hooks import PredicateGate
from repro.sync.latch import LatchMode


def build(db):
    tree = db.create_tree("fig2", BTreeExtension())
    txn = db.begin()
    for i in range(1, 13):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return tree


def find_full_leaf(db, tree):
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            if page.is_leaf and page.is_full and pid != tree.root_pid:
                return pid, sorted(e.key for e in page.entries)
    raise AssertionError("no full leaf; adjust preload")


def find_parent(db, tree, child_pid):
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            if (
                frame.page.is_internal
                and frame.page.find_child_entry(child_pid) is not None
            ):
                return pid
    raise AssertionError("no parent found")


class TestFigure2:
    def test_search_compensates_for_missed_split(self):
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = build(db)
        leaf_pid, keys = find_full_leaf(db, tree)
        parent_pid = find_parent(db, tree, leaf_pid)
        lo, hi = keys[0], keys[-1]

        gate = PredicateGate(lambda pid=None, **_: pid == parent_pid)
        db.hooks.on("search:node-visited", gate.block)
        result: list = []

        def searcher():
            txn = db.begin()
            result.extend(tree.search(txn, Interval(lo, hi)))
            db.commit(txn)

        t = threading.Thread(target=searcher)
        t.start()
        assert gate.wait_blocked(5.0)
        db.hooks.remove("search:node-visited", gate.block)

        follows_before = tree.stats.rightlink_follows
        nsn_before = tree.nsn.current()
        writer = db.begin()
        tree.insert(writer, lo + 0.5, "racer")
        db.commit(writer)
        assert tree.nsn.current() > nsn_before  # counter incremented

        gate.open()
        t.join(10.0)
        assert not t.is_alive()

        # completeness: nothing missed despite the split
        txn = db.begin()
        expected = {
            k
            for k, _ in tree.search(txn, Interval(lo, hi))
        }
        db.commit(txn)
        found = {k for k, _ in result}
        assert found == expected
        # the compensation really happened through the rightlink
        assert tree.stats.rightlink_follows > follows_before

    def test_nsn_and_rightlink_assignment_on_split(self):
        """Figure 2's counter mechanics: the original node receives the
        incremented counter value; the sibling inherits the old NSN and
        the old rightlink."""
        db = Database(page_capacity=4)
        tree = db.create_tree("fig2b", BTreeExtension())
        txn = db.begin()
        for i in range(1, 13):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        leaf_pid, keys = find_full_leaf(db, tree)
        with db.pool.fixed(leaf_pid, LatchMode.S) as frame:
            old_nsn = frame.page.nsn
            old_rightlink = frame.page.rightlink
        counter_before = tree.nsn.current()
        txn = db.begin()
        tree.insert(txn, keys[0] + 0.5, "racer")
        db.commit(txn)
        with db.pool.fixed(leaf_pid, LatchMode.S) as frame:
            new_nsn = frame.page.nsn
            sibling_pid = frame.page.rightlink
        assert new_nsn > counter_before >= old_nsn
        assert sibling_pid != NO_PAGE
        with db.pool.fixed(sibling_pid, LatchMode.S) as frame:
            assert frame.page.nsn == old_nsn  # inherited
            assert frame.page.rightlink == old_rightlink  # inherited
        # chain-termination rule: a traversal that memorized
        # counter_before stops at the sibling (nsn <= memo) but follows
        # from the original (nsn > memo)
        assert old_nsn <= counter_before < new_nsn

    def test_multiple_splits_whole_chain_followed(self):
        """A node may split several times behind a paused traversal; the
        NSN rule walks the entire split chain."""
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = build(db)
        leaf_pid, keys = find_full_leaf(db, tree)
        parent_pid = find_parent(db, tree, leaf_pid)
        lo, hi = keys[0], keys[-1]

        gate = PredicateGate(lambda pid=None, **_: pid == parent_pid)
        db.hooks.on("search:node-visited", gate.block)
        result: list = []

        def searcher():
            txn = db.begin()
            result.extend(tree.search(txn, Interval(lo, hi)))
            db.commit(txn)

        t = threading.Thread(target=searcher)
        t.start()
        assert gate.wait_blocked(5.0)
        db.hooks.remove("search:node-visited", gate.block)

        # several racing inserts into the same region: multiple splits
        writer = db.begin()
        for i in range(12):
            tree.insert(writer, lo + (i + 1) / 100.0, f"racer{i}")
        db.commit(writer)

        gate.open()
        t.join(10.0)
        found = {k for k, _ in result}
        txn = db.begin()
        expected = {k for k, _ in tree.search(txn, Interval(lo, hi))}
        db.commit(txn)
        assert found == expected
