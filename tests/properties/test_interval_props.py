"""Property-based tests of the B-tree extension's interval algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ext.btree import BTreeExtension, Interval, as_interval

ext = BTreeExtension()

values = st.integers(min_value=-10_000, max_value=10_000)


@st.composite
def intervals(draw):
    a = draw(values)
    b = draw(values)
    lo, hi = min(a, b), max(a, b)
    if lo == hi:
        # point intervals must be closed (open bounds would denote the
        # empty set, which Interval rejects)
        return Interval(lo, hi)
    return Interval(
        lo, hi, draw(st.booleans()), draw(st.booleans())
    )


class TestIntervalAlgebra:
    @given(intervals(), intervals())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(intervals())
    def test_self_intersection(self, iv):
        if iv.lo != iv.hi or (iv.lo_incl and iv.hi_incl):
            assert iv.intersects(iv)

    @given(intervals(), intervals())
    def test_union_commutative(self, a, b):
        assert a.union_with(b) == b.union_with(a)

    @given(intervals(), intervals(), intervals())
    def test_union_associative(self, a, b, c):
        assert a.union_with(b).union_with(c) == a.union_with(
            b.union_with(c)
        )

    @given(intervals(), intervals(), values)
    def test_union_upper_bounds_membership(self, a, b, x):
        if a.contains(x) or b.contains(x):
            assert a.union_with(b).contains(x)

    @given(intervals(), values)
    def test_contains_implies_intersects_point(self, iv, x):
        if iv.contains(x):
            assert iv.intersects(Interval.point(x))


class TestExtensionProperties:
    @given(st.lists(values, min_size=1, max_size=30))
    def test_union_contains_all_inputs(self, keys):
        u = ext.union(keys)
        for key in keys:
            assert ext.covers(u, key)

    @given(st.lists(values, min_size=1, max_size=30), values)
    def test_penalty_zero_iff_covered(self, keys, probe):
        bp = ext.union(keys)
        covered = as_interval(bp).contains(probe)
        assert (ext.penalty(bp, probe) == 0.0) == covered

    @given(st.lists(values, min_size=2, max_size=40))
    def test_pick_split_is_partition(self, keys):
        left, right = ext.pick_split(keys)
        assert sorted(left + right) == list(range(len(keys)))
        assert left and right

    @given(st.lists(values, min_size=2, max_size=40))
    def test_pick_split_halves_cover_their_keys(self, keys):
        left, right = ext.pick_split(keys)
        for idx_set in (left, right):
            bp = ext.union([keys[i] for i in idx_set])
            for i in idx_set:
                assert ext.covers(bp, keys[i])

    @given(values)
    def test_eq_query_is_exact(self, key):
        eq = ext.eq_query(key)
        assert ext.consistent(key, eq)
        assert not ext.consistent(key + 1, eq)

    @given(st.lists(values, min_size=1, max_size=20), values)
    def test_consistency_never_false_negative(self, keys, probe):
        """The navigation soundness property: if a key satisfies a
        query, the union of any set containing it must be consistent
        with the query."""
        keys = keys + [probe]
        bp = ext.union(keys)
        assert ext.consistent(bp, ext.eq_query(probe))
