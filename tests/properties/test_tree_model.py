"""Model-based property tests: the GiST against a dictionary oracle.

Random operation sequences run against both a plain dict and the full
transactional GiST; after every sequence the tree must (a) answer range
queries exactly like the oracle, (b) pass the structural invariant
check, and (c) — in the crash variant — recover to the committed oracle
state from any prefix of flushes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree

keys = st.integers(min_value=0, max_value=200)

# op encoding: ("insert", key) | ("delete", index-into-live) | ("query",
# lo, width) — deletes refer to a live entry by index so every generated
# sequence is executable.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys),
        st.tuples(st.just("delete"), st.integers(0, 10_000)),
        st.tuples(st.just("query"), keys, st.integers(0, 50)),
    ),
    max_size=80,
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_sequence(db, tree, txn, sequence, oracle, counter):
    """Apply an op sequence to both tree and oracle."""
    for op in sequence:
        if op[0] == "insert":
            counter[0] += 1
            rid = f"r{counter[0]}"
            tree.insert(txn, op[1], rid)
            oracle[rid] = op[1]
        elif op[0] == "delete":
            if not oracle:
                continue
            rid = sorted(oracle)[op[1] % len(oracle)]
            tree.delete(txn, oracle[rid], rid)
            del oracle[rid]
        else:
            lo, width = op[1], op[2]
            found = {
                rid
                for _, rid in tree.search(txn, Interval(lo, lo + width))
            }
            expected = {
                rid
                for rid, key in oracle.items()
                if lo <= key <= lo + width
            }
            assert found == expected


class TestTreeMatchesOracle:
    @relaxed
    @given(ops)
    def test_single_transaction_model(self, sequence):
        db = Database(page_capacity=4)
        tree = db.create_tree("m", BTreeExtension())
        oracle: dict[str, int] = {}
        counter = [0]
        txn = db.begin()
        run_sequence(db, tree, txn, sequence, oracle, counter)
        db.commit(txn)
        check = db.begin()
        found = {
            rid for _, rid in tree.search(check, Interval(0, 400))
        }
        db.commit(check)
        assert found == set(oracle)
        report = check_tree(tree)
        assert report.ok, report.errors

    @relaxed
    @given(ops, ops)
    def test_rollback_restores_first_state(self, committed, rolled_back):
        db = Database(page_capacity=4)
        tree = db.create_tree("m", BTreeExtension())
        oracle: dict[str, int] = {}
        counter = [0]
        txn = db.begin()
        run_sequence(db, tree, txn, committed, oracle, counter)
        db.commit(txn)
        txn = db.begin()
        scratch = dict(oracle)
        run_sequence(db, tree, txn, rolled_back, scratch, counter)
        db.rollback(txn)
        check = db.begin()
        found = {
            rid for _, rid in tree.search(check, Interval(0, 400))
        }
        db.commit(check)
        assert found == set(oracle)
        assert check_tree(tree).ok

    @relaxed
    @given(ops, st.booleans())
    def test_crash_recovers_committed_state(self, sequence, flush):
        db = Database(page_capacity=4)
        tree = db.create_tree("m", BTreeExtension())
        oracle: dict[str, int] = {}
        counter = [0]
        txn = db.begin()
        run_sequence(db, tree, txn, sequence, oracle, counter)
        db.commit(txn)
        if flush:
            db.pool.flush_all()
        db.crash()
        db2 = db.restart({"m": BTreeExtension()})
        tree2 = db2.tree("m")
        check = db2.begin()
        found = {
            rid for _, rid in tree2.search(check, Interval(0, 400))
        }
        db2.commit(check)
        assert found == set(oracle)
        report = check_tree(tree2)
        assert report.ok, report.errors
