"""Property-based tests of the RD-tree set algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ext.rdtree import RDTreeExtension, as_key_set

ext = RDTreeExtension()

elements = st.integers(min_value=0, max_value=50)
key_sets = st.frozensets(elements, min_size=1, max_size=8)


class TestSetAlgebra:
    @given(key_sets, key_sets)
    def test_consistent_symmetric(self, a, b):
        assert ext.consistent(a, b) == ext.consistent(b, a)

    @given(key_sets)
    def test_self_consistent(self, s):
        assert ext.consistent(s, s)

    @given(st.lists(key_sets, min_size=1, max_size=15))
    def test_union_covers_all(self, sets):
        u = ext.union(sets)
        for s in sets:
            assert s <= u
            assert ext.covers(u, s)

    @given(key_sets, key_sets)
    def test_penalty_nonnegative_and_zero_iff_subset(self, bp, key):
        penalty = ext.penalty(bp, key)
        assert penalty >= 0
        assert (penalty == 0) == (key <= bp)

    @given(st.lists(key_sets, min_size=2, max_size=20))
    def test_pick_split_partition(self, sets):
        left, right = ext.pick_split(sets)
        assert sorted(left + right) == list(range(len(sets)))
        assert left and right

    @given(st.lists(key_sets, min_size=2, max_size=20))
    def test_pick_split_sides_cover_members(self, sets):
        left, right = ext.pick_split(sets)
        for side in (left, right):
            bp = ext.union([sets[i] for i in side])
            for i in side:
                assert ext.covers(bp, sets[i])

    @given(key_sets)
    def test_navigation_soundness(self, key):
        """A BP containing the key must be consistent with the key's
        equality query — search can never miss a stored key."""
        eq = ext.eq_query(key)
        bp = ext.union([key, frozenset({999})])
        assert ext.consistent(bp, eq)

    @given(st.lists(key_sets, min_size=1, max_size=10), key_sets)
    def test_union_monotone(self, sets, extra):
        u1 = as_key_set(ext.union(sets))
        u2 = as_key_set(ext.union(sets + [extra]))
        assert u1 <= u2
