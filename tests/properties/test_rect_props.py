"""Property-based tests of the R-tree extension's rectangle algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ext.rtree import Rect, RTreeExtension

ext = RTreeExtension()

coords = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1, x2 = draw(coords), draw(coords)
    y1, y2 = draw(coords), draw(coords)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestRectAlgebra:
    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects())
    def test_self_intersects(self, r):
        assert r.intersects(r)

    @given(rects(), rects())
    def test_union_commutative(self, a, b):
        assert a.union_with(b) == b.union_with(a)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union_with(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), rects())
    def test_union_area_superadditive_on_each(self, a, b):
        u = a.union_with(b)
        assert u.area >= a.area and u.area >= b.area

    @given(rects(), rects())
    def test_contains_implies_intersects(self, a, b):
        if a.contains(b):
            assert a.intersects(b)

    @given(rects(), rects())
    def test_penalty_nonnegative(self, bp, key):
        assert ext.penalty(bp, key) >= 0.0

    @given(rects(), rects())
    def test_containment_implies_zero_penalty(self, bp, key):
        # (the converse is false for degenerate zero-area rectangles:
        # Guttman's area penalty cannot see growth along a line)
        if bp.contains(key):
            assert ext.penalty(bp, key) == 0.0


class TestRTreeExtensionProperties:
    @given(st.lists(rects(), min_size=1, max_size=25))
    def test_union_covers_all(self, items):
        u = ext.union(items)
        for r in items:
            assert u.contains(r)

    @given(st.lists(rects(), min_size=2, max_size=25))
    def test_pick_split_partition(self, items):
        left, right = ext.pick_split(items)
        assert sorted(left + right) == list(range(len(items)))
        assert left and right

    @given(st.lists(rects(), min_size=6, max_size=25))
    def test_pick_split_not_degenerate(self, items):
        left, right = ext.pick_split(items)
        min_fill = max(1, len(items) // 3)
        assert len(left) >= min_fill and len(right) >= min_fill
