"""Property-based tests of the lock manager's safety invariants."""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TransactionAbort
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode, compatible

owners = st.integers(min_value=1, max_value=6)
names = st.sampled_from(["a", "b", "c"])
modes = st.sampled_from([LockMode.S, LockMode.X])

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# a script is a list of (owner, action, name, mode)
actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("acquire"), owners, names, modes
        ),
        st.tuples(st.just("release"), owners, names, modes),
        st.tuples(st.just("release_all"), owners, names, modes),
    ),
    max_size=40,
)


def granted_invariant(lm: LockManager) -> list[str]:
    """No two granted holders of one name may be incompatible."""
    violations = []
    for name in ("a", "b", "c"):
        holders = list(lm.holders(name).items())
        for i, (owner_a, mode_a) in enumerate(holders):
            for owner_b, mode_b in holders[i + 1 :]:
                if not compatible(mode_a, mode_b) and not compatible(
                    mode_b, mode_a
                ):
                    violations.append(
                        f"{name}: {owner_a}:{mode_a} with "
                        f"{owner_b}:{mode_b}"
                    )
    return violations


class TestLockManagerSafety:
    @relaxed
    @given(actions)
    def test_no_incompatible_grants_sequential(self, script):
        lm = LockManager(default_timeout=0.2)
        for kind, owner, name, mode in script:
            try:
                if kind == "acquire":
                    lm.acquire(owner, name, mode, wait=False)
                elif kind == "release":
                    lm.release(owner, name)
                else:
                    lm.release_all(owner)
            except TransactionAbort:
                lm.release_all(owner)
            assert granted_invariant(lm) == []

    @relaxed
    @given(st.lists(st.tuples(owners, names, modes), max_size=20))
    def test_release_all_clears_everything(self, grants):
        lm = LockManager(default_timeout=0.2)
        for owner, name, mode in grants:
            lm.acquire(owner, name, mode, wait=False)
        for owner in range(1, 7):
            lm.release_all(owner)
        for name in ("a", "b", "c"):
            assert lm.holders(name) == {}
        for owner in range(1, 7):
            assert lm.locks_of(owner) == set()

    @relaxed
    @given(st.lists(st.tuples(owners, names), min_size=1, max_size=20))
    def test_counts_balance(self, pairs):
        """N acquires need exactly N releases."""
        lm = LockManager(default_timeout=0.2)
        counts: dict = {}
        for owner, name in pairs:
            if lm.acquire(owner, name, LockMode.S, wait=False):
                counts[(owner, name)] = counts.get((owner, name), 0) + 1
        for (owner, name), n in counts.items():
            for i in range(n):
                assert lm.held_mode(owner, name) is not None
                lm.release(owner, name)
            assert lm.held_mode(owner, name) is None


class TestConcurrentSafety:
    def test_hammer_no_incompatible_grants(self):
        lm = LockManager(default_timeout=5.0)
        stop = threading.Event()
        errors = []

        def worker(owner: int):
            import random

            rng = random.Random(owner)
            while not stop.is_set():
                name = rng.choice(["a", "b", "c"])
                mode = rng.choice([LockMode.S, LockMode.X])
                if lm.acquire(owner, name, mode, wait=False):
                    bad = granted_invariant(lm)
                    if bad:
                        errors.extend(bad)
                    lm.release(owner, name)

        threads = [
            threading.Thread(target=worker, args=(o,)) for o in range(1, 7)
        ]
        for t in threads:
            t.start()
        stop.wait(1.0)
        stop.set()
        for t in threads:
            t.join(10.0)
        assert errors == []
