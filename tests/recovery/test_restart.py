"""Restart recovery: analysis / redo / undo end-to-end (section 9)."""

import pytest

from repro.database import Database
from repro.errors import RecoveryError
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.wal.recovery import RestartRecovery


def build():
    db = Database(page_capacity=4)
    tree = db.create_tree("t", BTreeExtension())
    return db, tree


def contents(db, tree):
    txn = db.begin()
    found = dict(
        (rid, key) for key, rid in tree.search(txn, Interval(-1, 10**9))
    )
    db.commit(txn)
    return found


class TestRedo:
    def test_nothing_flushed_everything_replayed(self):
        db, tree = build()
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()  # log flushed by commit; no page ever written
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == {
            f"r{i}": i for i in range(30)
        }
        assert check_tree(db2.tree("t")).ok

    def test_partial_flush_mixed_state(self):
        db, tree = build()
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.pool.flush_all()
        txn = db.begin()
        for i in range(20, 40):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == {
            f"r{i}": i for i in range(40)
        }

    def test_redo_is_idempotent_across_double_restart(self):
        db, tree = build()
        txn = db.begin()
        for i in range(25):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        db2.crash()
        db3 = db2.restart({"t": BTreeExtension()})
        assert contents(db3, db3.tree("t")) == {
            f"r{i}": i for i in range(25)
        }
        assert check_tree(db3.tree("t")).ok

    def test_unflushed_commit_record_loses_transaction(self):
        """Durability boundary: a 'commit' whose record never reached
        the disk is not a commit."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        txn2 = db.begin()
        tree.insert(txn2, 2, "r2")
        # commit txn2 but sabotage the force: truncate the flush by
        # crashing with only the first commit flushed
        db.log.append(
            __import__(
                "repro.wal.records", fromlist=["CommitRecord"]
            ).CommitRecord(xid=txn2.xid)
        )
        # deliberately NOT flushed
        db.log.crash()
        db.pool.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == {"r1": 1}


class TestUndoAtRestart:
    def test_losers_rolled_back(self):
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "keep")
        db.commit(txn)
        loser = db.begin()
        tree.insert(loser, 2, "lose-insert")
        tree.delete(loser, 1, "keep")
        db.log.flush()
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == {"keep": 1}
        assert check_tree(db2.tree("t")).ok

    def test_interrupted_rollback_resumes_via_clrs(self):
        """Crash during rollback: restart must finish the rollback
        without undoing anything twice (CLR undo_next chains)."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "a")
        tree.insert(txn, 2, "b")
        # roll back, then crash *after* the rollback's CLRs are durable
        db.rollback(txn)
        db.log.flush()
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == {}
        assert check_tree(db2.tree("t")).ok

    def test_multiple_losers(self):
        db, tree = build()
        committed = {}
        txn = db.begin()
        for i in range(10):
            tree.insert(txn, i, f"c{i}")
            committed[f"c{i}"] = i
        db.commit(txn)
        losers = [db.begin() for _ in range(3)]
        for j, loser in enumerate(losers):
            for i in range(4):
                tree.insert(loser, 100 + j * 10 + i, f"l{j}-{i}")
        db.log.flush()
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert contents(db2, db2.tree("t")) == committed
        report = check_tree(db2.tree("t"))
        assert report.ok, report.errors


class TestCheckpoints:
    def test_checkpoint_limits_redo_scan(self):
        db, tree = build()
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.pool.flush_all()
        db.checkpoint()
        txn = db.begin()
        tree.insert(txn, 99, "late")
        db.commit(txn)
        db.crash()
        db2 = Database(store=db.store, log=db.log, page_capacity=4)
        recovery = RestartRecovery(db2, {"t": BTreeExtension()})
        report = recovery.run()
        assert report.redo_start_lsn >= db.log.master_lsn - 1
        expected = {f"r{i}": i for i in range(20)}
        expected["late"] = 99
        assert contents(db2, db2.tree("t")) == expected

    def test_recovery_without_any_checkpoint(self):
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        db.crash()
        db2 = Database(store=db.store, log=db.log, page_capacity=4)
        report = RestartRecovery(db2, {"t": BTreeExtension()}).run()
        # no checkpoint: redo starts at the first page-touching record
        assert report.redo_start_lsn <= 2
        assert contents(db2, db2.tree("t")) == {"r1": 1}


class TestCatalogRecovery:
    def test_multiple_trees_recovered(self):
        db = Database(page_capacity=4)
        a = db.create_tree("a", BTreeExtension())
        b = db.create_tree("b", BTreeExtension())
        txn = db.begin()
        a.insert(txn, 1, "a1")
        b.insert(txn, 2, "b2")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"a": BTreeExtension(), "b": BTreeExtension()})
        assert contents(db2, db2.tree("a")) == {"a1": 1}
        assert contents(db2, db2.tree("b")) == {"b2": 2}

    def test_missing_extension_raises(self):
        db, tree = build()
        db.crash()
        db2 = Database(store=db.store, log=db.log, page_capacity=4)
        with pytest.raises(RecoveryError):
            RestartRecovery(db2, {}).run()

    def test_xid_counter_advances_past_recovered(self):
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        old_xid = txn.xid
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        new_txn = db2.begin()
        assert new_txn.xid > old_xid
        db2.commit(new_txn)

    def test_gc_visibility_of_precrash_commits(self):
        """Tombstones from committed pre-crash deleters must remain
        GC-able after restart (is_committed survives recovery)."""
        from repro.gist.maintenance import vacuum

        db, tree = build()
        txn = db.begin()
        for i in range(8):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        tree.delete(txn, 3, "r3")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        tree2 = db2.tree("t")
        txn = db2.begin()
        report = vacuum(tree2, txn)
        db2.commit(txn)
        assert report.entries_collected == 1
