"""Catalog metadata must survive restart: uniqueness, NSN source."""

import pytest

from repro.database import Database
from repro.errors import UniqueViolationError
from repro.ext.btree import BTreeExtension, Interval


class TestUniqueFlagSurvives:
    def test_unique_enforced_after_restart(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("uq", BTreeExtension(), unique=True)
        txn = db.begin()
        tree.insert(txn, 5, "r5")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"uq": BTreeExtension()})
        tree2 = db2.tree("uq")
        assert tree2.unique
        txn = db2.begin()
        with pytest.raises(UniqueViolationError):
            tree2.insert(txn, 5, "dup")
        db2.rollback(txn)

    def test_nsn_source_survives(self):
        db = Database(page_capacity=8)
        db.create_tree("l", BTreeExtension(), nsn_source="lsn")
        db.create_tree("c", BTreeExtension(), nsn_source="counter")
        db.crash()
        db2 = db.restart(
            {"l": BTreeExtension(), "c": BTreeExtension()}
        )
        assert db2.tree("l").nsn_source == "lsn"
        assert db2.tree("c").nsn_source == "counter"

    def test_counter_resumes_above_recovered_max(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("c", BTreeExtension())
        txn = db.begin()
        for i in range(40):  # plenty of splits
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        high_water = tree.nsn.current()
        assert high_water > 0
        db.crash()
        db2 = db.restart({"c": BTreeExtension()})
        tree2 = db2.tree("c")
        assert tree2.nsn.current() >= high_water
        # new splits produce strictly larger NSNs: the detection
        # protocol stays sound across the crash
        txn = db2.begin()
        for i in range(40, 60):
            tree2.insert(txn, i, f"r{i}")
        db2.commit(txn)
        assert tree2.nsn.current() > high_water


class TestUniqueAfterRecoveredDelete:
    def test_reinsert_after_recovered_committed_delete(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("uq", BTreeExtension(), unique=True)
        txn = db.begin()
        tree.insert(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        tree.delete(txn, 5, "r5")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"uq": BTreeExtension()})
        tree2 = db2.tree("uq")
        txn = db2.begin()
        tree2.insert(txn, 5, "r5-again")  # tombstone is committed: OK
        db2.commit(txn)
        check = db2.begin()
        assert tree2.search(check, Interval(5, 5)) == [(5, "r5-again")]
        db2.commit(check)

    def test_uncommitted_unique_insert_lost_in_crash(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("uq", BTreeExtension(), unique=True)
        loser = db.begin()
        tree.insert(loser, 5, "ghost")
        db.log.flush()
        db.crash()
        db2 = db.restart({"uq": BTreeExtension()})
        tree2 = db2.tree("uq")
        txn = db2.begin()
        tree2.insert(txn, 5, "real")  # the ghost must not block this
        db2.commit(txn)
