"""Randomized crash-injection battery (experiment C5 in test form)."""

import pytest

from repro.harness.crash import CrashRecoveryHarness


class TestCrashBattery:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_trials_recover(self, seed):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(seed, txns=15)
        assert result.ok, result.errors

    @pytest.mark.parametrize("seed", range(4))
    def test_mid_smo_crash_recovers(self, seed):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(
            1000 + seed, txns=10, crash_mid_smo=True
        )
        assert result.crashed_mid_smo
        assert result.ok, result.errors

    def test_all_uncommitted(self):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(
            7, txns=10, commit_probability=0.0
        )
        assert result.committed_txns == 0
        assert result.ok, result.errors

    def test_all_committed_heavy_flush(self):
        harness = CrashRecoveryHarness()
        result = harness.run_trial(
            8, txns=10, commit_probability=1.0, flush_probability=1.0
        )
        assert result.uncommitted_txns == 0
        assert result.ok, result.errors

    def test_no_flush_at_all(self):
        """Everything must come back from the log alone."""
        harness = CrashRecoveryHarness()
        result = harness.run_trial(
            9, txns=12, flush_probability=0.0
        )
        assert result.ok, result.errors
