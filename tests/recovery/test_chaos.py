"""End-to-end chaos trials: every fault class, detected and recovered.

The hard requirement of DESIGN.md §9: every injected fault kind has a
seeded trial demonstrating detection plus either full recovery or a
typed error — never silent corruption.  Trials are bit-for-bit
reproducible from their seed.
"""

import pytest

from repro.database import Database
from repro.errors import TornPageError
from repro.ext.btree import BTreeExtension, Interval
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.harness.chaos import ChaosHarness


def result_fingerprint(result) -> tuple:
    """The trial facts that must be identical run-to-run."""
    return (
        result.ok,
        result.committed_txns,
        result.uncommitted_txns,
        result.io_retries,
        result.torn_pages_detected,
        result.torn_pages_healed,
        result.tail_records_dropped,
        result.lost_commits,
        result.typed_failures,
        tuple(result.fault_log),
        tuple(result.errors),
    )


class TestEachFaultKind:
    """One seeded trial per fault class, each must detect + recover."""

    @pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
    def test_single_kind_trials_recover(self, kind):
        harness = ChaosHarness(kinds={kind})
        results = [harness.run_trial(seed) for seed in range(3)]
        assert all(r.ok for r in results), [r.errors for r in results]

    def test_all_kinds_combined(self):
        harness = ChaosHarness()
        results = harness.run_many(5, base_seed=100)
        assert all(r.ok for r in results), [r.errors for r in results]
        # across the batch, faults actually fired
        assert sum(r.faults_injected for r in results) > 0

    def test_mid_smo_crash_with_faults(self):
        harness = ChaosHarness()
        results = [
            harness.run_trial(seed, crash_mid_smo=True)
            for seed in range(200, 204)
        ]
        assert all(r.ok for r in results), [r.errors for r in results]


class TestReproducibility:
    def test_trials_are_bit_for_bit_reproducible(self):
        for seed in range(4):
            a = ChaosHarness().run_trial(seed)
            b = ChaosHarness().run_trial(seed)
            assert result_fingerprint(a) == result_fingerprint(b)


class TestWalTailLoss:
    def find_commit_losing_seed(self):
        harness = ChaosHarness(kinds={FaultKind.WAL_TAIL_LOSS})
        for seed in range(40):
            result = harness.run_trial(seed)
            assert result.ok, result.errors
            if result.lost_commits > 0:
                return result
        pytest.fail("no seed lost a commit to tail loss")

    def test_commit_in_lost_tail_is_rolled_back(self):
        """A committed transaction whose commit record fell into the
        torn tail must be treated as a loser — and the oracle verifies
        its effects are gone (the trial's contents check)."""
        result = self.find_commit_losing_seed()
        assert result.contents_match
        assert result.structure_ok

    def test_tail_corruption_is_truncated(self):
        harness = ChaosHarness(kinds={FaultKind.WAL_TAIL_CORRUPT})
        results = [harness.run_trial(seed) for seed in range(6)]
        assert all(r.ok for r in results), [r.errors for r in results]
        assert any(r.tail_records_dropped > 0 for r in results)


class TestTornPageHealing:
    def test_torn_page_healed_across_restart(self):
        """A torn image persisted before the crash is rebuilt by redo's
        full-log replay instead of fatally rejecting recovery."""
        plan = FaultPlan([FaultSpec(FaultKind.TORN_WRITE, op_index=2)])
        db = Database(
            page_capacity=4, fault_plan=plan, io_retry_backoff=0.0
        )
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(30):  # enough inserts to split + evict + rewrite
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.pool.flush_all()  # one of these writes was torn
        assert "torn_write" in " ".join(plan.injected)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        report = db2.recovery_report
        txn = db2.begin()
        found = {rid for _, rid in tree_search_all(db2, "t")}
        db2.commit(txn)
        assert found == {f"r{i}" for i in range(30)}
        assert report.torn_pages_healed >= 1

    def test_runtime_heal_via_wal_replay(self):
        """A torn page read back at runtime (after eviction) is healed
        in place by the database's page rebuilder."""
        plan = FaultPlan([FaultSpec(FaultKind.TORN_WRITE, op_index=2)])
        db = Database(
            page_capacity=4,
            pool_capacity=10,
            fault_plan=plan,
            io_retry_backoff=0.0,
        )
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(60):  # small pool: pages evict and re-read
            tree.insert(txn, i, f"r{i}")
        found = {rid for _, rid in tree.search(txn, Interval(0, 1000))}
        db.commit(txn)
        assert found == {f"r{i}" for i in range(60)}
        # the torn page was re-read through the pool and healed in place
        # — and no torn data was ever *returned* (the search saw every
        # insert)
        assert "torn_write" in " ".join(plan.injected)
        assert db.metrics.counter("storage.torn_pages_healed").value >= 1

    def test_torn_page_without_wal_coverage_surfaces(self):
        """No log history for the page -> the typed error must surface
        instead of fabricating contents."""
        plan = FaultPlan([FaultSpec(FaultKind.TORN_WRITE, op_index=2)])
        db = Database(page_capacity=4, fault_plan=plan)
        # write page images directly, bypassing the WAL
        from repro.storage.page import LeafEntry, PageKind

        page = db.store.new_page(PageKind.LEAF)
        page.add_entry(LeafEntry(1, "a"))
        db.store.write(page)
        page.add_entry(LeafEntry(2, "b"))
        db.store.write(page)  # torn
        with pytest.raises(TornPageError):
            db.pool.pin(page.pid)


def tree_search_all(db, name):
    tree = db.tree(name)
    txn = db.begin()
    try:
        return tree.search(txn, Interval(0, 10_000))
    finally:
        db.commit(txn)
