"""Logical undo of leaf records (section 9.2, Table 1's last column).

The defining property: undo must *re-locate* the entry, because the tree
may have changed arbitrarily between the forward operation and the undo
— splits move entries rightward, root growth moves them downward.
"""

import pytest

from repro.database import Database
from repro.errors import RecoveryError
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.sync.latch import LatchMode


def build():
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("lu", BTreeExtension())
    return db, tree


def leaf_of(db, tree, key, rid):
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            if frame.page.is_leaf and frame.page.find_leaf_entry(key, rid):
                return pid
    return None


class TestUndoAfterStructuralChange:
    def test_undo_insert_after_entry_moved_by_splits(self):
        """The uncommitted entry is pushed rightward by later splits of
        its original leaf; the rollback must chase it via rightlinks."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 50, "victim")
        original_leaf = leaf_of(db, tree, 50, "victim")
        # same-transaction inserts split the leaf repeatedly
        for i in range(20):
            tree.insert(txn, 50 + i / 100.0, f"pusher-{i}")
        moved_leaf = leaf_of(db, tree, 50, "victim")
        db.rollback(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 100)) == []
        db.commit(check)
        assert check_tree(tree).ok
        # diagnostic honesty: the scenario really exercised relocation
        # whenever the entry moved
        assert original_leaf is not None and moved_leaf is not None

    def test_undo_insert_after_root_growth(self):
        """The logged page id was the root leaf; by rollback time the
        root is internal — the descent fallback must find the entry."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "first")  # logged against the root leaf
        for i in range(2, 30):
            tree.insert(txn, i, f"r{i}")  # grows the root
        assert tree.height() >= 2
        db.rollback(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 100)) == []
        db.commit(check)
        assert check_tree(tree).ok

    def test_undo_delete_after_splits(self):
        db, tree = build()
        setup = db.begin()
        for i in range(10):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        txn = db.begin()
        tree.delete(txn, 5, "r5")
        for i in range(30, 60):
            tree.insert(txn, i % 11, f"p{i}")  # splits around the mark
        db.rollback(txn)
        check = db.begin()
        result = tree.search(check, Interval(5, 5))
        db.commit(check)
        assert (5, "r5") in result
        assert check_tree(tree).ok

    def test_undo_is_logical_at_restart_too(self):
        """Same relocation logic driven from restart recovery."""
        db, tree = build()
        setup = db.begin()
        for i in range(10):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        loser = db.begin()
        tree.insert(loser, 5.5, "loser")
        # committed work from another txn splits the loser's leaf
        splitter = db.begin()
        for i in range(20):
            tree.insert(splitter, 5 + i / 100.0, f"s{i}")
        db.commit(splitter)
        db.log.flush()
        db.crash()
        db2 = db.restart({"lu": BTreeExtension()})
        tree2 = db2.tree("lu")
        check = db2.begin()
        found = {r for _, r in tree2.search(check, Interval(0, 100))}
        db2.commit(check)
        assert "loser" not in found
        assert {f"s{i}" for i in range(20)} <= found
        assert check_tree(tree2).ok

    def test_undo_missing_entry_raises_recovery_error(self):
        """If the entry genuinely cannot be found, undo must fail loudly
        (silent no-ops would mask corruption)."""
        from repro.wal.records import AddLeafEntryRecord

        db, tree = build()
        txn = db.begin()
        record = AddLeafEntryRecord(
            xid=txn.xid,
            tree="lu",
            page_id=tree.root_pid,
            nsn=0,
            key=123,
            rid="ghost",
        )
        db.log.append(record)  # forged: the entry was never inserted
        with pytest.raises(RecoveryError):
            tree.undo_add_leaf_entry(record, txn.xid, restart=False)
        # a full rollback of this transaction would (correctly) hit the
        # same error — the forged record poisons its undo chain, so the
        # transaction is abandoned here
        with pytest.raises(RecoveryError):
            db.rollback(txn)
