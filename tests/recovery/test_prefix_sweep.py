"""The strongest recovery property: crash at *every* log prefix.

A recorded history is replayed as if the crash had preserved exactly
``k`` log records, for every ``k`` from 0 to the full log.  Each prefix
must recover to a structurally consistent tree whose contents are
exactly the effects of the transactions whose commit record made it
into the prefix — no torn transactions, no lost committed work, for any
cut point, including cuts inside structure-modification atomic actions.
"""

from __future__ import annotations

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.storage.disk import PageStore
from repro.wal.records import CommitRecord
from repro.wal.recovery import RestartRecovery


def record_history():
    """A small history with commits, aborts, deletes, splits, GC."""
    db = Database(page_capacity=4)
    tree = db.create_tree("sw", BTreeExtension())
    effects: list[tuple[int, str, object, object]] = []  # commit-ordered

    def committed_txn(ops):
        txn = db.begin()
        for kind, key, rid in ops:
            if kind == "insert":
                tree.insert(txn, key, rid)
            else:
                tree.delete(txn, key, rid)
        db.commit(txn)
        commit_lsn = db.log.last_lsn_of(txn.xid)
        # the End record follows the commit; find the commit lsn exactly
        for record in db.log.records_from(1):
            if isinstance(record, CommitRecord) and record.xid == txn.xid:
                commit_lsn = record.lsn
        for kind, key, rid in ops:
            effects.append((commit_lsn, kind, key, rid))

    committed_txn([("insert", i, f"a{i}") for i in range(8)])
    committed_txn([("insert", i + 10, f"b{i}") for i in range(8)])
    committed_txn([("delete", 3, "a3"), ("insert", 99, "c0")])
    # an aborted transaction in the middle
    loser = db.begin()
    tree.insert(loser, 55, "loser")
    db.rollback(loser)
    committed_txn([("insert", 42, "d0"), ("delete", 12, "b2")])
    # and one transaction left in flight at the end
    dangling = db.begin()
    tree.insert(dangling, 77, "dangling")
    return db, effects


def expected_for_prefix(effects, k: int) -> dict:
    """Contents after applying effects of commits with lsn <= k."""
    state: dict = {}
    for commit_lsn, kind, key, rid in effects:
        if commit_lsn > k:
            continue
        if kind == "insert":
            state[rid] = key
        else:
            state.pop(rid, None)
    return state


class TestPrefixSweep:
    def test_every_prefix_recovers_consistently(self):
        db, effects = record_history()
        end = db.log.end_lsn
        assert end > 50  # the history is non-trivial
        failures = []
        for k in range(end + 1):
            log = db.log.clone_prefix(k)
            store = PageStore(page_capacity=4)
            fresh = Database(store=store, log=log, page_capacity=4)
            try:
                RestartRecovery(fresh, {"sw": BTreeExtension()}).run()
            except Exception as exc:
                failures.append(f"k={k}: recovery raised {exc!r}")
                continue
            if "sw" not in fresh.trees:
                continue  # prefix predates the tree
            tree = fresh.tree("sw")
            check = check_tree(tree)
            if not check.ok:
                failures.append(f"k={k}: structure {check.errors[:2]}")
                continue
            txn = fresh.begin()
            found = dict(
                (rid, key)
                for key, rid in tree.search(txn, Interval(-1, 10**6))
            )
            fresh.commit(txn)
            expected = expected_for_prefix(effects, k)
            if found != expected:
                missing = set(expected) - set(found)
                extra = set(found) - set(expected)
                failures.append(
                    f"k={k}: missing={sorted(missing)[:3]} "
                    f"extra={sorted(extra)[:3]}"
                )
        assert not failures, failures[:5]
