"""Unit tests for the lock-mode compatibility and supremum tables."""

import pytest

from repro.lock.modes import (
    LockMode,
    compatible,
    stronger_or_equal,
    supremum,
)

S, X, IS, IX, SIX = (
    LockMode.S,
    LockMode.X,
    LockMode.IS,
    LockMode.IX,
    LockMode.SIX,
)


class TestCompatibility:
    @pytest.mark.parametrize(
        "held,requested,expected",
        [
            (S, S, True),
            (S, X, False),
            (X, S, False),
            (X, X, False),
            (IS, IS, True),
            (IS, IX, True),
            (IS, S, True),
            (IS, SIX, True),
            (IS, X, False),
            (IX, IX, True),
            (IX, S, False),
            (IX, SIX, False),
            (S, IS, True),
            (S, IX, False),
            (SIX, IS, True),
            (SIX, IX, False),
            (SIX, S, False),
            (SIX, SIX, False),
            (X, IS, False),
        ],
    )
    def test_matrix(self, held, requested, expected):
        assert compatible(held, requested) is expected

    def test_x_conflicts_with_everything(self):
        for mode in LockMode:
            assert not compatible(X, mode)
            assert not compatible(mode, X)


class TestSupremum:
    def test_supremum_is_commutative(self):
        for a in LockMode:
            for b in LockMode:
                assert supremum(a, b) == supremum(b, a)

    def test_supremum_idempotent(self):
        for a in LockMode:
            assert supremum(a, a) == a

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (S, IX, SIX),
            (IS, IX, IX),
            (IS, S, S),
            (S, X, X),
            (SIX, IX, SIX),
            (SIX, S, SIX),
            (IS, X, X),
        ],
    )
    def test_known_suprema(self, a, b, expected):
        assert supremum(a, b) == expected

    def test_supremum_upper_bounds_both(self):
        # the supremum must be >= both inputs under the subsumption order
        for a in LockMode:
            for b in LockMode:
                sup = supremum(a, b)
                assert stronger_or_equal(sup, a)
                assert stronger_or_equal(sup, b)


class TestSubsumption:
    def test_x_subsumes_all(self):
        for mode in LockMode:
            assert stronger_or_equal(X, mode)

    def test_s_subsumes_is_not_ix(self):
        assert stronger_or_equal(S, IS)
        assert not stronger_or_equal(S, IX)
