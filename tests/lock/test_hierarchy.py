"""Multi-granularity locking protocol tests."""

import threading

from repro.lock.hierarchy import (
    HierarchicalLocker,
    record_lock,
    table_lock,
)
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode


def make():
    return HierarchicalLocker(LockManager(default_timeout=5.0))


class TestIntentionCompatibility:
    def test_readers_and_writers_of_different_records_coexist(self):
        h = make()
        assert h.read_record(1, "t", "r1")
        assert h.write_record(2, "t", "r2")  # IS + IX compatible
        assert h.locks.held_mode(1, table_lock("t")) == LockMode.IS
        assert h.locks.held_mode(2, table_lock("t")) == LockMode.IX

    def test_same_record_conflicts(self):
        h = make()
        assert h.read_record(1, "t", "r1")
        assert not h.write_record(2, "t", "r1", wait=False)

    def test_table_scan_blocks_writers(self):
        h = make()
        assert h.read_table(1, "t")
        assert not h.write_record(2, "t", "r1", wait=False)  # IX vs S
        assert h.read_record(3, "t", "r1", wait=False)  # IS vs S fine

    def test_exclusive_table_blocks_everyone(self):
        h = make()
        assert h.exclusive_table(1, "t")
        assert not h.read_record(2, "t", "r1", wait=False)
        assert not h.read_table(3, "t", wait=False)

    def test_six_reads_all_and_updates_some(self):
        h = make()
        assert h.read_table_with_updates(1, "t")
        # the SIX holder itself can X individual records
        assert h.locks.acquire(
            1, record_lock("t", "r1"), LockMode.X, wait=False
        )
        # other readers of specific records (IS) still get through
        assert h.locks.acquire(
            2, table_lock("t"), LockMode.IS, wait=False
        )
        # but another table reader (S) does not
        assert not h.read_table(3, "t", wait=False)

    def test_intention_alone_blocks_nobody_at_record_level(self):
        h = make()
        assert h.write_record(1, "t", "r1")
        assert h.read_record(2, "t", "r2", wait=False)
        assert h.write_record(3, "t", "r3", wait=False)


class TestEscalation:
    def test_escalation_subsumes_record_locks(self):
        h = make()
        for i in range(10):
            assert h.write_record(1, "t", f"r{i}")
        assert h.escalate_to_table(1, "t")
        # record locks traded away, table X held
        assert h.locks.held_mode(1, table_lock("t")) == LockMode.X
        for i in range(10):
            assert h.locks.held_mode(1, record_lock("t", f"r{i}")) is None

    def test_escalation_blocked_by_other_intenders(self):
        h = make()
        assert h.write_record(1, "t", "r1")
        assert h.read_record(2, "t", "r2")
        assert not h.escalate_to_table(1, "t", wait=False)

    def test_escalation_waits_out_other_readers(self):
        h = make()
        assert h.write_record(1, "t", "r1")
        assert h.read_record(2, "t", "r2")
        done = threading.Event()

        def escalate():
            assert h.escalate_to_table(1, "t")
            done.set()

        t = threading.Thread(target=escalate)
        t.start()
        t.join(0.2)
        assert not done.is_set()
        h.release_all(2)
        assert done.wait(5.0)
        t.join()

    def test_release_all(self):
        h = make()
        h.write_record(1, "t", "r1")
        h.release_all(1)
        assert h.locks.locks_of(1) == set()
