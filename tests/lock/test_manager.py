"""Unit tests for the lock manager: grants, queues, conversion, release."""

import threading
import time

import pytest

from repro.errors import LockTimeoutError
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode

S, X = LockMode.S, LockMode.X


class TestGrants:
    def test_compatible_grants_share(self):
        lm = LockManager()
        assert lm.acquire(1, "a", S)
        assert lm.acquire(2, "a", S)
        assert set(lm.holders("a")) == {1, 2}

    def test_conflicting_nowait_returns_false(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        assert lm.acquire(2, "a", S, wait=False) is False
        assert lm.acquire(2, "a", X, wait=False) is False

    def test_reentrant_same_mode(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        assert lm.acquire(1, "a", X)
        lm.release(1, "a")
        assert lm.held_mode(1, "a") == X  # count was 2
        lm.release(1, "a")
        assert lm.held_mode(1, "a") is None

    def test_weaker_request_subsumed_by_held(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        assert lm.acquire(1, "a", S)  # subsumed, granted instantly
        assert lm.held_mode(1, "a") == X

    def test_blocking_grant_after_release(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        granted = threading.Event()

        def waiter():
            lm.acquire(2, "a", S)
            granted.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        assert not granted.is_set()
        lm.release(1, "a")
        assert granted.wait(2.0)
        t.join()


class TestConversion:
    def test_sole_holder_upgrades_instantly(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        assert lm.acquire(1, "a", X)
        assert lm.held_mode(1, "a") == X

    def test_upgrade_waits_for_other_reader(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(2, "a", S)
        upgraded = threading.Event()

        def upgrader():
            lm.acquire(1, "a", X)
            upgraded.set()

        t = threading.Thread(target=upgrader)
        t.start()
        time.sleep(0.02)
        assert not upgraded.is_set()
        lm.release(2, "a")
        assert upgraded.wait(2.0)
        t.join()

    def test_conversion_goes_ahead_of_waiters(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(2, "a", S)
        order = []

        def converter():
            lm.acquire(1, "a", X)
            order.append("convert")
            lm.release_all(1)

        def fresh():
            lm.acquire(3, "a", X)
            order.append("fresh")
            lm.release_all(3)

        tf = threading.Thread(target=fresh)
        tf.start()
        time.sleep(0.02)
        tc = threading.Thread(target=converter)
        tc.start()
        time.sleep(0.02)
        lm.release(2, "a")  # now conversion can go; fresh waits for it
        tc.join(2.0)
        tf.join(2.0)
        assert order == ["convert", "fresh"]


class TestFairness:
    def test_no_overtaking_queued_writer(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        writer_queued = threading.Event()
        writer_granted = threading.Event()

        def writer():
            writer_queued.set()
            lm.acquire(2, "a", X)
            writer_granted.set()
            lm.release_all(2)

        t = threading.Thread(target=writer)
        t.start()
        writer_queued.wait()
        time.sleep(0.02)
        # reader 3 would be compatible with reader 1 but must queue
        # behind the writer
        assert lm.acquire(3, "a", S, wait=False) is False
        lm.release(1, "a")
        assert writer_granted.wait(2.0)
        t.join()


class TestRelease:
    def test_release_all(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(1, "b", X)
        lm.release_all(1)
        assert lm.locks_of(1) == set()
        assert lm.holders("a") == {}
        assert lm.holders("b") == {}

    def test_release_unheld_is_noop(self):
        lm = LockManager()
        lm.release(1, "nothing")  # no error

    def test_downgrade_unblocks_reader(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        granted = threading.Event()
        t = threading.Thread(
            target=lambda: (lm.acquire(2, "a", S), granted.set())
        )
        t.start()
        time.sleep(0.02)
        lm.downgrade(1, "a", S)
        assert granted.wait(2.0)
        t.join()


class TestReplicateShared:
    def test_copies_s_holders_with_counts(self):
        lm = LockManager()
        lm.acquire(1, "src", S)
        lm.acquire(1, "src", S)  # count 2
        lm.acquire(2, "src", S)
        copied = lm.replicate_shared("src", "dst")
        assert set(copied) == {1, 2}
        assert set(lm.holders("dst")) == {1, 2}
        # owner 1's count was copied: two releases needed
        lm.release(1, "dst")
        assert lm.held_mode(1, "dst") == S
        lm.release(1, "dst")
        assert lm.held_mode(1, "dst") is None

    def test_x_holders_not_copied(self):
        lm = LockManager()
        lm.acquire(1, "src", X)
        assert lm.replicate_shared("src", "dst") == []
        assert lm.holders("dst") == {}

    def test_missing_source_is_noop(self):
        lm = LockManager()
        assert lm.replicate_shared("ghost", "dst") == []


class TestTimeout:
    def test_lock_wait_times_out(self):
        lm = LockManager(default_timeout=0.2)
        lm.acquire(1, "a", X)
        start = time.perf_counter()
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "a", X)
        assert time.perf_counter() - start < 5.0
        assert lm.stats.timeouts == 1
