"""Deadlock detection tests: cycles must abort exactly one victim."""

import threading
import time

from repro.errors import DeadlockError
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode

S, X = LockMode.S, LockMode.X


def run_all(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10.0)
    assert not any(t.is_alive() for t in threads)


class TestTwoPartyDeadlock:
    def test_ab_ba_cycle_aborts_one(self):
        lm = LockManager(default_timeout=10.0)
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        outcomes = {}

        def t1():
            try:
                lm.acquire(1, "b", X)
                outcomes[1] = "granted"
            except DeadlockError:
                outcomes[1] = "victim"
                lm.release_all(1)

        def t2():
            try:
                lm.acquire(2, "a", X)
                outcomes[2] = "granted"
            except DeadlockError:
                outcomes[2] = "victim"
                lm.release_all(2)

        run_all([t1, t2])
        assert sorted(outcomes.values()) == ["granted", "victim"]
        assert lm.stats.deadlocks == 1

    def test_victim_is_youngest(self):
        lm = LockManager(default_timeout=10.0)
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        outcomes = {}

        def older():
            try:
                lm.acquire(1, "b", X)
                outcomes[1] = "granted"
                lm.release_all(1)
            except DeadlockError:
                outcomes[1] = "victim"
                lm.release_all(1)

        def younger():
            time.sleep(0.05)  # ensure the cycle closes on this request
            try:
                lm.acquire(2, "a", X)
                outcomes[2] = "granted"
                lm.release_all(2)
            except DeadlockError:
                outcomes[2] = "victim"
                lm.release_all(2)

        run_all([older, younger])
        assert outcomes[2] == "victim"
        assert outcomes[1] == "granted"


class TestThreePartyDeadlock:
    def test_cycle_of_three_resolves(self):
        lm = LockManager(default_timeout=10.0)
        for owner, name in ((1, "a"), (2, "b"), (3, "c")):
            lm.acquire(owner, name, X)
        outcomes = {}

        def make(owner, want):
            def work():
                try:
                    lm.acquire(owner, want, X)
                    outcomes[owner] = "granted"
                except DeadlockError:
                    outcomes[owner] = "victim"
                finally:
                    lm.release_all(owner)

            return work

        run_all([make(1, "b"), make(2, "c"), make(3, "a")])
        assert "victim" in outcomes.values()
        assert list(outcomes.values()).count("granted") >= 1

    def test_cycle_of_three_aborts_youngest_and_counts(self):
        """Stage a deterministic 1→2→3→1 cycle: the *youngest* member
        (highest owner id, i.e. the most recently begun transaction) is
        the victim, the two older transactions proceed, and the
        ``lock.deadlocks`` counter records exactly one deadlock."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        lm = LockManager(default_timeout=10.0, metrics=registry)
        for owner, name in ((1, "a"), (2, "b"), (3, "c")):
            lm.acquire(owner, name, X)
        outcomes = {}

        def make(owner, want, delay):
            def work():
                time.sleep(delay)
                try:
                    lm.acquire(owner, want, X)
                    outcomes[owner] = "granted"
                except DeadlockError:
                    outcomes[owner] = "victim"
                finally:
                    lm.release_all(owner)

            return work

        # 1 and 2 queue up first; 3's request closes the cycle, so the
        # detector sees {1, 2, 3} and must pick 3 (the youngest).
        run_all(
            [
                make(1, "b", 0.0),
                make(2, "c", 0.05),
                make(3, "a", 0.15),
            ]
        )
        assert outcomes[3] == "victim"
        assert outcomes[1] == "granted"
        assert outcomes[2] == "granted"
        assert lm.stats.deadlocks == 1
        assert registry.snapshot()["lock"]["deadlocks"] == 1


class TestConversionDeadlock:
    def test_double_upgrade_deadlocks(self):
        """Two S holders both converting to X is the classic conversion
        deadlock; one must be chosen as victim."""
        lm = LockManager(default_timeout=10.0)
        lm.acquire(1, "a", S)
        lm.acquire(2, "a", S)
        outcomes = {}

        def upgr(owner):
            def work():
                try:
                    lm.acquire(owner, "a", X)
                    outcomes[owner] = "granted"
                except DeadlockError:
                    outcomes[owner] = "victim"
                    lm.release_all(owner)

            return work

        run_all([upgr(1), upgr(2)])
        assert sorted(outcomes.values()) == ["granted", "victim"]


class TestNoFalsePositives:
    def test_plain_contention_is_not_deadlock(self):
        lm = LockManager(default_timeout=10.0)
        lm.acquire(1, "a", X)
        results = []

        def waiter(owner):
            def work():
                lm.acquire(owner, "a", S)
                results.append(owner)
                lm.release_all(owner)

            return work

        threads = [
            threading.Thread(target=waiter(o)) for o in (2, 3, 4)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)
        lm.release_all(1)
        for t in threads:
            t.join(5.0)
        assert sorted(results) == [2, 3, 4]
        assert lm.stats.deadlocks == 0
