"""WAL record checksums and tail-truncation recovery (DESIGN.md §9).

Every Table 1 record type is exercised: a log ending in a
corrupted-checksum record of that type must be truncated exactly at the
bad record, keeping the valid prefix intact.
"""

import pytest

from repro.storage.page import LeafEntry, Page, PageKind
from repro.wal.log import LogManager
from repro.wal.records import (
    AddLeafEntryRecord,
    CommitRecord,
    TABLE1_RECORD_TYPES,
    record_checksum,
)


def build_log(extra_records=()):
    """A log with a small committed prefix plus ``extra_records``."""
    log = LogManager()
    log.append(AddLeafEntryRecord(xid=1, page_id=1, key=10, rid="r1"))
    log.append(AddLeafEntryRecord(xid=1, page_id=1, key=20, rid="r2"))
    log.append(CommitRecord(xid=1))
    for record in extra_records:
        log.append(record)
    log.flush()
    return log


class TestChecksumStamping:
    def test_append_stamps_checksum(self):
        log = build_log()
        for record in log.records_from(1):
            assert record.checksum is not None
            assert record.verify_checksum()

    def test_unappended_record_verifies_trivially(self):
        record = AddLeafEntryRecord(xid=1, page_id=1, key=1, rid="r")
        assert record.checksum is None
        assert record.verify_checksum()

    def test_checksum_covers_payload(self):
        a = AddLeafEntryRecord(xid=1, page_id=1, key=10, rid="r1")
        b = AddLeafEntryRecord(xid=1, page_id=1, key=11, rid="r1")
        assert record_checksum(a) != record_checksum(b)

    def test_verification_uses_append_time_fingerprint(self):
        """Records reference live objects (entries shared with resident
        pages); mutating those *after* append must not read as
        corruption — a real WAL serialized the record at write time."""
        log = LogManager()
        page = Page(pid=1, kind=PageKind.LEAF, capacity=8)
        entry = LeafEntry(10, "r1")
        page.add_entry(entry)
        record = AddLeafEntryRecord(xid=1, page_id=1, key=10, rid="r1")
        log.append(record)
        entry.deleted = True  # later delete mutates the shared entry
        assert record.verify_checksum()


class TestVerifyAndTruncate:
    def test_clean_log_is_untouched(self):
        log = build_log()
        end = log.end_lsn
        valid_end, dropped = log.verify_and_truncate()
        assert (valid_end, dropped) == (end, 0)
        assert log.end_lsn == end

    @pytest.mark.parametrize(
        "record_type",
        TABLE1_RECORD_TYPES,
        ids=[t.__name__ for t in TABLE1_RECORD_TYPES],
    )
    def test_truncates_at_corrupt_record_of_each_type(self, record_type):
        log = build_log([record_type(xid=2)])
        target_lsn = log.end_lsn
        assert log.corrupt_tail_record(0) == target_lsn
        valid_end, dropped = log.verify_and_truncate()
        assert valid_end == target_lsn - 1
        assert dropped == 1
        assert log.end_lsn == target_lsn - 1
        # the surviving prefix still verifies clean
        assert log.verify_and_truncate() == (target_lsn - 1, 0)

    def test_truncation_drops_everything_after_first_bad_record(self):
        extra = [
            AddLeafEntryRecord(xid=2, page_id=2, key=i, rid=f"x{i}")
            for i in range(4)
        ]
        log = build_log(extra)
        end = log.end_lsn
        assert log.corrupt_tail_record(3) == end - 3
        valid_end, dropped = log.verify_and_truncate()
        assert valid_end == end - 4
        assert dropped == 4


class TestCrashTimeTailFaults:
    def test_tail_loss_respects_floor(self):
        log = build_log()
        end = log.end_lsn
        dropped = log.torn_tail_loss(10, floor=end - 1)
        assert dropped == 1
        assert log.end_lsn == end - 1

    def test_tail_loss_clears_stale_master_lsn(self):
        log = build_log()
        log.master_lsn = log.end_lsn
        log.torn_tail_loss(1)
        assert log.master_lsn == 0

    def test_corrupt_below_floor_is_refused(self):
        log = build_log()
        assert log.corrupt_tail_record(0, floor=log.end_lsn) is None

    def test_wal_corruption_never_silent(self):
        """The core guarantee: a corrupted record is always *detected* —
        verification fails, never returns stale data as valid."""
        log = build_log([AddLeafEntryRecord(xid=2, page_id=2, key=1, rid="y")])
        lsn = log.corrupt_tail_record(0)
        assert not log.get(lsn).verify_checksum()
