"""Table 1 reproduction: every log record type, exercised end-to-end.

For each of the ten record types in Table 1 of the paper, a scenario
generates the record through the normal tree code, then the database is
crashed (losing all buffered pages) and restarted; the test asserts that

* the record type actually appeared in the log (the scenario is real),
* redo reconstructs a structurally consistent tree with exactly the
  committed contents (redo column), and
* where the record is transactional/undoable, rolling back or crashing
  an uncommitted transaction removes its effects (undo column).
"""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum
from repro.wal.records import AddLeafEntryRecord, GarbageCollectionRecord


def build_db():
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("t", BTreeExtension())
    return db, tree


def record_types(db):
    return {type(r).__name__ for r in db.log.records_from(1)}


def crash_restart_and_verify(db, expected: dict):
    db.crash()
    db2 = db.restart({"t": BTreeExtension()})
    tree2 = db2.tree("t")
    report = check_tree(tree2)
    assert report.ok, report.errors
    txn = db2.begin()
    found = dict(
        (rid, key)
        for key, rid in tree2.search(txn, Interval(-1, 10**9))
    )
    db2.commit(txn)
    assert found == expected
    return db2, tree2


class TestContentRecords:
    def test_add_leaf_entry_redo(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        assert "AddLeafEntryRecord" in record_types(db)
        crash_restart_and_verify(db, {"r1": 1})

    def test_add_leaf_entry_logical_undo_at_restart(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        loser = db.begin()
        tree.insert(loser, 2, "r2")  # never committed
        db.log.flush()  # the add record survives; commit never written
        crash_restart_and_verify(db, {"r1": 1})

    def test_add_leaf_entry_logical_undo_at_rollback(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.rollback(txn)
        assert any(
            isinstance(r, AddLeafEntryRecord)
            for r in db.log.records_from(1)
        )
        txn = db.begin()
        assert tree.search(txn, Interval(0, 10)) == []
        db.commit(txn)

    def test_mark_leaf_entry_redo(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        tree.insert(txn, 2, "r2")
        db.commit(txn)
        txn = db.begin()
        tree.delete(txn, 1, "r1")
        db.commit(txn)
        assert "MarkLeafEntryRecord" in record_types(db)
        crash_restart_and_verify(db, {"r2": 2})

    def test_mark_leaf_entry_undo_at_restart(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        loser = db.begin()
        tree.delete(loser, 1, "r1")
        db.log.flush()  # mark record durable, commit absent
        crash_restart_and_verify(db, {"r1": 1})

    def test_mark_leaf_entry_undo_at_rollback(self):
        db, tree = build_db()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        txn = db.begin()
        tree.delete(txn, 1, "r1")
        db.rollback(txn)
        txn = db.begin()
        assert tree.search(txn, Interval(0, 10)) == [(1, "r1")]
        db.commit(txn)


class TestSplitRecords:
    def fill(self, db, tree, n=40):
        expected = {}
        txn = db.begin()
        for i in range(n):
            tree.insert(txn, i, f"r{i}")
            expected[f"r{i}"] = i
        db.commit(txn)
        return expected

    def test_split_get_page_and_internal_add_redo(self):
        db, tree = build_db()
        expected = self.fill(db, tree)
        types = record_types(db)
        assert "SplitRecord" in types
        assert "GetPageRecord" in types
        assert "InternalEntryAddRecord" in types
        assert "InternalEntryUpdateRecord" in types
        crash_restart_and_verify(db, expected)

    def test_root_split_record_redo(self):
        db, tree = build_db()
        expected = self.fill(db, tree, n=6)
        assert "RootSplitRecord" in record_types(db)
        crash_restart_and_verify(db, expected)

    def test_parent_entry_update_redo(self):
        db, tree = build_db()
        expected = self.fill(db, tree, n=10)
        # inserting a key far outside every BP forces expansion
        txn = db.begin()
        tree.insert(txn, 10_000, "far")
        db.commit(txn)
        expected["far"] = 10_000
        assert "ParentEntryUpdateRecord" in record_types(db)
        crash_restart_and_verify(db, expected)


class TestGarbageCollectionRecord:
    def test_gc_redo(self):
        db, tree = build_db()
        txn = db.begin()
        for i in range(4):  # exactly fills the root leaf
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        tree.delete(txn, 0, "r0")
        db.commit(txn)
        # next insert finds the leaf full and garbage-collects it
        txn = db.begin()
        tree.insert(txn, 9, "r9")
        db.commit(txn)
        assert any(
            isinstance(r, GarbageCollectionRecord)
            for r in db.log.records_from(1)
        )
        expected = {f"r{i}": i for i in range(1, 4)}
        expected["r9"] = 9
        crash_restart_and_verify(db, expected)


class TestNodeDeletionRecords:
    def test_internal_entry_delete_free_page_rightlink_redo(self):
        db, tree = build_db()
        expected = {}
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, i, f"r{i}")
            expected[f"r{i}"] = i
        db.commit(txn)
        txn = db.begin()
        for i in range(10, 30):
            tree.delete(txn, i, f"r{i}")
            del expected[f"r{i}"]
        db.commit(txn)
        txn = db.begin()
        report = vacuum(tree, txn)
        db.commit(txn)
        assert report.nodes_deleted > 0
        types = record_types(db)
        assert "InternalEntryDeleteRecord" in types
        assert "FreePageRecord" in types
        assert "RightlinkUpdateRecord" in types
        crash_restart_and_verify(db, expected)

    def test_freed_page_is_reusable_after_restart(self):
        db, tree = build_db()
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(40):
            tree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        vacuum(tree, txn)
        db.commit(txn)
        freed_before = set(db.store.allocated_pids())
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert set(db2.store.allocated_pids()) == freed_before
        # the recovered tree keeps working
        tree2 = db2.tree("t")
        txn = db2.begin()
        for i in range(20):
            tree2.insert(txn, i, f"n{i}")
        db2.commit(txn)
        assert check_tree(tree2).ok


class TestInterruptedSMO:
    def test_crash_mid_split_is_undone(self):
        """A split whose atomic action never completed (no DummyClr)
        must be rolled back page-oriented at restart (section 9.2)."""
        from repro.errors import CrashError

        db, tree = build_db()
        expected = {}
        txn = db.begin()
        for i in range(4):
            tree.insert(txn, i * 10, f"r{i}")
            expected[f"r{i}"] = i * 10
        db.commit(txn)

        def bomb(**_ctx):
            raise CrashError("boom")

        db.hooks.on("insert:after-split", bomb)
        loser = db.begin()
        with pytest.raises(CrashError):
            tree.insert(loser, 15, "rx")  # leaf is full: split starts
        db.hooks.clear()
        db.log.flush()  # split record durable, NTA end record absent
        crash_restart_and_verify(db, expected)

    def test_interrupted_smo_undo_is_skipped_once_completed(self):
        """A *completed* atomic action must survive the rollback of the
        transaction that executed it: abort the inserting transaction
        after a successful split and verify the split stays."""
        db, tree = build_db()
        txn = db.begin()
        for i in range(4):
            tree.insert(txn, i * 10, f"r{i}")
        db.commit(txn)
        splits_before = tree.stats.splits
        loser = db.begin()
        tree.insert(loser, 15, "rx")
        assert tree.stats.splits == splits_before + 1
        db.rollback(loser)
        # the key is gone but the split (structure) remains
        txn = db.begin()
        assert tree.search(txn, Interval(15, 15)) == []
        db.commit(txn)
        assert tree.stats.splits == splits_before + 1
        assert check_tree(tree).ok
        # and the log shows no split undo (no PageImageClr)
        assert "PageImageClr" not in record_types(db)
