"""Fuzzy checkpoints: content, master pointer, interaction with crash."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.wal.records import CheckpointRecord


def build():
    db = Database(page_capacity=4)
    tree = db.create_tree("cp", BTreeExtension())
    return db, tree


class TestCheckpointContents:
    def test_checkpoint_captures_active_transactions(self):
        db, tree = build()
        live = db.begin()
        tree.insert(live, 1, "r1")
        lsn = db.checkpoint()
        record = db.log.get(lsn)
        assert isinstance(record, CheckpointRecord)
        assert live.xid in record.att
        assert record.att[live.xid] == db.log.last_lsn_of(live.xid)
        db.rollback(live)

    def test_checkpoint_captures_dirty_pages(self):
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        lsn = db.checkpoint()
        record = db.log.get(lsn)
        assert record.dpt  # something is dirty
        db.pool.flush_all()
        lsn2 = db.checkpoint()
        assert db.log.get(lsn2).dpt == {}

    def test_master_pointer_updated_and_durable(self):
        db, tree = build()
        lsn = db.checkpoint()
        assert db.log.master_lsn == lsn
        assert db.log.flushed_lsn >= lsn

    def test_checkpoint_is_fuzzy(self):
        """A checkpoint must not force dirty pages out."""
        db, tree = build()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        dirty_before = set(db.pool.dirty_page_table())
        db.checkpoint()
        assert set(db.pool.dirty_page_table()) == dirty_before


class TestCheckpointRecovery:
    def test_active_txn_at_checkpoint_rolled_back(self):
        """A transaction alive at checkpoint time and dead at the crash
        must appear in the recovered ATT (via the checkpoint) and be
        undone."""
        db, tree = build()
        setup = db.begin()
        tree.insert(setup, 1, "keep")
        db.commit(setup)
        loser = db.begin()
        tree.insert(loser, 2, "lose")
        db.pool.flush_all()
        db.checkpoint()
        # no further records from the loser; it dies with the crash
        db.crash()
        db2 = db.restart({"cp": BTreeExtension()})
        tree2 = db2.tree("cp")
        txn = db2.begin()
        rows = tree2.search(txn, Interval(0, 10))
        db2.commit(txn)
        assert rows == [(1, "keep")]

    def test_work_after_checkpoint_redone(self):
        db, tree = build()
        db.checkpoint()
        txn = db.begin()
        tree.insert(txn, 5, "after")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"cp": BTreeExtension()})
        txn = db2.begin()
        assert db2.tree("cp").search(txn, Interval(5, 5)) == [
            (5, "after")
        ]
        db2.commit(txn)

    def test_repeated_checkpoints_use_latest(self):
        db, tree = build()
        db.checkpoint()
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        db.pool.flush_all()
        second = db.checkpoint()
        assert db.log.master_lsn == second
        db.crash()
        db2 = db.restart({"cp": BTreeExtension()})
        txn = db2.begin()
        assert db2.tree("cp").search(txn, Interval(1, 1)) == [(1, "r1")]
        db2.commit(txn)

    def test_shutdown_then_reopen_is_instant_consistent(self):
        db, tree = build()
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.shutdown()  # checkpoint + flush everything
        db.crash()  # loses nothing that matters
        db2 = db.restart({"cp": BTreeExtension()})
        txn = db2.begin()
        assert len(db2.tree("cp").search(txn, Interval(0, 19))) == 20
        db2.commit(txn)
