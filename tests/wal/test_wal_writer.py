"""Dedicated WAL writer thread: coalescing, lifecycle, crash safety."""

import threading
import time

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.wal.log import LogManager
from repro.wal.records import AddLeafEntryRecord, CommitRecord


def _commit_records(log: LogManager, n: int) -> list[int]:
    return [log.append(CommitRecord(xid=i + 1)) for i in range(n)]


class TestWriterLifecycle:
    def test_start_is_idempotent(self):
        log = LogManager()
        log.start_wal_writer()
        thread = log._writer_thread
        log.start_wal_writer()
        assert log._writer_thread is thread
        assert log.wal_writer_active
        log.stop_wal_writer()
        assert not log.wal_writer_active

    def test_stop_without_writer_is_noop(self):
        log = LogManager()
        assert not log.wal_writer_active
        log.stop_wal_writer()

    def test_restartable(self):
        log = LogManager()
        log.start_wal_writer()
        log.stop_wal_writer()
        log.start_wal_writer()
        lsns = _commit_records(log, 1)
        log.flush(lsns[-1])
        assert log.flushed_lsn >= lsns[-1]
        log.stop_wal_writer()

    def test_default_is_inline(self):
        log = LogManager()
        lsn = log.append(CommitRecord(xid=1))
        log.flush(lsn)
        assert log.flushed_lsn >= lsn
        assert log._writer_thread is None
        assert log.stats.writer_batches == 0


class TestWriterCoalescing:
    def test_concurrent_committers_share_one_force(self):
        log = LogManager(flush_delay=0.02)
        log.start_wal_writer()
        try:
            lsns = _commit_records(log, 8)
            done: list[int] = []

            def committer(lsn: int) -> None:
                log.flush(lsn)
                done.append(lsn)

            threads = [
                threading.Thread(target=committer, args=(lsn,))
                for lsn in lsns
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
            assert sorted(done) == lsns
            assert log.flushed_lsn >= lsns[-1]
            # far fewer forces than committers, and batches recorded
            assert log.stats.flushes < len(lsns)
            assert log.stats.writer_batches >= 1
            assert log.stats.writer_max_batch >= 2
        finally:
            log.stop_wal_writer()

    def test_serial_committer_still_forces_each_commit(self):
        log = LogManager()
        log.start_wal_writer()
        try:
            for lsn in _commit_records(log, 5):
                log.flush(lsn)
                assert log.flushed_lsn >= lsn
        finally:
            log.stop_wal_writer()

    def test_fixed_window_gathers_stragglers(self):
        log = LogManager(flush_delay=0.005)
        log.group_commit_window = 0.05
        log.start_wal_writer()
        try:
            lsns = _commit_records(log, 4)
            threads = [
                threading.Thread(target=log.flush, args=(lsn,))
                for lsn in lsns
            ]
            for t in threads:
                t.start()
                time.sleep(0.005)  # arrive inside the linger window
            for t in threads:
                t.join(10.0)
            assert log.flushed_lsn >= lsns[-1]
            assert log.stats.flushes == 1
            assert log.stats.writer_max_batch == len(lsns)
        finally:
            log.stop_wal_writer()

    def test_adaptive_window_skips_linger_for_sparse_traffic(self):
        # A lone committer with no arrival history must not linger:
        # flush returns promptly.
        log = LogManager()
        log.start_wal_writer()
        try:
            lsn = log.append(CommitRecord(xid=1))
            start = time.perf_counter()
            log.flush(lsn)
            assert time.perf_counter() - start < 0.5
        finally:
            log.stop_wal_writer()


class TestWriterShutdown:
    def test_drain_forces_pending_before_exit(self):
        log = LogManager(flush_delay=0.01)
        log.start_wal_writer()
        lsns = _commit_records(log, 3)
        waiter = threading.Thread(target=log.flush, args=(lsns[-1],))
        waiter.start()
        time.sleep(0.002)
        log.stop_wal_writer(drain=True)
        waiter.join(10.0)
        assert not waiter.is_alive()
        assert log.flushed_lsn >= lsns[-1]

    def test_abort_wakes_parked_committers_inline_fallback(self):
        # drain=False (crash path): parked committers must not hang;
        # they fall back to forcing inline themselves.
        log = LogManager(flush_delay=0.05)
        log.group_commit_window = 10.0  # park the committer for sure
        log.start_wal_writer()
        lsn = log.append(CommitRecord(xid=1))
        done = threading.Event()

        def committer() -> None:
            log.flush(lsn)
            done.set()

        t = threading.Thread(target=committer)
        t.start()
        time.sleep(0.01)
        log.stop_wal_writer(drain=False)
        assert done.wait(10.0), "parked committer hung after writer abort"
        t.join(10.0)
        assert log.flushed_lsn >= lsn


class TestAppendMany:
    def test_batch_append_assigns_contiguous_lsns(self):
        log = LogManager()
        records = [
            AddLeafEntryRecord(
                xid=1, tree="t", page_id=7, key=i, rid=f"r{i}"
            )
            for i in range(4)
        ]
        lsns = log.append_many(records)
        assert lsns == [1, 2, 3, 4]
        assert [r.lsn for r in records] == lsns
        # per-txn backchain threads through the batch
        assert records[0].prev_lsn == 0
        assert records[3].prev_lsn == 3
        assert log.last_lsn_of(1) == 4

    def test_empty_batch(self):
        log = LogManager()
        assert log.append_many([]) == []


class TestWriterThroughDatabase:
    def test_knob_starts_writer_and_shutdown_stops_it(self):
        db = Database(page_capacity=8, wal_writer=True)
        tree = db.create_tree("t", BTreeExtension())
        assert db.log.wal_writer_active
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        db.shutdown()
        assert not db.log.wal_writer_active

    def test_crash_with_writer_recovers(self):
        db = Database(page_capacity=8, wal_writer=True)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        tree2 = db2.tree("t")
        txn = db2.begin()
        from repro.ext.btree import Interval

        got = {k for k, _ in tree2.search(txn, Interval(0, 100))}
        db2.commit(txn)
        assert got == set(range(20))
        db2.shutdown()

    def test_concurrent_database_commits_batch(self):
        db = Database(
            page_capacity=16, flush_delay=0.003, wal_writer=True
        )
        tree = db.create_tree("t", BTreeExtension())
        before = db.log.stats.snapshot()

        def worker(wid: int) -> None:
            for i in range(6):
                txn = db.begin()
                tree.insert(txn, wid * 100 + i, f"{wid}-{i}")
                db.commit(txn)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        after = db.log.stats.snapshot()
        commits = 8 * 6
        flushes = after["flushes"] - before["flushes"]
        assert flushes < commits, (
            f"{flushes} forces for {commits} commits: no batching"
        )
        assert after["writer_batches"] > before["writer_batches"]
        db.shutdown()
