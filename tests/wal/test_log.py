"""Unit tests for the log manager: LSNs, backchains, flush, crash, NTAs."""

import pytest

from repro.errors import WALError
from repro.wal.log import LogManager
from repro.wal.records import NULL_LSN, CommitRecord, DummyClr


def rec(xid: int) -> CommitRecord:
    return CommitRecord(xid=xid)


class TestAppend:
    def test_lsns_are_monotonic_from_one(self):
        log = LogManager()
        assert log.append(rec(1)) == 1
        assert log.append(rec(1)) == 2
        assert log.append(rec(2)) == 3
        assert log.end_lsn == 3

    def test_backchain_per_transaction(self):
        log = LogManager()
        log.append(rec(1))  # lsn 1
        log.append(rec(2))  # lsn 2
        log.append(rec(1))  # lsn 3
        r3 = log.get(3)
        assert r3.prev_lsn == 1
        assert log.get(2).prev_lsn == NULL_LSN
        assert log.last_lsn_of(1) == 3
        assert log.last_lsn_of(2) == 2

    def test_get_out_of_range_raises(self):
        log = LogManager()
        with pytest.raises(WALError):
            log.get(1)
        log.append(rec(1))
        with pytest.raises(WALError):
            log.get(2)

    def test_records_from_iterates_in_order(self):
        log = LogManager()
        for _ in range(5):
            log.append(rec(1))
        lsns = [r.lsn for r in log.records_from(3)]
        assert lsns == [3, 4, 5]

    def test_records_from_sees_appends_during_iteration(self):
        log = LogManager()
        log.append(rec(1))
        it = log.records_from(1)
        assert next(it).lsn == 1
        log.append(rec(1))
        assert next(it).lsn == 2


class TestDurability:
    def test_flush_moves_boundary(self):
        log = LogManager()
        log.append(rec(1))
        log.append(rec(1))
        assert log.flushed_lsn == 0
        log.flush(1)
        assert log.flushed_lsn == 1
        log.flush()
        assert log.flushed_lsn == 2

    def test_crash_truncates_unflushed_tail(self):
        log = LogManager()
        for _ in range(4):
            log.append(rec(1))
        log.flush(2)
        log.crash()
        assert log.end_lsn == 2
        assert [r.lsn for r in log.records_from(1)] == [1, 2]

    def test_flush_beyond_end_is_clamped(self):
        log = LogManager()
        log.append(rec(1))
        log.flush(99)
        assert log.flushed_lsn == 1


class TestNestedTopActions:
    def test_end_nta_writes_dummy_clr_skipping_action(self):
        log = LogManager()
        log.append(rec(1))  # lsn 1: pre-NTA work
        saved = log.begin_nta(1)
        assert saved == 1
        log.append(rec(1))  # lsn 2: inside NTA
        log.append(rec(1))  # lsn 3: inside NTA
        clr_lsn = log.end_nta(1, saved)
        dummy = log.get(clr_lsn)
        assert isinstance(dummy, DummyClr)
        assert dummy.undo_next == 1  # rollback skips lsns 2-3
        assert log.flushed_lsn >= clr_lsn  # NTAs are force-committed

    def test_nta_with_no_prior_work(self):
        log = LogManager()
        saved = log.begin_nta(5)
        assert saved == NULL_LSN
        log.append(rec(5))
        clr_lsn = log.end_nta(5, saved)
        assert log.get(clr_lsn).undo_next == NULL_LSN

    def test_nested_ntas(self):
        log = LogManager()
        outer = log.begin_nta(1)
        log.append(rec(1))  # lsn 1
        inner = log.begin_nta(1)
        log.append(rec(1))  # lsn 2
        inner_clr = log.end_nta(1, inner)
        assert log.get(inner_clr).undo_next == 1
        outer_clr = log.end_nta(1, outer)
        assert log.get(outer_clr).undo_next == NULL_LSN


class TestRestartSupport:
    def test_set_last_lsn_restores_backchain(self):
        log = LogManager()
        log.append(rec(1))
        log.crash()  # nothing flushed: log empty, backchain cleared
        assert log.end_lsn == 0
        log.append(rec(1))
        assert log.get(1).prev_lsn == NULL_LSN
        log.set_last_lsn(1, 1)
        log.append(rec(1))
        assert log.get(2).prev_lsn == 1
