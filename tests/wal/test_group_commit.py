"""Group commit: concurrent log forces coalesce into shared I/Os."""

import threading
import time

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.wal.log import LogManager
from repro.wal.records import CommitRecord


class TestFlushCoalescing:
    def test_rider_waits_for_leader(self):
        log = LogManager(flush_delay=0.05)
        for _ in range(4):
            log.append(CommitRecord(xid=1))
        done = []

        def forcer(lsn):
            log.flush(lsn)
            done.append(lsn)

        threads = [
            threading.Thread(target=forcer, args=(lsn,))
            for lsn in (1, 2, 3)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        elapsed = time.perf_counter() - start
        assert sorted(done) == [1, 2, 3]
        assert log.flushed_lsn >= 3
        # three forces at 50 ms each would be >= 150 ms serialized;
        # coalesced they cost roughly one or two sleeps
        assert elapsed < 0.14
        assert log.stats.group_commits >= 1

    def test_already_durable_is_free(self):
        log = LogManager(flush_delay=0.05)
        log.append(CommitRecord(xid=1))
        log.flush(1)
        flushes_before = log.stats.flushes
        start = time.perf_counter()
        log.flush(1)
        assert time.perf_counter() - start < 0.01
        assert log.stats.flushes == flushes_before

    def test_sequential_forces_still_work(self):
        log = LogManager(flush_delay=0.0)
        for _ in range(3):
            log.append(CommitRecord(xid=1))
        log.flush(1)
        assert log.flushed_lsn == 1
        log.flush(3)
        assert log.flushed_lsn == 3


class TestGroupCommitThroughput:
    def test_concurrent_commits_share_forces(self):
        """Many committers, one slow log: flushes << commits."""
        db = Database(page_capacity=16, flush_delay=0.004)
        tree = db.create_tree("gc", BTreeExtension())
        commits_per_thread = 8

        def worker(wid: int):
            for i in range(commits_per_thread):
                txn = db.begin()
                tree.insert(txn, wid * 100 + i, f"{wid}-{i}")
                db.commit(txn)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(6)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        elapsed = time.perf_counter() - start
        total_commits = 6 * commits_per_thread
        stats = db.log.stats.snapshot()
        # every commit is durable, but the log was forced far fewer
        # times than once per commit
        assert db.log.flushed_lsn == db.log.end_lsn or stats["flushes"] > 0
        assert stats["group_commits"] > 0
        assert stats["flushes"] < total_commits
        # and the wall clock reflects sharing, not 48 serialized sleeps
        assert elapsed < total_commits * 0.004
