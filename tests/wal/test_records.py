"""Unit tests for each log record's redo (and page-oriented undo)."""

from repro.ext.btree import Interval
from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageKind,
)
from repro.wal.records import (
    AddLeafEntryRecord,
    FreePageRecord,
    GarbageCollectionRecord,
    GetPageRecord,
    InternalEntryAddRecord,
    InternalEntryDeleteRecord,
    InternalEntryUpdateRecord,
    MarkLeafEntryRecord,
    PageImageClr,
    ParentEntryUpdateRecord,
    RemoveLeafEntryClr,
    RightlinkUpdateRecord,
    RootSplitRecord,
    SplitRecord,
    TABLE1_RECORD_TYPES,
    UnmarkLeafEntryClr,
)


def leaf(pid=1, n=0) -> Page:
    page = Page(pid=pid, kind=PageKind.LEAF, capacity=8)
    for i in range(n):
        page.add_entry(LeafEntry(i, f"r{i}"))
    return page


def internal(pid=10, children=()) -> Page:
    page = Page(pid=pid, kind=PageKind.INTERNAL, level=1, capacity=8)
    for pred, child in children:
        page.add_entry(InternalEntry(pred, child))
    return page


class TestParentEntryUpdate:
    def test_redo_updates_child_bp_and_parent_slot(self):
        child = leaf(pid=1)
        child.bp = Interval(0, 5)
        parent = internal(pid=10, children=[(Interval(0, 5), 1)])
        rec = ParentEntryUpdateRecord(
            xid=1, new_bp=Interval(0, 9), child_pid=1, parent_pid=10
        )
        rec.redo_page(child)
        rec.redo_page(parent)
        assert child.bp == Interval(0, 9)
        assert parent.find_child_entry(1).pred == Interval(0, 9)

    def test_redo_only(self):
        rec = ParentEntryUpdateRecord(xid=1)
        assert not rec.undoable

    def test_redo_tolerates_missing_slot(self):
        parent = internal(pid=10)
        rec = ParentEntryUpdateRecord(
            xid=1, new_bp=Interval(0, 9), child_pid=1, parent_pid=10
        )
        rec.redo_page(parent)  # no error


class TestSplitRecord:
    def make(self):
        orig = leaf(pid=1, n=4)
        orig.nsn = 3
        orig.rightlink = 7
        orig.bp = Interval(0, 3)
        moved = [orig.entries[2].copy(), orig.entries[3].copy()]
        rec = SplitRecord(
            xid=1,
            orig_pid=1,
            new_pid=2,
            moved_entries=moved,
            level=0,
            kind=PageKind.LEAF,
            old_nsn=3,
            new_nsn=9,
            old_rightlink=7,
            old_bp=Interval(0, 3),
            orig_new_bp=Interval(0, 1),
            new_page_bp=Interval(2, 3),
            capacity=8,
        )
        return orig, rec

    def test_redo_on_original(self):
        orig, rec = self.make()
        rec.redo_page(orig)
        assert sorted(e.rid for e in orig.entries) == ["r0", "r1"]
        assert orig.nsn == 9
        assert orig.rightlink == 2  # now points at the new sibling
        assert orig.bp == Interval(0, 1)

    def test_redo_builds_new_sibling(self):
        _, rec = self.make()
        fresh = Page(pid=2, kind=PageKind.LEAF, capacity=4)
        rec.redo_page(fresh)
        assert sorted(e.rid for e in fresh.entries) == ["r2", "r3"]
        assert fresh.nsn == 3  # inherits original's old NSN
        assert fresh.rightlink == 7  # inherits original's old rightlink
        assert fresh.bp == Interval(2, 3)
        assert fresh.capacity == 8

    def test_undo_restores_original(self):
        orig, rec = self.make()
        rec.redo_page(orig)
        rec.undo_page(orig)
        assert sorted(e.rid for e in orig.entries) == [
            "r0",
            "r1",
            "r2",
            "r3",
        ]
        assert orig.nsn == 3
        assert orig.rightlink == 7
        assert orig.bp == Interval(0, 3)

    def test_undoable_flag(self):
        _, rec = self.make()
        assert rec.undoable and not rec.logical_undo


class TestRootSplit:
    def make(self):
        root = leaf(pid=0, n=4)
        root.nsn = 2
        entries = [e.copy() for e in root.entries]
        rec = RootSplitRecord(
            xid=1,
            root_pid=0,
            left_pid=5,
            right_pid=6,
            left_entries=entries[:2],
            right_entries=entries[2:],
            left_bp=Interval(0, 1),
            right_bp=Interval(2, 3),
            child_kind=PageKind.LEAF,
            child_level=0,
            old_nsn=2,
            new_nsn=11,
            capacity=8,
        )
        return root, rec

    def test_redo_turns_root_internal(self):
        root, rec = self.make()
        rec.redo_page(root)
        assert root.is_internal and root.level == 1
        assert [e.child for e in root.entries] == [5, 6]
        assert root.nsn == 11
        assert root.rightlink == NO_PAGE

    def test_redo_builds_children_with_chain(self):
        root, rec = self.make()
        left = Page(pid=5, kind=PageKind.LEAF)
        right = Page(pid=6, kind=PageKind.LEAF)
        rec.redo_page(left)
        rec.redo_page(right)
        assert left.rightlink == 6 and right.rightlink == NO_PAGE
        assert left.nsn == rec.old_nsn and right.nsn == rec.old_nsn
        assert [e.rid for e in left.entries] == ["r0", "r1"]
        assert [e.rid for e in right.entries] == ["r2", "r3"]

    def test_undo_restores_leaf_root(self):
        root, rec = self.make()
        rec.redo_page(root)
        rec.undo_page(root)
        assert root.is_leaf and root.level == 0
        assert sorted(e.rid for e in root.entries) == [
            "r0",
            "r1",
            "r2",
            "r3",
        ]
        assert root.nsn == 2


class TestInternalEntryRecords:
    def test_add_redo_and_undo(self):
        page = internal(pid=10)
        rec = InternalEntryAddRecord(
            xid=1, page_id=10, pred=Interval(0, 9), child=3
        )
        rec.redo_page(page)
        assert page.find_child_entry(3).pred == Interval(0, 9)
        rec.redo_page(page)  # idempotent
        assert len(page.entries) == 1
        rec.undo_page(page)
        assert page.find_child_entry(3) is None

    def test_update_redo_and_undo(self):
        page = internal(pid=10, children=[(Interval(0, 5), 3)])
        rec = InternalEntryUpdateRecord(
            xid=1,
            page_id=10,
            child=3,
            new_bp=Interval(0, 9),
            old_bp=Interval(0, 5),
        )
        rec.redo_page(page)
        assert page.find_child_entry(3).pred == Interval(0, 9)
        rec.undo_page(page)
        assert page.find_child_entry(3).pred == Interval(0, 5)

    def test_delete_redo_and_undo(self):
        page = internal(pid=10, children=[(Interval(0, 5), 3)])
        rec = InternalEntryDeleteRecord(
            xid=1, page_id=10, pred=Interval(0, 5), child=3
        )
        rec.redo_page(page)
        assert page.find_child_entry(3) is None
        rec.undo_page(page)
        assert page.find_child_entry(3).pred == Interval(0, 5)


class TestLeafContentRecords:
    def test_add_leaf_entry_redo_idempotent(self):
        page = leaf(pid=1)
        rec = AddLeafEntryRecord(
            xid=1, tree="t", page_id=1, nsn=0, key=5, rid="r5"
        )
        rec.redo_page(page)
        rec.redo_page(page)
        assert len(page.entries) == 1
        assert rec.logical_undo and rec.undoable

    def test_mark_leaf_entry_redo_sets_deleter(self):
        page = leaf(pid=1, n=2)
        rec = MarkLeafEntryRecord(
            xid=42, tree="t", page_id=1, nsn=0, key=1, rid="r1"
        )
        rec.redo_page(page)
        entry = page.find_leaf_entry(1, "r1")
        assert entry.deleted and entry.delete_xid == 42

    def test_garbage_collection_redo(self):
        page = leaf(pid=1, n=3)
        page.entries[1].deleted = True
        rec = GarbageCollectionRecord(
            xid=1, page_id=1, rids=[(1, "r1")]
        )
        rec.redo_page(page)
        assert sorted(e.rid for e in page.entries) == ["r0", "r2"]
        assert not rec.undoable


class TestCompensationRecords:
    def test_remove_leaf_entry_clr(self):
        page = leaf(pid=1, n=2)
        clr = RemoveLeafEntryClr(xid=1, page_id=1, key=0, rid="r0")
        clr.redo_page(page)
        assert [e.rid for e in page.entries] == ["r1"]
        assert not clr.undoable

    def test_unmark_leaf_entry_clr(self):
        page = leaf(pid=1, n=1)
        page.entries[0].deleted = True
        page.entries[0].delete_xid = 9
        clr = UnmarkLeafEntryClr(xid=9, page_id=1, key=0, rid="r0")
        clr.redo_page(page)
        assert not page.entries[0].deleted
        assert page.entries[0].delete_xid is None

    def test_page_image_clr_restores_everything(self):
        original = leaf(pid=1, n=3)
        original.nsn = 4
        original.rightlink = 9
        clr = PageImageClr(xid=1, page_id=1, image=original.snapshot())
        mangled = leaf(pid=1, n=0)
        mangled.kind = PageKind.INTERNAL
        clr.redo_page(mangled)
        assert mangled.is_leaf
        assert len(mangled.entries) == 3
        assert mangled.nsn == 4 and mangled.rightlink == 9


class TestMiscRecords:
    def test_rightlink_update(self):
        page = leaf(pid=1)
        page.rightlink = 5
        rec = RightlinkUpdateRecord(
            xid=1, page_id=1, new_rightlink=9, old_rightlink=5
        )
        rec.redo_page(page)
        assert page.rightlink == 9
        rec.undo_page(page)
        assert page.rightlink == 5

    def test_page_allocation_records_flags(self):
        assert GetPageRecord(xid=1, page_id=3).undoable
        assert FreePageRecord(xid=1, page_id=3).undoable

    def test_table1_catalogue_is_complete(self):
        names = {cls.__name__ for cls in TABLE1_RECORD_TYPES}
        assert names == {
            "ParentEntryUpdateRecord",
            "SplitRecord",
            "GarbageCollectionRecord",
            "InternalEntryAddRecord",
            "InternalEntryUpdateRecord",
            "InternalEntryDeleteRecord",
            "AddLeafEntryRecord",
            "MarkLeafEntryRecord",
            "GetPageRecord",
            "FreePageRecord",
        }
