"""The three isolation degrees side by side ([Gra78] / section 4)."""

import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.txn.transaction import IsolationLevel


def build():
    db = Database(page_capacity=8, lock_timeout=10.0)
    tree = db.create_tree("deg", BTreeExtension())
    txn = db.begin()
    for i in range(20):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestDegree1:
    def test_dirty_read_sees_uncommitted_insert(self):
        db, tree = build()
        writer = db.begin()
        tree.insert(writer, 100, "dirty")
        reader = db.begin(IsolationLevel.READ_UNCOMMITTED)
        found = tree.search(reader, Interval(100, 100))
        db.commit(reader)
        assert found == [(100, "dirty")]  # dirty read, by design
        db.rollback(writer)

    def test_dirty_read_never_blocks(self):
        db, tree = build()
        writer = db.begin()
        tree.delete(writer, 5, "r5")  # X lock held
        reader = db.begin(IsolationLevel.READ_UNCOMMITTED)
        done = threading.Event()
        result = []

        def scan():
            result.append(tree.search(reader, Interval(0, 19)))
            done.set()

        t = threading.Thread(target=scan)
        t.start()
        assert done.wait(2.0), "degree-1 read must not block on locks"
        t.join()
        db.commit(reader)
        # the uncommitted delete is honoured optimistically
        assert (5, "r5") not in result[0]
        db.rollback(writer)

    def test_no_locks_no_predicates_left(self):
        db, tree = build()
        reader = db.begin(IsolationLevel.READ_UNCOMMITTED)
        tree.search(reader, Interval(0, 19))
        assert not [
            n
            for n in db.locks.locks_of(reader.xid)
            if isinstance(n, tuple) and n[0] == "rid"
        ]
        assert tree.predicates.predicates_of(reader.xid) == []
        db.commit(reader)


class TestDegreeLadder:
    def test_each_degree_strictly_stronger(self):
        """One scenario, three degrees: an uncommitted insert in the
        scanned range.  Degree 1 sees it (dirty read); degree 2 blocks
        until the writer finishes, then sees the committed value;
        degree 3 additionally keeps the range stable across re-reads."""
        db, tree = build()

        # Degree 1
        writer = db.begin()
        tree.insert(writer, 50, "w1")
        d1 = db.begin(IsolationLevel.READ_UNCOMMITTED)
        assert tree.search(d1, Interval(50, 50)) == [(50, "w1")]
        db.commit(d1)
        db.rollback(writer)

        # Degree 2: the reader blocks, then sees the final state
        writer = db.begin()
        tree.insert(writer, 50, "w2")
        results = []

        def d2_scan():
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            results.append(tree.search(txn, Interval(50, 50)))
            db.commit(txn)

        t = threading.Thread(target=d2_scan)
        t.start()
        t.join(0.2)
        assert t.is_alive()
        db.commit(writer)
        t.join(5.0)
        assert results == [[(50, "w2")]]

        # Degree 3: double read stable even against new writers
        d3 = db.begin(IsolationLevel.REPEATABLE_READ)
        first = tree.search(d3, Interval(40, 60))

        def late_writer():
            txn = db.begin()
            try:
                tree.insert(txn, 55, "late")
                db.commit(txn)
            except Exception:
                try:
                    db.rollback(txn)
                except Exception:
                    pass

        t = threading.Thread(target=late_writer)
        t.start()
        t.join(0.2)
        second = tree.search(d3, Interval(40, 60))
        assert first == second
        db.commit(d3)
        t.join(10.0)


class TestStatsFacade:
    def test_database_stats_shape(self):
        db, tree = build()
        snapshot = db.stats()
        assert snapshot["txns"]["committed"] == 1
        assert snapshot["trees"]["deg"]["inserts"] == 20
        assert snapshot["log"]["end_lsn"] > 0
        assert set(snapshot) == {
            "io",
            "buffer",
            "log",
            "locks",
            "txns",
            "trees",
        }
