"""Repeatable read (Degree 3) guarantees of the hybrid mechanism (§4)."""

import threading

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.txn.transaction import IsolationLevel


def build(capacity=8):
    db = Database(page_capacity=capacity, lock_timeout=10.0)
    tree = db.create_tree("iso", BTreeExtension())
    txn = db.begin()
    for i in range(50):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestPhantomPrevention:
    def test_insert_into_scanned_range_blocks(self):
        """A writer inserting into a range an RR reader has scanned must
        wait for the reader's predicate (section 4.3)."""
        db, tree = build()
        reader = db.begin()
        first = tree.search(reader, Interval(10, 20))
        inserted = threading.Event()

        def writer():
            txn = db.begin()
            try:
                tree.insert(txn, 15, "phantom")
                db.commit(txn)
            except TransactionAbort:
                db.rollback(txn)
            inserted.set()

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.3)
        assert not inserted.is_set()  # blocked on the search predicate
        # the double read sees the identical result
        second = tree.search(reader, Interval(10, 20))
        assert first == second
        db.commit(reader)
        assert inserted.wait(10.0)
        t.join()

    def test_insert_outside_scanned_range_proceeds(self):
        db, tree = build()
        reader = db.begin()
        tree.search(reader, Interval(10, 20))
        done = threading.Event()

        def writer():
            txn = db.begin()
            tree.insert(txn, 45, "elsewhere")
            db.commit(txn)
            done.set()

        t = threading.Thread(target=writer)
        t.start()
        assert done.wait(5.0), "disjoint insert must not block"
        t.join()
        db.commit(reader)

    def test_delete_of_scanned_record_blocks(self):
        """2PL on data records: deleting a record an RR reader returned
        must wait for the reader's S lock."""
        db, tree = build()
        reader = db.begin()
        tree.search(reader, Interval(10, 20))
        deleted = threading.Event()

        def writer():
            txn = db.begin()
            try:
                tree.delete(txn, 15, "r15")
                db.commit(txn)
            except TransactionAbort:
                db.rollback(txn)
            deleted.set()

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.3)
        assert not deleted.is_set()
        second = tree.search(reader, Interval(10, 20))
        assert (15, "r15") in second
        db.commit(reader)
        assert deleted.wait(10.0)
        t.join()

    def test_phantom_from_rollback_prevented(self):
        """Phantoms can also appear by *rolling back* a delete (§4); the
        logical-delete design makes the reader block on the tombstone's
        record lock instead of skipping it prematurely."""
        db, tree = build()
        deleter = db.begin()
        tree.delete(deleter, 15, "r15")
        results = []

        def reader():
            txn = db.begin()
            results.append(tree.search(txn, Interval(10, 20)))
            db.commit(txn)

        t = threading.Thread(target=reader)
        t.start()
        t.join(0.3)
        assert t.is_alive()  # blocked on the deleter's lock
        db.rollback(deleter)  # the delete vanishes
        t.join(10.0)
        assert (15, "r15") in results[0]


class TestReadCommitted:
    def test_rc_allows_phantoms(self):
        """Positive control: under READ COMMITTED the same interleaving
        does produce a phantom."""
        db, tree = build()
        reader = db.begin(IsolationLevel.READ_COMMITTED)
        first = tree.search(reader, Interval(10, 20))
        writer = db.begin()
        tree.insert(writer, 15, "phantom")
        db.commit(writer)  # does not block: no predicate was attached
        second = tree.search(reader, Interval(10, 20))
        db.commit(reader)
        assert len(second) == len(first) + 1

    def test_rc_still_never_reads_uncommitted(self):
        """Even READ COMMITTED must not see dirty data: an uncommitted
        insert blocks the reader (instant lock), then disappears."""
        db, tree = build()
        writer = db.begin()
        tree.insert(writer, 15, "dirty")
        results = []

        def reader():
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            results.append(tree.search(txn, Interval(15, 15)))
            db.commit(txn)

        t = threading.Thread(target=reader)
        t.start()
        t.join(0.3)
        assert t.is_alive()  # blocked on the inserter's X lock
        db.rollback(writer)
        t.join(10.0)
        assert results[0] == [(15, "r15")]


class TestWriterWriterConflicts:
    def test_two_inserts_different_rids_no_conflict(self):
        db, tree = build()
        t1 = db.begin()
        t2 = db.begin()
        tree.insert(t1, 100, "a")
        tree.insert(t2, 101, "b")
        db.commit(t1)
        db.commit(t2)

    def test_deadlock_between_reader_and_writer_resolves(self):
        """Reader holds record S locks and wants more; writer holds a
        record X lock and blocks on the reader's predicate: the cycle
        must be detected, not hang."""
        db, tree = build()
        outcomes = []
        barrier = threading.Barrier(2)

        def reader():
            barrier.wait()
            txn = db.begin()
            try:
                tree.search(txn, Interval(0, 49))
                tree.search(txn, Interval(0, 49))
                db.commit(txn)
                outcomes.append("reader-ok")
            except TransactionAbort:
                db.rollback(txn)
                outcomes.append("reader-abort")

        def writer():
            barrier.wait()
            txn = db.begin()
            try:
                for i in range(5):
                    tree.insert(txn, 25, f"w{i}")
                db.commit(txn)
                outcomes.append("writer-ok")
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
                outcomes.append("writer-abort")

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert not any(t.is_alive() for t in threads)
        assert len(outcomes) == 2  # both finished, one way or another
