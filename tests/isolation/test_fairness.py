"""FIFO predicate fairness — the anti-starvation rule of section 10.3.

Without it, a blocked insert could starve forever: while it waits for
one scan's predicate, new scans keep attaching predicates it would have
to wait for next.  The fix: predicates attach to a node in FIFO order,
an operation only checks predicates *ahead of its own*, and later scans
block on the insert's predicate instead of overtaking it.
"""

import threading
import time

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval


def build():
    db = Database(page_capacity=8, lock_timeout=15.0)
    tree = db.create_tree("fair", BTreeExtension())
    txn = db.begin()
    for i in range(30):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestInsertNotStarved:
    def test_later_scan_queues_behind_blocked_insert(self):
        db, tree = build()
        events = []
        lock = threading.Lock()

        def note(tag):
            with lock:
                events.append(tag)

        reader1 = db.begin()
        tree.search(reader1, Interval(10, 20))
        note("reader1-scanned")

        insert_started = threading.Event()

        def inserter():
            txn = db.begin()
            insert_started.set()
            try:
                tree.insert(txn, 15, "blocked-insert")
                note("insert-done")
                db.commit(txn)
            except TransactionAbort:
                note("insert-aborted")
                try:
                    db.rollback(txn)
                except Exception:
                    pass

        def reader2():
            insert_started.wait()
            time.sleep(0.15)  # let the insert attach + block first
            txn = db.begin()
            try:
                tree.search(txn, Interval(10, 20))
                note("reader2-done")
                db.commit(txn)
            except TransactionAbort:
                note("reader2-aborted")
                try:
                    db.rollback(txn)
                except Exception:
                    pass

        ti = threading.Thread(target=inserter)
        tr = threading.Thread(target=reader2)
        ti.start()
        tr.start()
        time.sleep(0.4)
        # neither the insert nor reader2 may have finished: the insert
        # waits for reader1; reader2 queues behind the insert (it must
        # NOT overtake, or the insert could starve)
        with lock:
            snapshot = list(events)
        assert "insert-done" not in snapshot
        assert "reader2-done" not in snapshot
        db.commit(reader1)
        ti.join(20.0)
        tr.join(20.0)
        with lock:
            final = list(events)
        # the insert completes; reader2 completes after it (or one of
        # them fell to deadlock resolution, which is also starvation-free)
        if "insert-done" in final and "reader2-done" in final:
            assert final.index("insert-done") < final.index(
                "reader2-done"
            )
        else:
            assert "insert-aborted" in final or "reader2-aborted" in final

    def test_stream_of_scans_cannot_lock_out_insert(self):
        """Continuous scan arrivals while an insert is blocked: the
        insert must still complete once the *original* scanners are
        gone, regardless of the newcomers."""
        db, tree = build()
        reader1 = db.begin()
        tree.search(reader1, Interval(10, 20))
        done = threading.Event()
        outcome = []

        def inserter():
            txn = db.begin()
            try:
                tree.insert(txn, 15, "victim")
                db.commit(txn)
                outcome.append("done")
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
                outcome.append("aborted")
            done.set()

        stop = threading.Event()

        def scan_storm():
            while not stop.is_set():
                txn = db.begin()
                try:
                    tree.search(txn, Interval(10, 20))
                    db.commit(txn)
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        ti = threading.Thread(target=inserter)
        storms = [threading.Thread(target=scan_storm) for _ in range(3)]
        ti.start()
        for t in storms:
            t.start()
        time.sleep(0.2)
        db.commit(reader1)  # the only scanner ahead of the insert
        finished = done.wait(15.0)
        stop.set()
        for t in storms:
            t.join(20.0)
        ti.join(5.0)
        assert finished, "insert starved by the scan storm"
        assert outcome and outcome[0] in ("done", "aborted")
