"""Randomized double-read probes (the C3 harness, in miniature)."""

from repro.harness.phantoms import run_phantom_campaign
from repro.txn.transaction import IsolationLevel


class TestPhantomCampaign:
    def test_rr_has_zero_anomalies(self):
        report = run_phantom_campaign(
            isolation=IsolationLevel.REPEATABLE_READ,
            probes=10,
            writers=3,
            think_time=0.002,
            seed=11,
        )
        assert report.probes > 0
        assert report.anomalies == 0, report.phantom_rids

    def test_rc_detects_anomalies(self):
        """Positive control: the probe must be able to see anomalies at
        the weaker level, otherwise the RR zero is meaningless."""
        report = run_phantom_campaign(
            isolation=IsolationLevel.READ_COMMITTED,
            probes=10,
            writers=3,
            think_time=0.02,
            seed=11,
        )
        assert report.anomalies > 0

    def test_writers_make_progress_under_rr(self):
        report = run_phantom_campaign(
            isolation=IsolationLevel.REPEATABLE_READ,
            probes=5,
            writers=2,
            think_time=0.001,
            seed=13,
        )
        assert report.writer_commits > 0
