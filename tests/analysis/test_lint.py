"""Protocol-linter tests: each fixture triggers exactly its rule, the
shipped tree is clean, and suppressions behave."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_file, lint_paths, main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: fixture file -> the one rule it must trigger (and nothing else)
EXPECTED = {
    "leaked_latch.py": "latch-release",
    "interproc_leak.py": "latch-release",
    "sleep_under_latch.py": "io-under-latch",
    "unbalanced_pin.py": "pin-balance",
    "lock_wait_under_latch.py": "lock-wait-under-latch",
    "bare_except.py": "bare-except",
    "swallowed_fault.py": "swallowed-fault",
}


@pytest.mark.parametrize("fixture,rule", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(fixture: str, rule: str) -> None:
    findings = lint_file(FIXTURES / fixture)
    assert findings, f"{fixture} produced no findings"
    assert {f.rule for f in findings} == {rule}, [str(f) for f in findings]


def test_every_rule_has_a_fixture() -> None:
    assert set(EXPECTED.values()) == set(RULES)


def test_abba_fixture_is_lint_clean() -> None:
    # abba_order is a *runtime* fixture: structurally correct code whose
    # acquisition order is only wrong across threads — exactly the class
    # of bug the static prong cannot see and lockdep exists for.
    assert lint_file(FIXTURES / "abba_order.py") == []


def test_shipped_tree_is_clean() -> None:
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_finding_format() -> None:
    finding = lint_file(FIXTURES / "bare_except.py")[0]
    text = str(finding)
    assert text.startswith(str(FIXTURES / "bare_except.py") + ":")
    assert ": bare-except: " in text
    assert finding.line > 0


def test_line_suppression(tmp_path: Path) -> None:
    text = (FIXTURES / "leaked_latch.py").read_text()
    patched = tmp_path / "leaked_latch.py"
    patched.write_text(
        text.replace(
            "latch.acquire(mode)",
            "latch.acquire(mode)  # lint: allow(latch-release): test",
        )
    )
    assert lint_file(patched) == []


def test_line_suppression_is_rule_specific(tmp_path: Path) -> None:
    text = (FIXTURES / "leaked_latch.py").read_text()
    patched = tmp_path / "leaked_latch.py"
    patched.write_text(
        text.replace(
            "latch.acquire(mode)",
            "latch.acquire(mode)  # lint: allow(pin-balance): wrong rule",
        )
    )
    assert [f.rule for f in lint_file(patched)] == ["latch-release"]


def test_def_level_suppression(tmp_path: Path) -> None:
    text = (FIXTURES / "leaked_latch.py").read_text()
    patched = tmp_path / "leaked_latch.py"
    patched.write_text(
        text.replace(
            "def leak(latch, mode, work):",
            "def leak(latch, mode, work):"
            "  # lint: allow(latch-release): caller releases",
        )
    )
    assert lint_file(patched) == []


def test_file_level_suppression(tmp_path: Path) -> None:
    patched = tmp_path / "leaked_latch.py"
    patched.write_text(
        "# lint: allow-file(latch-release)\n"
        + (FIXTURES / "leaked_latch.py").read_text()
    )
    assert lint_file(patched) == []


def test_parse_error_reported(tmp_path: Path) -> None:
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert [f.rule for f in lint_file(bad)] == ["parse-error"]


def test_cli_flags_findings_and_exits_nonzero(capsys) -> None:
    assert main([str(FIXTURES / "leaked_latch.py")]) == 1
    out = capsys.readouterr().out
    assert "latch-release" in out


def test_cli_clean_file_exits_zero(capsys) -> None:
    assert main([str(FIXTURES / "abba_order.py")]) == 0
    assert capsys.readouterr().out == ""


def test_cli_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
