"""Tests for repro.analysis: the protocol linter and runtime lockdep."""
