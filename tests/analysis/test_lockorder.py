"""Static lock-order tests: the shipped tree's acquisition graph is
cycle-free modulo the blessed orderings, the ABBA fixture's cycle is
caught, the JSON artifact is deterministic, and the static graph is a
superset of what the runtime lockdep witness observes."""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.analysis import lockorder
from repro.analysis.common import iter_py_files
from repro.analysis.lockdep import LockdepWitness
from repro.sync.latch import LatchMode, SXLatch
from tests.analysis.fixtures import abba_order

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _shipped_graph() -> lockorder.LockOrderGraph:
    return lockorder.analyze(iter_py_files([SRC]))


def test_shipped_tree_has_no_unblessed_cycles() -> None:
    graph = _shipped_graph()
    assert graph.unblessed_cycles() == []
    assert lockorder.findings_for(graph) == []


def test_shipped_tree_has_the_expected_protocol_edges() -> None:
    graph = _shipped_graph()
    edges = set(graph.edges)
    # Figure 4 back-up: child held while the parent is latched
    assert ("GiST:node", "GiST:parent") in edges
    # every fix reaches through the buffer shard mutex
    assert ("GiST:node", "BufferPool:shard") in edges
    # and the shard mutex is innermost: no shard -> latch edge ever
    assert not any(
        src.endswith(":shard") and not dst.endswith(":shard")
        for src, dst in edges
    )


def test_blessed_cycles_are_subset_checked() -> None:
    graph = _shipped_graph()
    # every detected cycle must be covered by a blessed entry...
    for cycle in graph.cycles():
        assert any(
            cycle <= roles for roles, _why in lockorder.BLESSED_CYCLES
        ), sorted(cycle)
    # ...and the split back-up cycle genuinely exists (the blessing is
    # load-bearing, not decorative)
    assert any(
        {"GiST:node", "GiST:parent"} <= c for c in graph.cycles()
    )


def test_abba_fixture_cycle_is_caught_statically() -> None:
    graph = lockorder.analyze([FIXTURES / "lock_cycle.py"])
    bad = graph.unblessed_cycles()
    assert bad and {"Widget:node", "Widget:b_mutex"} in bad
    findings = lockorder.findings_for(graph)
    assert [f.rule for f in findings] == ["lock-order-cycle"]
    assert "Widget:node" in findings[0].message


def test_consistent_order_is_clean(tmp_path: Path) -> None:
    path = tmp_path / "m.py"
    path.write_text(
        "class Widget:\n"
        "    def forward(self):\n"
        "        self.a_latch.acquire(1)\n"
        "        try:\n"
        "            self.b_mutex.acquire()\n"
        "            try:\n"
        "                self.work()\n"
        "            finally:\n"
        "                self.b_mutex.release()\n"
        "        finally:\n"
        "            self.a_latch.release()\n"
    )
    graph = lockorder.analyze([path])
    assert graph.unblessed_cycles() == []
    assert ("Widget:node", "Widget:b_mutex") in graph.edges


def test_loop_carried_partition_locks_are_modeled() -> None:
    # the scatter loop acquires many partition locks at once; the
    # self-edge must be present (and blessed: ascending index order)
    graph = _shipped_graph()
    edge = ("PartitionedDatabase:_locks", "PartitionedDatabase:_locks")
    assert edge in graph.edges


def test_artifact_shape_and_determinism(tmp_path: Path) -> None:
    graph = _shipped_graph()
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    lockorder.write_artifact(graph, out1)
    lockorder.write_artifact(_shipped_graph(), out2)
    assert out1.read_text() == out2.read_text()  # CI-diffable
    data = json.loads(out1.read_text())
    assert set(data) == {
        "nodes",
        "edges",
        "blessed",
        "cycles",
        "unblessed_cycles",
    }
    assert data["unblessed_cycles"] == []
    assert all(
        e["sites"] for e in data["edges"]
    ), "every edge carries sample sites"


def test_static_graph_covers_runtime_witness(monkeypatch) -> None:
    """The superset cross-check: every (kind -> kind) edge the runtime
    lockdep witness records while the ABBA fixture races must already
    be present in the static graph's kind projection — the static
    prong sees all acquisition sites, the runtime prong only the
    executed interleavings."""
    monkeypatch.setenv("REPRO_PROTOCOL_CHECKS", "1")
    witness = LockdepWitness()
    a = SXLatch(name="A", witness=witness)
    b = SXLatch(name="B", witness=witness)
    barrier = threading.Barrier(2)
    threads = [
        threading.Thread(
            target=abba_order.acquire_pair,
            args=(first, second, LatchMode.S),
            kwargs={"between": barrier.wait},
            daemon=True,
        )
        for first, second in ((a, b), (b, a))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    runtime_edges = {
        (src[0], dst[0])
        for src, dsts in witness._edges.items()
        for dst in dsts
    }
    assert runtime_edges  # the race actually recorded something
    static_kinds = _shipped_graph().kind_projection()
    assert runtime_edges <= static_kinds, (
        runtime_edges - static_kinds
    )
