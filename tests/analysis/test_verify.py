"""Verifier-CLI tests: per-family exit bits, artifacts, the
suppression budget, and a clean shipped tree."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.verify import (
    EXIT_CLUSTER,
    EXIT_LOCKORDER,
    EXIT_SERVER,
    EXIT_SUPPRESSION,
    EXIT_TIME,
    EXIT_TYPESTATE,
    main,
    run,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_shipped_tree_verifies_clean(tmp_path: Path) -> None:
    code, findings, stats = run(
        [str(SRC)],
        artifact_dir=str(tmp_path),
        max_seconds=30,
    )
    assert findings == [], "\n".join(str(f) for f in findings)
    assert code == 0
    assert stats["suppressions"] <= stats["suppression_budget"]
    # artifacts written and internally consistent
    payload = json.loads((tmp_path / "findings.json").read_text())
    assert payload["findings"] == []
    assert payload["stats"]["functions"] == stats["functions"]
    graph = json.loads((tmp_path / "lock_graph.json").read_text())
    assert graph["unblessed_cycles"] == []


def test_exit_bits_identify_the_family() -> None:
    code, findings, _stats = run(
        [
            str(FIXTURES / "scatter_unchecked.py"),
            str(FIXTURES / "deadline_not_forwarded.py"),
            str(FIXTURES / "interproc_leak.py"),
            str(FIXTURES / "lock_cycle.py"),
            str(FIXTURES / "reasonless_suppression.py"),
        ]
    )
    assert code & EXIT_CLUSTER
    assert code & EXIT_SERVER
    assert code & EXIT_TYPESTATE
    assert code & EXIT_LOCKORDER
    assert code & EXIT_SUPPRESSION
    assert not code & EXIT_TIME
    rules = {f.rule for f in findings}
    assert "scatter-result-unchecked" in rules
    assert "lock-order-cycle" in rules


def test_single_family_exit_is_exact() -> None:
    code, _findings, _stats = run(
        [str(FIXTURES / "scatter_unchecked.py")]
    )
    assert code == EXIT_CLUSTER


def test_suppression_budget_enforced(tmp_path: Path) -> None:
    src = tmp_path / "m.py"
    src.write_text(
        "def f(x):\n"
        "    return x  # lint: allow(io-under-latch): one\n"
        "def g(x):\n"
        "    return x  # lint: allow(io-under-latch): two\n"
    )
    code, findings, stats = run([str(tmp_path)], max_suppressions=1)
    assert stats["suppressions"] == 2
    assert any(
        f.rule == "suppression-budget-exceeded" for f in findings
    )
    assert code & EXIT_SUPPRESSION


def test_cli_prints_family_tags(capsys) -> None:
    code = main([str(FIXTURES / "scatter_unchecked.py")])
    assert code == EXIT_CLUSTER
    out = capsys.readouterr().out
    assert "[cluster]" in out
    assert "scatter-result-unchecked" in out
