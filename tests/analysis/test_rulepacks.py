"""Cluster/server rule-pack tests: each fixture triggers exactly its
rule, the shipped tree is pack-clean, and the suppression meta-rule
distinguishes justified from reasonless suppressions."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.rulepacks import (
    CLUSTER_RULES,
    META_RULES,
    SERVER_RULES,
    check_files,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: fixture file -> the one rule it must trigger (and nothing else)
EXPECTED = {
    "scatter_unchecked.py": "scatter-result-unchecked",
    "frame_without_crc.py": "frame-without-crc",
    "cluster/supervisor_blocking.py": "supervisor-blocking",
    "deadline_not_forwarded.py": "deadline-not-forwarded",
    "retry_without_backoff.py": "retry-without-backoff",
    "cluster/unbounded_queue.py": "unbounded-queue",
    "reasonless_suppression.py": "suppression-without-reason",
}


@pytest.mark.parametrize("fixture,rule", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(fixture: str, rule: str) -> None:
    findings = check_files([FIXTURES / fixture])
    assert findings, f"{fixture} produced no findings"
    assert {f.rule for f in findings} == {rule}, [str(f) for f in findings]


def test_every_pack_rule_has_a_fixture() -> None:
    assert set(EXPECTED.values()) == (
        set(CLUSTER_RULES) | set(SERVER_RULES) | set(META_RULES)
    )


def test_shipped_tree_is_pack_clean() -> None:
    from repro.analysis.common import iter_py_files

    findings = check_files(iter_py_files([SRC]))
    assert findings == [], "\n".join(str(f) for f in findings)


def test_reasoned_suppression_passes_meta_rule(tmp_path: Path) -> None:
    patched = tmp_path / "reasoned.py"
    patched.write_text(
        (FIXTURES / "reasonless_suppression.py")
        .read_text()
        .replace(
            "# lint: allow(io-under-latch)",
            "# lint: allow(io-under-latch): justified in the test",
        )
    )
    assert check_files([patched]) == []


def test_docstring_mention_is_not_a_suppression(tmp_path: Path) -> None:
    # the analysis package's own docs talk about `# lint: allow(...)`;
    # a string mention must be neither a suppression nor a meta finding
    doc = tmp_path / "doc.py"
    doc.write_text('"""Docs about `# lint: allow(rule)` syntax."""\n')
    assert check_files([doc]) == []


def test_scatter_bound_to_name_is_clean(tmp_path: Path) -> None:
    patched = tmp_path / "scatter_ok.py"
    patched.write_text(
        (FIXTURES / "scatter_unchecked.py")
        .read_text()
        .replace(
            "self.cluster._scatter(",
            "acked = self.cluster._scatter(",
        )
        + "        return acked\n"
    )
    assert check_files([patched]) == []


def test_forwarded_deadline_is_clean(tmp_path: Path) -> None:
    patched = tmp_path / "deadline_ok.py"
    patched.write_text(
        (FIXTURES / "deadline_not_forwarded.py")
        .read_text()
        .replace(
            "backend.get(tree, key)",
            "backend.get(tree, key, timeout=deadline)",
        )
    )
    assert check_files([patched]) == []


def test_derived_deadline_is_recognized(tmp_path: Path) -> None:
    # one level of local assignment propagates the taint
    patched = tmp_path / "deadline_derived.py"
    patched.write_text(
        "def relay(backend, tree, key, deadline):\n"
        "    remaining = max(0.0, deadline)\n"
        "    return backend.get(tree, key, remaining)\n"
    )
    assert check_files([patched]) == []


def test_retry_with_backoff_is_clean(tmp_path: Path) -> None:
    patched = tmp_path / "retry_ok.py"
    patched.write_text(
        (FIXTURES / "retry_without_backoff.py")
        .read_text()
        .replace(
            "        except TimeoutError:\n            continue",
            "        except TimeoutError:\n"
            "            time.sleep(0.01 * attempt)\n"
            "            continue",
        )
    )
    assert check_files([patched]) == []


def test_drained_queue_is_clean(tmp_path: Path) -> None:
    cluster_dir = tmp_path / "cluster"
    cluster_dir.mkdir()
    patched = cluster_dir / "queue_ok.py"
    patched.write_text(
        (FIXTURES / "cluster" / "unbounded_queue.py").read_text()
        + "\n    def take(self):\n        return self.pending.popleft()\n"
    )
    assert check_files([patched]) == []


def test_bounded_join_is_clean(tmp_path: Path) -> None:
    cluster_dir = tmp_path / "cluster"
    cluster_dir.mkdir()
    patched = cluster_dir / "join_ok.py"
    patched.write_text(
        (FIXTURES / "cluster" / "supervisor_blocking.py")
        .read_text()
        .replace("handle.process.join()", "handle.process.join(timeout=5)")
    )
    assert check_files([patched]) == []
