"""Runtime lockdep tests: cycle detection, WAL rule, latch/lock rules,
leak reporting and the ``Database(protocol_checks=...)`` wiring."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockdep import LockdepWitness, drain_new_violations
from repro.database import Database
from repro.errors import LockTimeoutError
from repro.ext.btree import BTreeExtension
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode
from repro.storage.disk import PageStore
from repro.storage.page import PageKind
from repro.sync.hooks import Hooks, make_barrier_hook
from repro.sync.latch import LatchMode, SXLatch
from tests.analysis.fixtures import abba_order, leaked_latch, unbalanced_pin


@pytest.fixture(autouse=True)
def _drain_seeded_violations():
    """These tests deliberately seed hard violations; drain them so the
    suite-wide ``REPRO_PROTOCOL_CHECKS`` enforcement fixture (which
    tears down *after* this one) does not fail the test for them."""
    yield
    drain_new_violations()


# ----------------------------------------------------------------------
# cycle detection


def test_three_thread_abba_cycle_reported_without_deadlocking():
    witness = LockdepWitness()
    latches = {
        name: SXLatch(name=name, witness=witness) for name in "ABC"
    }
    hooks = Hooks()
    barrier_hook, _ = make_barrier_hook(3)
    hooks.on("test:first-latch-held", barrier_hook)

    def run(first: str, second: str) -> None:
        abba_order.acquire_pair(
            latches[first],
            latches[second],
            LatchMode.S,
            between=lambda: hooks.fire("test:first-latch-held"),
        )

    # A->B, B->C, C->A: a three-party ABBA.  All acquisitions are S-mode
    # (self-compatible), so no interleaving can actually deadlock — the
    # witness must still prove the cycle possible.
    threads = [
        threading.Thread(target=run, args=pair)
        for pair in (("A", "B"), ("B", "C"), ("C", "A"))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert not any(t.is_alive() for t in threads)

    cycles = witness.cycles
    assert cycles, "lock-order cycle not detected"
    members = set().union(*(set(cycle) for cycle in cycles))
    assert {("latch", "A"), ("latch", "B"), ("latch", "C")} <= members
    assert any(v.rule == "lock-order-cycle" for v in witness.warnings)
    # a *potential* cycle is a warning for human triage, not a hard stop
    assert witness.violations == []


def test_consistent_order_produces_no_cycle():
    witness = LockdepWitness()
    a = SXLatch(name="A", witness=witness)
    b = SXLatch(name="B", witness=witness)
    for _ in range(3):
        abba_order.acquire_pair(a, b, LatchMode.S)
    assert witness.cycles == []
    assert witness.report().edges == 1  # A->B recorded once


def test_out_of_order_release_is_legal_crabbing():
    witness = LockdepWitness()
    witness.note_acquired("latch", "parent")
    witness.note_acquired("latch", "child")
    # hand-over-hand: parent released first, child still held
    witness.note_released("latch", "parent")
    witness.note_released("latch", "child")
    report = witness.report()
    assert report.leaked_latches == {}
    assert report.violations == [] and report.warnings == []


# ----------------------------------------------------------------------
# WAL rule


def test_wal_rule_violation_on_underflushed_write():
    store = PageStore(page_capacity=4)
    witness = LockdepWitness(flushed_lsn=lambda: 5)
    store.witness = witness
    page = store.new_page(PageKind.LEAF)
    page.page_lsn = 9
    store.write(page)
    wal = [v for v in witness.violations if v.rule == "wal-rule"]
    assert len(wal) == 1
    assert "page_lsn=9" in wal[0].detail


def test_wal_rule_silent_when_log_covers_page():
    store = PageStore(page_capacity=4)
    witness = LockdepWitness(flushed_lsn=lambda: 100)
    store.witness = witness
    page = store.new_page(PageKind.LEAF)
    page.page_lsn = 9
    store.write(page)
    assert witness.violations == []
    assert witness.report().io_events == 1


# ----------------------------------------------------------------------
# latch held across lock wait / across I/O


def test_latch_held_across_lock_wait_is_hard_violation():
    witness = LockdepWitness()
    locks = LockManager(default_timeout=0.05)
    locks.witness = witness
    locks.acquire("t1", "k", LockMode.X)
    latch = SXLatch(name="L", witness=witness)
    latch.acquire(LatchMode.S)
    try:
        with pytest.raises(LockTimeoutError):
            locks.acquire("t2", "k", LockMode.X, timeout=0.05)
    finally:
        latch.release()
    found = [v for v in witness.violations if v.rule == "latch-lock-wait"]
    assert len(found) == 1
    assert ("latch", "L") in found[0].held


def test_unlatched_lock_wait_is_not_a_violation():
    witness = LockdepWitness()
    locks = LockManager(default_timeout=0.05)
    locks.witness = witness
    locks.acquire("t1", "k", LockMode.X)
    with pytest.raises(LockTimeoutError):
        locks.acquire("t2", "k", LockMode.X, timeout=0.05)
    assert witness.violations == []


def test_io_under_latch_is_warning_not_violation():
    store = PageStore(page_capacity=4)
    witness = LockdepWitness()
    store.witness = witness
    page = store.new_page(PageKind.LEAF)
    store.write(page)
    latch = SXLatch(name="io-latch", witness=witness)
    latch.acquire(LatchMode.S)
    try:
        store.read(page.pid)
    finally:
        latch.release()
    assert any(v.rule == "latch-io" for v in witness.warnings)
    assert witness.violations == []


# ----------------------------------------------------------------------
# leak reporting


def test_leaked_latch_reported_until_released():
    witness = LockdepWitness()
    latch = SXLatch(name="leaky", witness=witness)
    leaked_latch.leak(latch, LatchMode.S, lambda: None)
    me = threading.get_ident()
    assert witness.report().leaked_latches == {me: [("latch", "leaky")]}
    latch.release()
    assert witness.report().leaked_latches == {}


def test_leaked_pin_reported_until_unpinned():
    db = Database(protocol_checks=True, page_capacity=4)
    tree = db.create_tree("bt", BTreeExtension())
    unbalanced_pin.grab(db.pool, tree.root_pid)
    me = threading.get_ident()
    assert db.witness.report().leaked_pins == {me: [tree.root_pid]}
    db.pool.unpin(tree.root_pid)
    assert db.witness.report().leaked_pins == {}


# ----------------------------------------------------------------------
# Database wiring


def test_database_protocol_checks_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROTOCOL_CHECKS", raising=False)
    db = Database(page_capacity=4)
    assert db.witness is None
    assert db.protocol_report() is None
    assert db.store.witness is None
    assert db.locks.witness is None


def test_database_protocol_checks_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_PROTOCOL_CHECKS", "1")
    assert Database(page_capacity=4).witness is not None
    monkeypatch.setenv("REPRO_PROTOCOL_CHECKS", "off")
    assert Database(page_capacity=4).witness is None
    monkeypatch.setenv("REPRO_PROTOCOL_CHECKS", "1")
    # an explicit argument beats the environment
    assert Database(page_capacity=4, protocol_checks=False).witness is None


def test_database_wires_witness_everywhere():
    db = Database(protocol_checks=True, page_capacity=4)
    assert db.witness is not None
    assert db.store.witness is db.witness
    assert db.locks.witness is db.witness
    report = db.protocol_report()
    assert report is not None and report.ok


def test_checked_workload_records_no_hard_violations():
    db = Database(protocol_checks=True, page_capacity=4)
    tree = db.create_tree("bt", BTreeExtension())
    txn = db.begin()
    for i in range(60):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    txn = db.begin()
    assert tree.search(txn, 17)
    for i in range(0, 60, 7):
        tree.delete(txn, i, f"r{i}")
    db.commit(txn)
    report = db.protocol_report()
    assert report.ok, [str(v) for v in report.violations]
    assert report.acquisitions > 0  # the witness actually saw traffic
    assert report.leaked_latches == {}
    assert report.leaked_pins == {}


def test_restart_inherits_protocol_checks():
    db = Database(protocol_checks=True, page_capacity=4)
    tree = db.create_tree("bt", BTreeExtension())
    txn = db.begin()
    tree.insert(txn, 1, "r1")
    db.commit(txn)
    db.crash()
    db2 = db.restart({"bt": BTreeExtension()})
    assert db2.witness is not None
    assert db2.witness is not db.witness
    assert db2.store.witness is db2.witness
    assert db2.protocol_report().ok

    # an explicit override at restart clears the store's stale binding
    db2.crash()
    db3 = db2.restart({"bt": BTreeExtension()}, protocol_checks=False)
    assert db3.witness is None
    assert db3.store.witness is None


def test_drain_new_reports_each_violation_once():
    witness = LockdepWitness()
    witness.note_acquired("latch", "A")
    witness.note_lock_wait("some-lock")
    witness.note_released("latch", "A")
    fresh = witness.drain_new()
    assert [v.rule for v in fresh] == ["latch-lock-wait"]
    assert witness.drain_new() == []
    # the global drain sees nothing either: already consumed
    assert all(
        "some-lock" not in v.detail for v in drain_new_violations()
    )
