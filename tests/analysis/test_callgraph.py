"""Call-graph builder tests: name resolution, method dispatch by
receiver type, SCC order, and the type-state summaries built on top
(ownership transfer, borrow/consume param effects)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import callgraph as cg
from repro.analysis.typestate import check_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _build(tmp_path: Path, name: str, source: str) -> cg.CallGraph:
    path = tmp_path / name
    path.write_text(source)
    return cg.build([path])


def _callees(graph: cg.CallGraph, caller_suffix: str) -> set:
    for qname, sites in graph.edges.items():
        if qname.endswith(caller_suffix):
            return {site.callee for site in sites}
    return set()


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------


def test_module_function_call_resolves(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "def helper():\n    pass\n\ndef caller():\n    helper()\n",
    )
    assert _callees(graph, "m.caller") == {"m.helper"}


def test_self_method_dispatch(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "class A:\n"
        "    def f(self):\n"
        "        self.g()\n"
        "    def g(self):\n"
        "        pass\n",
    )
    assert _callees(graph, "m.A.f") == {"m.A.g"}


def test_inherited_method_dispatch(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "class Base:\n"
        "    def g(self):\n"
        "        pass\n"
        "class Child(Base):\n"
        "    def f(self):\n"
        "        self.g()\n",
    )
    assert _callees(graph, "m.Child.f") == {"m.Base.g"}


def test_override_wins_over_base(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "class Base:\n"
        "    def g(self):\n"
        "        pass\n"
        "class Child(Base):\n"
        "    def g(self):\n"
        "        pass\n"
        "    def f(self):\n"
        "        self.g()\n",
    )
    assert _callees(graph, "m.Child.f") == {"m.Child.g"}


def test_attr_receiver_dispatch_by_constructor_type(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "class Pool:\n"
        "    def unfix(self, frame):\n"
        "        pass\n"
        "class Tree:\n"
        "    def __init__(self):\n"
        "        self.pool = Pool()\n"
        "    def f(self, frame):\n"
        "        self.pool.unfix(frame)\n",
    )
    assert _callees(graph, "m.Tree.f") == {"m.Pool.unfix"}


def test_sccs_are_callee_first(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "def a():\n    b()\n"
        "def b():\n    c()\n"
        "def c():\n    pass\n",
    )
    order = [q for comp in graph.sccs() for q in comp]
    assert order.index("m.c") < order.index("m.b") < order.index("m.a")


def test_mutual_recursion_is_one_scc(tmp_path: Path) -> None:
    graph = _build(
        tmp_path,
        "m.py",
        "def a(n):\n    return b(n - 1)\n"
        "def b(n):\n    return a(n - 1)\n",
    )
    comps = [set(c) for c in graph.sccs() if len(c) > 1]
    assert {"m.a", "m.b"} in comps


def test_shipped_tree_resolves_crabbing_helpers() -> None:
    # the edges the interprocedural latch pass depends on: the GiST
    # descent must see its ownership-transferring helpers
    from repro.analysis.common import iter_py_files

    graph = cg.build(iter_py_files([SRC]))
    callees = _callees(graph, "repro.gist.tree.GiST._locate_leaf")
    assert "repro.gist.tree.GiST._choose_in_chain" in callees
    assert "repro.gist.tree.GiST._try_hinted_leaf" in callees
    # unresolved calls are mostly stdlib/builtins; a four-digit count
    # of resolved in-tree edges is the health floor
    assert graph.resolved > 1000


# ----------------------------------------------------------------------
# summaries (type-state layer over the call graph)
# ----------------------------------------------------------------------


def _summaries(tmp_path: Path, source: str):
    path = tmp_path / "m.py"
    path.write_text(source)
    findings, engine = check_paths([path])
    return findings, engine


def test_ownership_transfer_summary(tmp_path: Path) -> None:
    findings, engine = _summaries(
        tmp_path,
        "class T:\n"
        "    def descend(self, pid):\n"
        "        frame = self.pool.fix(pid)\n"
        "        return frame\n",
    )
    summ = engine.summaries["m.T.descend"]
    assert summ.returns_held == "yes"
    assert findings == []  # transfer-to-caller is not a leak


def test_consume_param_summary(tmp_path: Path) -> None:
    _findings, engine = _summaries(
        tmp_path,
        "class T:\n"
        "    def cleanup(self, frame):\n"
        "        self.pool.unfix(frame)\n",
    )
    summ = engine.summaries["m.T.cleanup"]
    assert summ.param_effects.get("frame") == "consume"


def test_borrow_param_summary(tmp_path: Path) -> None:
    _findings, engine = _summaries(
        tmp_path,
        "class T:\n"
        "    def peek(self, frame):\n"
        "        value = frame.page\n"
        "        return value\n",
    )
    summ = engine.summaries["m.T.peek"]
    assert summ.param_effects.get("frame", "borrow") == "borrow"


def test_balanced_function_summary(tmp_path: Path) -> None:
    findings, engine = _summaries(
        tmp_path,
        "class T:\n"
        "    def probe(self, pid):\n"
        "        frame = self.pool.fix(pid)\n"
        "        value = frame.page.value\n"
        "        self.pool.unfix(frame)\n"
        "        return value\n",
    )
    assert findings == []
    assert engine.summaries["m.T.probe"].returns_held == "no"


def test_leak_through_helper_is_interprocedural(tmp_path: Path) -> None:
    findings, _engine = _summaries(
        tmp_path,
        "class T:\n"
        "    def descend(self, pid):\n"
        "        frame = self.pool.fix(pid)\n"
        "        return frame\n"
        "    def lookup(self, pid):\n"
        "        frame = self.descend(pid)\n"
        "        value = frame.page.value\n"
        "        return value\n",
    )
    assert [f.rule for f in findings] == ["latch-release"]
    # the finding lands in the caller that dropped the frame, not in
    # the helper that legitimately transferred it
    assert findings[0].line >= 6
