"""Broken fixture: a retry loop that never sleeps between attempts.

A tight retry loop defeats the server's RetryLater backpressure.
Must trigger exactly ``retry-without-backoff``.
"""


def call_until_ok(chan, payload):
    for attempt in range(5):
        try:
            return chan.call(payload)
        except TimeoutError:
            continue
    raise TimeoutError("gave up")
