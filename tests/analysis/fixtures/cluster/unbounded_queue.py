"""Broken fixture: an unbounded queue attribute nobody ever drains.

An admission-bypass buffer that grows without bound.  Must trigger
exactly ``unbounded-queue``.
"""

from collections import deque


class Mailbox:
    def __init__(self):
        self.pending = deque()

    def offer(self, item):
        self.pending.append(item)
