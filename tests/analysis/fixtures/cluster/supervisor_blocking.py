"""Broken fixture: an unbounded join() in a cluster module.

If the supervisor can block forever on one zombie, the whole cluster
wedges with it.  Must trigger exactly ``supervisor-blocking``.
"""


def reap(handle):
    handle.process.join()
    handle.dead = True
