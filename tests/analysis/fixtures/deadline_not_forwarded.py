"""Broken fixture: a deadline budget dropped before a downstream call.

The caller's deadline never reaches the backend, so the request can
outlive the client that asked for it.  Must trigger exactly
``deadline-not-forwarded``.
"""


def relay(backend, tree, key, deadline):
    return backend.get(tree, key)
