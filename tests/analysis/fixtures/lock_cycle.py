"""Broken fixture: two methods acquire the same pair in opposite order.

The classic ABBA shape, visible *statically*: ``forward`` orders
latch → mutex, ``backward`` orders mutex → latch.  The static
lock-order graph must contain an unblessed cycle over the two roles.
"""


class Widget:
    def forward(self):
        self.a_latch.acquire(1)
        try:
            self.b_mutex.acquire()
            try:
                self.work()
            finally:
                self.b_mutex.release()
        finally:
            self.a_latch.release()

    def backward(self):
        self.b_mutex.acquire()
        try:
            self.a_latch.acquire(1)
            try:
                self.work()
            finally:
                self.a_latch.release()
        finally:
            self.b_mutex.release()
