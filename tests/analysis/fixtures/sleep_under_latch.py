"""Violates ``io-under-latch``: an I/O-class call in a latched region."""

import time


def sleepy_critical_section(latch, mode):
    latch.acquire(mode)
    try:
        time.sleep(0.001)
    finally:
        latch.release()
