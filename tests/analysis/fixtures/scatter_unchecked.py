"""Broken fixture: a scatter whose ack map is discarded.

Which partitions actually applied the broadcast?  Nobody knows — a
partial failure becomes silent divergence.  Must trigger exactly
``scatter-result-unchecked``.
"""


class Coordinator:
    def __init__(self, cluster):
        self.cluster = cluster

    def broadcast(self, targets, ops):
        self.cluster._scatter(list(targets), dict(ops))
