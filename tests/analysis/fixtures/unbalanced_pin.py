"""Violates ``pin-balance``: a ``pin()`` with no paired unpin/unfix."""


def grab(pool, pid):
    pool.pin(pid)
    return pid
