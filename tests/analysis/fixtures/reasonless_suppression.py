"""Broken fixture: a suppression comment with no ``: reason``.

An unjustified suppression is unreviewable.  Must trigger exactly
``suppression-without-reason``.
"""


def helper(x):
    return x + 1  # lint: allow(io-under-latch)
