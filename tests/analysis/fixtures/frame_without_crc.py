"""Broken fixture: a wire frame packed and sent with no checksum.

A torn frame must fail a CRC, not parse as a garbage command.  Must
trigger exactly ``frame-without-crc``.
"""

import struct

_HEADER = struct.Struct("!I")


def send_frame(sock, payload):
    header = _HEADER.pack(len(payload))
    sock.sendall(header + payload)
