"""Deliberately broken snippets for the protocol-linter tests.

Each module violates exactly one lint rule (the module name is the rule
it triggers), except :mod:`abba_order`, which is lint-clean and exists
to drive the *runtime* lockdep witness into a lock-order cycle from
racing test threads.
"""
