"""Violates ``lock-wait-under-latch``: blocking lock wait under a latch."""


def wait_while_latched(latch, mode, locks, owner, name, lock_mode):
    latch.acquire(mode)
    try:
        return locks.acquire(owner, name, lock_mode)
    finally:
        latch.release()
