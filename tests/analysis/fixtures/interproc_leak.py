"""Broken fixture: an interprocedural latch leak.

``_descend`` transfers a held frame to its caller (that part is fine —
its summary says ``returns_held``); ``lookup`` then drops the frame on
the floor.  Only the interprocedural type-state pass can see this —
lexically, ``_descend`` looks like the leak and ``lookup`` looks
innocent.  Must trigger exactly ``latch-release``, in ``lookup``.
"""


class Tree:
    def __init__(self, pool):
        self.pool = pool

    def _descend(self, pid):
        frame = self.pool.fix(pid)
        return frame

    def lookup(self, pid):
        frame = self._descend(pid)
        value = frame.page.value
        return value
