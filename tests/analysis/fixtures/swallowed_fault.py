"""Violates ``swallowed-fault``: a trivial handler eats storage faults."""


def read_quietly(store, pid):
    try:
        return store.read(pid)
    except Exception:
        return None
