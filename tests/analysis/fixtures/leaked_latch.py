"""Violates ``latch-release``: an acquire with no structural release.

If ``work()`` raises — or simply returns — the latch stays held.
"""


def leak(latch, mode, work):
    latch.acquire(mode)
    return work()
