"""Lint-clean helper that acquires two latches in a caller-chosen order.

``test_lockdep`` drives this from racing threads (all in S mode, which
is self-compatible, so nothing ever blocks) to seed an acquisition-order
cycle that the runtime witness must report as a potential deadlock.
The optional ``between`` callback runs while the first latch is held —
tests park a barrier there to guarantee every thread records its first
acquisition before any records its second.
"""


def acquire_pair(first_latch, second_latch, mode, between=None):
    first_latch.acquire(mode)
    try:
        if between is not None:
            between()
        second_latch.acquire(mode)
        try:
            pass
        finally:
            second_latch.release()
    finally:
        first_latch.release()
