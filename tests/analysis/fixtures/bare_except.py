"""Violates ``bare-except``: a bare ``except:`` clause."""


def swallow_everything(op):
    try:
        return op()
    except:  # noqa: E722
        return None
