"""Mutation-based evidence that the interprocedural type-state pass is
load-bearing: the shipped baselines verify clean with ZERO
suppressions, and re-introducing the classic latch-protocol bugs —
dropping a release that only a summary can connect to its acquire —
is caught."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.typestate import check_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
SIMPLETREE = SRC / "baselines" / "simpletree.py"


def _mutate(tmp_path: Path, old: str, new: str) -> Path:
    source = SIMPLETREE.read_text()
    assert source.count(old) == 1, f"mutation anchor drifted: {old!r}"
    path = tmp_path / "simpletree.py"
    path.write_text(source.replace(old, new))
    return path


def test_shipped_baselines_verify_without_suppressions(tmp_path: Path) -> None:
    # the whole point of the interprocedural pass: crabbing helpers
    # that transfer held frames verify with no `# lint: allow` at all
    assert "lint: allow(latch-release)" not in SIMPLETREE.read_text()
    findings, _engine = check_paths([SIMPLETREE])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_dropped_final_unfix_is_caught(tmp_path: Path) -> None:
    # LinkTree._try_insert: the leaf handed back by _follow_chain is
    # unfixed after the entry lands; deleting that release leaks a
    # frame only the summary chain can trace to its acquire
    path = _mutate(
        tmp_path,
        "        page.add_entry(LeafEntry(key, rid))\n"
        "        frame.dirty = True\n"
        "        self.pool.unfix(frame)\n",
        "        page.add_entry(LeafEntry(key, rid))\n"
        "        frame.dirty = True\n",
    )
    findings, _engine = check_paths([path])
    assert any(f.rule == "latch-release" for f in findings), [
        str(f) for f in findings
    ]


def test_dropped_descent_unfix_is_caught(tmp_path: Path) -> None:
    # LinkTree._try_insert's descent: the current frame must be
    # unfixed before re-fixing the chosen child; deleting it means the
    # next loop iteration rebinds away the last reference to a held
    # frame (the lost-on-rebind check)
    path = _mutate(
        tmp_path,
        "            memo = self._nsn_current()\n"
        "            pid = best.child\n"
        "            self.pool.unfix(frame)\n",
        "            memo = self._nsn_current()\n"
        "            pid = best.child\n",
    )
    findings, _engine = check_paths([path])
    assert any(f.rule == "latch-release" for f in findings), [
        str(f) for f in findings
    ]


def test_guarded_release_idiom_verifies(tmp_path: Path) -> None:
    # `if frame.latch.held_by_me() is not None: pool.unfix(frame)` in
    # a finally discharges the obligation on both branches
    path = tmp_path / "m.py"
    path.write_text(
        "class T:\n"
        "    def locate(self, pid):\n"
        "        frame = self.pool.fix(pid)\n"
        "        return frame\n"
        "    def insert(self, pid):\n"
        "        frame = self.locate(pid)\n"
        "        try:\n"
        "            self.apply(frame)\n"
        "        finally:\n"
        "            if frame.latch.held_by_me() is not None:\n"
        "                self.pool.unfix(frame)\n"
        "        return True\n"
    )
    findings, _engine = check_paths([path])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_loop_reacquire_without_release_is_caught(tmp_path: Path) -> None:
    path = tmp_path / "m.py"
    path.write_text(
        "class T:\n"
        "    def walk(self, pids):\n"
        "        for pid in pids:\n"
        "            frame = self.pool.fix(pid)\n"
        "        return None\n"
    )
    findings, _engine = check_paths([path])
    assert any(f.rule == "latch-release" for f in findings), [
        str(f) for f in findings
    ]


def test_release_thread_fixes_sweep_discharges(tmp_path: Path) -> None:
    path = tmp_path / "m.py"
    path.write_text(
        "class T:\n"
        "    def walk(self, pids):\n"
        "        for pid in pids:\n"
        "            frame = self.pool.fix(pid)\n"
        "        self.pool.release_thread_fixes()\n"
        "        return None\n"
    )
    findings, _engine = check_paths([path])
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.parametrize(
    "body",
    [
        # structural: with-statement scope
        "        with self.pool.fixed(pid) as frame:\n"
        "            return frame.page.value\n",
        # structural: try/finally
        "        frame = self.pool.fix(pid)\n"
        "        try:\n"
        "            return frame.page.value\n"
        "        finally:\n"
        "            self.pool.unfix(frame)\n",
    ],
)
def test_structural_shapes_verify(tmp_path: Path, body: str) -> None:
    path = tmp_path / "m.py"
    path.write_text("class T:\n    def read(self, pid):\n" + body)
    findings, _engine = check_paths([path])
    assert findings == [], "\n".join(str(f) for f in findings)
