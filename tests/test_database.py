"""Database assembly: catalog errors, wiring, shutdown."""

import pytest

from repro.database import Database
from repro.errors import ReproError, WALError
from repro.ext.btree import BTreeExtension, Interval
from repro.wal.records import CommitRecord


class TestCatalog:
    def test_duplicate_tree_name_raises(self):
        db = Database()
        db.create_tree("t", BTreeExtension())
        with pytest.raises(ReproError):
            db.create_tree("t", BTreeExtension())

    def test_unknown_tree_raises(self):
        db = Database()
        with pytest.raises(ReproError):
            db.tree("missing")

    def test_tree_lookup(self):
        db = Database()
        tree = db.create_tree("t", BTreeExtension())
        assert db.tree("t") is tree

    def test_create_tree_is_durable_immediately(self):
        db = Database()
        db.create_tree("t", BTreeExtension())
        db.crash()  # immediately, before any transaction
        db2 = db.restart({"t": BTreeExtension()})
        assert "t" in db2.trees


class TestUndoExecutorWiring:
    def test_unknown_record_type_raises(self):
        db = Database()

        class WeirdRecord(CommitRecord):
            pass

        record = WeirdRecord(xid=1)
        record.undoable = True
        with pytest.raises(WALError):
            db._undo_record(record, 1)

    def test_release_transaction_spans_trees(self):
        db = Database()
        a = db.create_tree("a", BTreeExtension())
        b = db.create_tree("b", BTreeExtension())
        txn = db.begin()
        a.search(txn, Interval(0, 10))
        b.search(txn, Interval(0, 10))
        assert a.predicates.predicates_of(txn.xid)
        assert b.predicates.predicates_of(txn.xid)
        db.commit(txn)
        assert not a.predicates.predicates_of(txn.xid)
        assert not b.predicates.predicates_of(txn.xid)


class TestShutdown:
    def test_shutdown_flushes_everything(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.shutdown()
        assert db.pool.dirty_page_table() == {}
        assert db.log.flushed_lsn == db.log.end_lsn
        assert db.log.master_lsn > 0

    def test_reopen_after_clean_shutdown_redoes_little(self):
        from repro.wal.recovery import RestartRecovery

        db = Database(page_capacity=8)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.shutdown()
        db.crash()
        db2 = Database(store=db.store, log=db.log, page_capacity=8)
        report = RestartRecovery(db2, {"t": BTreeExtension()}).run()
        # everything was already on disk: redo applied (almost) nothing
        assert report.redone_records <= 2
        txn = db2.begin()
        assert len(db2.tree("t").search(txn, Interval(0, 29))) == 30
        db2.commit(txn)
