"""Additional page-model coverage: iteration, capacity, kinds."""

from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageKind,
)


class TestLeafEntry:
    def test_as_tuple(self):
        assert LeafEntry(1, "r").as_tuple() == (1, "r")

    def test_copy_preserves_tombstone(self):
        entry = LeafEntry(1, "r", deleted=True, delete_xid=7)
        clone = entry.copy()
        assert clone.deleted and clone.delete_xid == 7
        clone.deleted = False
        assert entry.deleted  # independent

    def test_internal_entry_copy_deep(self):
        entry = InternalEntry([1, 2], 9)
        clone = entry.copy()
        clone.pred.append(3)
        assert entry.pred == [1, 2]


class TestPageKinds:
    def test_free_page_is_neither_leaf_nor_internal(self):
        page = Page(pid=1, kind=PageKind.FREE)
        assert not page.is_leaf and not page.is_internal

    def test_repr_is_informative(self):
        page = Page(pid=3, kind=PageKind.LEAF, capacity=8)
        text = repr(page)
        assert "pid=3" in text and "leaf" in text

    def test_no_page_sentinel(self):
        assert NO_PAGE == -1
        page = Page(pid=1, kind=PageKind.LEAF)
        assert page.rightlink == NO_PAGE


class TestCapacityEdges:
    def test_capacity_one_page(self):
        page = Page(pid=1, kind=PageKind.LEAF, capacity=1)
        page.add_entry(LeafEntry(1, "r"))
        assert page.is_full and page.free_slots == 0

    def test_remove_leaf_entries_empty_set(self):
        page = Page(pid=1, kind=PageKind.LEAF)
        page.add_entry(LeafEntry(1, "r"))
        assert page.remove_leaf_entries(set()) == []
        assert len(page.entries) == 1

    def test_live_entries_on_all_deleted(self):
        page = Page(pid=1, kind=PageKind.LEAF)
        page.add_entry(LeafEntry(1, "r", deleted=True, delete_xid=1))
        assert list(page.live_entries()) == []
