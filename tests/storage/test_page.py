"""Unit tests for the page model."""

import pytest

from repro.errors import PageOverflowError
from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageKind,
)


def make_leaf(capacity: int = 4) -> Page:
    return Page(pid=1, kind=PageKind.LEAF, capacity=capacity)


class TestPageBasics:
    def test_new_leaf_is_empty(self):
        page = make_leaf()
        assert len(page) == 0
        assert page.is_leaf and not page.is_internal
        assert not page.is_full
        assert page.rightlink == NO_PAGE

    def test_add_entry_and_len(self):
        page = make_leaf()
        page.add_entry(LeafEntry(1, "r1"))
        page.add_entry(LeafEntry(2, "r2"))
        assert len(page) == 2
        assert page.free_slots == 2

    def test_overflow_raises(self):
        page = make_leaf(capacity=2)
        page.add_entry(LeafEntry(1, "r1"))
        page.add_entry(LeafEntry(2, "r2"))
        assert page.is_full
        with pytest.raises(PageOverflowError):
            page.add_entry(LeafEntry(3, "r3"))

    def test_find_leaf_entry_matches_key_and_rid(self):
        page = make_leaf()
        page.add_entry(LeafEntry(1, "r1"))
        page.add_entry(LeafEntry(1, "r2"))
        entry = page.find_leaf_entry(1, "r2")
        assert entry is not None and entry.rid == "r2"
        assert page.find_leaf_entry(1, "r3") is None
        assert page.find_leaf_entry(2, "r1") is None

    def test_live_entries_skips_deleted(self):
        page = make_leaf()
        page.add_entry(LeafEntry(1, "r1"))
        page.add_entry(LeafEntry(2, "r2", deleted=True, delete_xid=9))
        assert [e.rid for e in page.live_entries()] == ["r1"]

    def test_remove_leaf_entries_by_rid(self):
        page = make_leaf()
        for i in range(4):
            page.add_entry(LeafEntry(i, f"r{i}"))
        removed = page.remove_leaf_entries({"r1", "r3"})
        assert sorted(e.rid for e in removed) == ["r1", "r3"]
        assert sorted(e.rid for e in page.entries) == ["r0", "r2"]


class TestInternalEntries:
    def test_find_and_remove_child_entry(self):
        page = Page(pid=2, kind=PageKind.INTERNAL, level=1)
        page.add_entry(InternalEntry("p1", 10))
        page.add_entry(InternalEntry("p2", 11))
        assert page.find_child_entry(11).pred == "p2"
        removed = page.remove_child_entry(10)
        assert removed.child == 10
        assert page.find_child_entry(10) is None
        assert page.remove_child_entry(99) is None


class TestSnapshot:
    def test_snapshot_is_deep(self):
        page = make_leaf()
        page.add_entry(LeafEntry([1, 2], "r1"))
        page.bp = [0, 5]
        clone = page.snapshot()
        clone.entries[0].key.append(3)
        clone.bp.append(9)
        clone.nsn = 99
        assert page.entries[0].key == [1, 2]
        assert page.bp == [0, 5]
        assert page.nsn == 0

    def test_snapshot_preserves_metadata(self):
        page = make_leaf()
        page.nsn = 7
        page.rightlink = 42
        page.page_lsn = 13
        clone = page.snapshot()
        assert (clone.nsn, clone.rightlink, clone.page_lsn) == (7, 42, 13)
        assert clone.pid == page.pid and clone.capacity == page.capacity
