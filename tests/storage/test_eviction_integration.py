"""The tree under buffer pressure: eviction + WAL + recovery together."""

import threading

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree


def tiny_pool_db(pool_capacity=24):
    # A pool far smaller than the tree, so every operation churns
    # frames.  Floor: a recursive split cascade latches ~2 frames per
    # level plus the descent path, so the pool must hold a few dozen
    # frames — the same sizing rule real SMO implementations live by.
    return Database(
        page_capacity=4, pool_capacity=pool_capacity, lock_timeout=15.0
    )


class TestTreeUnderBufferPressure:
    def test_build_and_search_with_constant_eviction(self):
        db = tiny_pool_db()
        tree = db.create_tree("ev", BTreeExtension())
        txn = db.begin()
        for i in range(300):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        assert db.pool.evictions > 0  # the pool really was too small
        txn = db.begin()
        assert len(tree.search(txn, Interval(0, 299))) == 300
        db.commit(txn)
        assert check_tree(tree).ok

    def test_eviction_respects_wal_rule(self):
        """Every page that reached disk must have its log prefix
        durable: page_lsn <= flushed_lsn at all times."""
        db = tiny_pool_db()
        tree = db.create_tree("ev", BTreeExtension())
        txn = db.begin()
        for i in range(200):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        for pid, page in db.store.disk_image().items():
            assert page.page_lsn <= db.log.flushed_lsn, (
                f"page {pid} on disk at lsn {page.page_lsn} but log "
                f"only flushed to {db.log.flushed_lsn}"
            )

    def test_crash_after_eviction_heavy_run_recovers(self):
        db = tiny_pool_db()
        tree = db.create_tree("ev", BTreeExtension())
        txn = db.begin()
        for i in range(250):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        loser = db.begin()
        for i in range(250, 270):
            tree.insert(loser, i, f"l{i}")
        db.log.flush()
        db.crash()
        db2 = db.restart(
            {"ev": BTreeExtension()}, pool_capacity=24
        )
        tree2 = db2.tree("ev")
        txn = db2.begin()
        found = {r for _, r in tree2.search(txn, Interval(0, 400))}
        db2.commit(txn)
        assert found == {f"r{i}" for i in range(250)}
        assert check_tree(tree2).ok

    def test_concurrent_workers_with_tiny_pool(self):
        db = tiny_pool_db(pool_capacity=32)
        tree = db.create_tree("ev", BTreeExtension())
        errors = []

        def worker(wid):
            try:
                for i in range(60):
                    txn = db.begin()
                    try:
                        tree.insert(txn, wid * 1000 + i, f"{wid}-{i}")
                        db.commit(txn)
                    except TransactionAbort:
                        db.rollback(txn)
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert errors == []
        assert check_tree(tree).ok

    def test_vacuum_under_buffer_pressure(self):
        from repro.gist.maintenance import vacuum

        db = tiny_pool_db()
        tree = db.create_tree("ev", BTreeExtension())
        txn = db.begin()
        for i in range(150):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(150):
            tree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(tree, txn)
        db.commit(txn)
        assert report.nodes_deleted > 0
        assert check_tree(tree).ok
