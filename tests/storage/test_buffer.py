"""Unit tests for the buffer pool: pinning, eviction, WAL rule, crash."""

import threading

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import PageStore
from repro.storage.page import LeafEntry, PageKind
from repro.sync.latch import LatchMode


def make_pool(capacity=4, io_delay=0.0, wal_flush=None):
    store = PageStore(io_delay=io_delay)
    return store, BufferPool(store, capacity=capacity, wal_flush=wal_flush)


class TestPinning:
    def test_new_frame_is_pinned_once(self):
        _, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        assert frame.pin_count == 1
        pool.unpin(frame.page.pid)
        assert frame.pin_count == 0

    def test_unpin_unpinned_raises(self):
        _, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        pool.unpin(frame.page.pid)
        with pytest.raises(BufferPoolError):
            pool.unpin(frame.page.pid)

    def test_pin_miss_reads_from_disk(self):
        store, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        pid = frame.page.pid
        frame.page.add_entry(LeafEntry(1, "r1"))
        frame.mark_dirty(5)
        pool.unpin(pid)
        pool.flush_page(pid)
        pool.drop(pid)
        assert not pool.resident(pid)
        frame2 = pool.pin(pid)
        assert frame2.page.entries[0].rid == "r1"
        assert pool.misses == 1

    def test_pin_hit_counts(self):
        _, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        pool.pin(frame.page.pid)
        assert pool.hits == 1
        assert frame.pin_count == 2


class TestEviction:
    def test_evicts_unpinned_lru(self):
        store, pool = make_pool(capacity=2)
        f1 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f1.page.pid)
        f2 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f2.page.pid)
        pool.new_frame(PageKind.LEAF)  # must evict f1 (oldest unpinned)
        assert not pool.resident(f1.page.pid)
        assert pool.resident(f2.page.pid)
        assert pool.evictions == 1

    def test_dirty_eviction_writes_back(self):
        store, pool = make_pool(capacity=1)
        f1 = pool.new_frame(PageKind.LEAF)
        f1.page.add_entry(LeafEntry(1, "r1"))
        f1.mark_dirty(3)
        pool.unpin(f1.page.pid)
        pool.new_frame(PageKind.LEAF)  # evicts + flushes f1
        assert store.exists(f1.page.pid)
        assert store.read(f1.page.pid).entries[0].rid == "r1"

    def test_all_pinned_raises(self):
        _, pool = make_pool(capacity=1)
        pool.new_frame(PageKind.LEAF)  # stays pinned
        with pytest.raises(BufferPoolError):
            pool.new_frame(PageKind.LEAF)

    def test_latched_frames_not_evicted(self):
        _, pool = make_pool(capacity=2)
        f1 = pool.new_frame(PageKind.LEAF)
        f1.latch.acquire(LatchMode.S)
        pool.unpin(f1.page.pid)  # unpinned but latched
        f2 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f2.page.pid)
        pool.new_frame(PageKind.LEAF)  # must pick f2, not latched f1
        assert pool.resident(f1.page.pid)
        assert not pool.resident(f2.page.pid)
        f1.latch.release()


class TestWALRule:
    def test_flush_forces_log_first(self):
        flushed = []
        store = PageStore()
        pool = BufferPool(store, capacity=4, wal_flush=flushed.append)
        frame = pool.new_frame(PageKind.LEAF)
        frame.mark_dirty(17)
        pool.flush_page(frame.page.pid)
        assert flushed == [17]
        assert store.read(frame.page.pid).page_lsn == 17

    def test_eviction_respects_wal(self):
        flushed = []
        store = PageStore()
        pool = BufferPool(store, capacity=1, wal_flush=flushed.append)
        f1 = pool.new_frame(PageKind.LEAF)
        f1.mark_dirty(9)
        pool.unpin(f1.page.pid)
        pool.new_frame(PageKind.LEAF)
        assert flushed == [9]

    def test_rec_lsn_is_first_dirtier(self):
        _, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        frame.mark_dirty(5)
        frame.mark_dirty(9)
        assert frame.rec_lsn == 5
        assert frame.page.page_lsn == 9
        assert pool.dirty_page_table() == {frame.page.pid: 5}


class TestFixUnfix:
    def test_fixed_context_manager(self):
        _, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        pid = frame.page.pid
        pool.unpin(pid)
        with pool.fixed(pid, LatchMode.X) as fixed:
            assert fixed.latch.held_by_me() == LatchMode.X
            assert fixed.pin_count == 1
        assert frame.latch.held_by_me() is None
        assert frame.pin_count == 0


class TestCrash:
    def test_crash_loses_unflushed_state(self):
        store, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        frame.page.add_entry(LeafEntry(1, "r1"))
        frame.mark_dirty(2)
        pid = frame.page.pid
        pool.crash()
        assert not pool.resident(pid)
        assert not store.exists(pid)  # never flushed: gone

    def test_crash_keeps_flushed_state(self):
        store, pool = make_pool()
        frame = pool.new_frame(PageKind.LEAF)
        frame.page.add_entry(LeafEntry(1, "r1"))
        frame.mark_dirty(2)
        pid = frame.page.pid
        pool.flush_page(pid)
        frame2 = pool.pin(pid)  # still resident
        frame2.page.add_entry(LeafEntry(2, "r2"))
        frame2.mark_dirty(3)
        pool.crash()
        assert store.read(pid).page_lsn == 2
        assert len(store.read(pid).entries) == 1


class TestConcurrentPin:
    def test_counters_updated_under_pool_lock(self):
        """The hit/miss counters are plain ints whose mutation happens
        while the pool mutex is held (the invariant buffer.py's comment
        points at this test for).  Exactness under a pin race is the
        observable consequence: if any increment ran outside the mutex,
        this count would eventually come up short."""
        store, pool = make_pool(capacity=16)
        pids = []
        for n in range(8):
            frame = pool.new_frame(PageKind.LEAF)
            frame.mark_dirty(n + 1)  # so flush_page really writes
            pids.append(frame.page.pid)
            pool.unpin(frame.page.pid)
        # drop half so the race mixes hits and misses
        for pid in pids[4:]:
            pool.flush_page(pid)
            pool.drop(pid)
        base_hits, base_misses = pool.hits, pool.misses
        per_thread = 200
        barrier = threading.Barrier(8)

        def pinner(seed):
            barrier.wait()
            for i in range(per_thread):
                pid = pids[(seed + i) % len(pids)]
                pool.pin(pid)
                pool.unpin(pid)

        threads = [
            threading.Thread(target=pinner, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = 8 * per_thread
        hits = pool.hits - base_hits
        misses = pool.misses - base_misses
        assert hits + misses == total  # nothing lost to the race
        assert hits > 0 and misses > 0

    def test_concurrent_miss_coalesces(self):
        store, pool = make_pool(capacity=8, io_delay=0.01)
        frame = pool.new_frame(PageKind.LEAF)
        pid = frame.page.pid
        frame.mark_dirty(1)
        pool.unpin(pid)
        pool.flush_page(pid)
        pool.drop(pid)
        results = []

        def pinner():
            f = pool.pin(pid)
            results.append(f)
            pool.unpin(pid)

        threads = [threading.Thread(target=pinner) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(f) for f in results}) == 1  # one shared frame
        assert store.stats.snapshot()["reads"] == 1
