"""Sharded buffer pool: lock locality, counter exactness, global budget."""

import threading

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import PageStore
from repro.storage.page import LeafEntry, PageKind
from repro.sync.latch import LatchMode


def make_pool(capacity=16, shards=4, io_delay=0.0, wal_flush=None):
    store = PageStore(io_delay=io_delay)
    pool = BufferPool(
        store, capacity=capacity, wal_flush=wal_flush, shards=shards
    )
    return store, pool


class TestShardLayout:
    def test_shard_count_validated(self):
        store = PageStore()
        with pytest.raises(BufferPoolError):
            BufferPool(store, shards=0)

    def test_pages_distribute_across_shards(self):
        _, pool = make_pool(shards=4)
        frames = [pool.new_frame(PageKind.LEAF) for _ in range(8)]
        homes = {pool.shard_of(f.page.pid) for f in frames}
        assert homes == {0, 1, 2, 3}

    def test_aggregate_equals_per_shard_sum(self):
        _, pool = make_pool(shards=4)
        frames = [pool.new_frame(PageKind.LEAF) for _ in range(8)]
        for frame in frames:
            pool.pin(frame.page.pid)
        per_shard = pool.shard_metrics()
        assert pool.hits == sum(s["hits"] for s in per_shard) == 8
        assert pool.misses == sum(s["misses"] for s in per_shard)
        assert pool.evictions == sum(s["evictions"] for s in per_shard)
        assert sum(s["resident"] for s in per_shard) == 8

    def test_shard_gauges_in_snapshot(self):
        store = PageStore()
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        pool = BufferPool(store, capacity=8, metrics=registry, shards=2)
        frame = pool.new_frame(PageKind.LEAF)
        pool.pin(frame.page.pid)
        snap = registry.snapshot()
        shard = snap["buffer"]["shard"]
        assert shard["count"] == 2
        total_hits = sum(
            shard[str(i)]["hits"] for i in range(2)
        )
        assert total_hits == snap["buffer"]["hits"] == 1


class TestLockLocality:
    def test_resident_pin_touches_only_its_own_shard(self):
        """The tentpole property: a hit acquires exactly one mutex — the
        page's own shard's.  Asserted by counter, not wall clock."""
        _, pool = make_pool(shards=4)
        frames = [pool.new_frame(PageKind.LEAF) for _ in range(4)]
        target = frames[0].page.pid
        home = pool.shard_of(target)
        before = pool.shard_metrics()
        rounds = 50
        for _ in range(rounds):
            pool.pin(target)
            pool.unpin(target)
        after = pool.shard_metrics()
        for idx in range(4):
            delta = (
                after[idx]["lock_acquisitions"]
                - before[idx]["lock_acquisitions"]
            )
            if idx == home:
                # one acquisition per pin + one per unpin, plus the two
                # shard_metrics() snapshots themselves
                assert delta == 2 * rounds + 1
            else:
                # only the shard_metrics() snapshot touched this shard
                assert delta == 1

    def test_concurrent_pins_of_distinct_pages_stay_exact(self):
        """Counters are mutated only under their shard lock: a pin race
        across every shard must not lose a single increment, and the
        aggregate must equal the per-shard sum."""
        _, pool = make_pool(capacity=32, shards=4)
        pids = []
        for n in range(8):
            frame = pool.new_frame(PageKind.LEAF)
            frame.mark_dirty(n + 1)
            pids.append(frame.page.pid)
            pool.unpin(frame.page.pid)
        for pid in pids[4:]:
            pool.flush_page(pid)
            pool.drop(pid)
        base_hits, base_misses = pool.hits, pool.misses
        per_thread = 200
        barrier = threading.Barrier(8)

        def pinner(seed):
            barrier.wait()
            for i in range(per_thread):
                pid = pids[(seed + i) % len(pids)]
                pool.pin(pid)
                pool.unpin(pid)

        threads = [
            threading.Thread(target=pinner, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hits = pool.hits - base_hits
        misses = pool.misses - base_misses
        assert hits + misses == 8 * per_thread
        per_shard = pool.shard_metrics()
        assert pool.hits == sum(s["hits"] for s in per_shard)
        assert pool.misses == sum(s["misses"] for s in per_shard)


class TestGlobalCapacity:
    def test_capacity_is_pool_wide_not_per_shard(self):
        """8 frames in a capacity-4 pool must evict regardless of how
        the pids hash across shards."""
        _, pool = make_pool(capacity=4, shards=4)
        for _ in range(8):
            frame = pool.new_frame(PageKind.LEAF)
            pool.unpin(frame.page.pid)
        per_shard = pool.shard_metrics()
        assert sum(s["resident"] for s in per_shard) == 4
        assert pool.evictions == 4

    def test_eviction_crosses_shards_when_home_is_pinned(self):
        """A shard whose frames are all pinned borrows a victim from a
        neighbour instead of failing."""
        _, pool = make_pool(capacity=2, shards=2)
        f0 = pool.new_frame(PageKind.LEAF)  # stays pinned
        f1 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f1.page.pid)
        # The next allocation must evict f1, whichever shard it lands in.
        f2 = pool.new_frame(PageKind.LEAF)
        assert not pool.resident(f1.page.pid)
        assert pool.resident(f0.page.pid)
        assert pool.resident(f2.page.pid)

    def test_all_pinned_raises_across_shards(self):
        _, pool = make_pool(capacity=2, shards=2)
        pool.new_frame(PageKind.LEAF)
        pool.new_frame(PageKind.LEAF)
        with pytest.raises(BufferPoolError):
            pool.new_frame(PageKind.LEAF)

    def test_drop_releases_capacity(self):
        _, pool = make_pool(capacity=2, shards=2)
        f0 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f0.page.pid)
        pool.drop(f0.page.pid)
        f1 = pool.new_frame(PageKind.LEAF)
        f2 = pool.new_frame(PageKind.LEAF)  # fits: slot was released
        assert pool.resident(f1.page.pid) and pool.resident(f2.page.pid)
        assert pool.evictions == 0


class TestShardedWALRule:
    def test_sharded_eviction_respects_wal(self):
        flushed = []
        store = PageStore()
        pool = BufferPool(
            store, capacity=1, wal_flush=flushed.append, shards=4
        )
        f1 = pool.new_frame(PageKind.LEAF)
        f1.page.add_entry(LeafEntry(1, "r1"))
        f1.mark_dirty(9)
        pool.unpin(f1.page.pid)
        pool.new_frame(PageKind.LEAF)
        assert flushed == [9]
        assert store.read(f1.page.pid).entries[0].rid == "r1"

    def test_sharded_crash_clears_everything(self):
        _, pool = make_pool(capacity=8, shards=4)
        pids = [pool.new_frame(PageKind.LEAF).page.pid for _ in range(6)]
        pool.crash()
        for pid in pids:
            assert not pool.resident(pid)
        # capacity budget was reset too: a full refill works
        for _ in range(8):
            pool.new_frame(PageKind.LEAF)


class TestClockEviction:
    def test_second_chance_prefers_cold_frames(self):
        """A frame re-pinned during the sweep window gets a second
        chance; an untouched one is evicted first."""
        _, pool = make_pool(capacity=3, shards=1)
        f1 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f1.page.pid)
        f2 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f2.page.pid)
        f3 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f3.page.pid)
        # First overflow: the sweep clears every ref bit and evicts the
        # frame at the hand — f1.  Survivors f2 and f3 are now cold.
        pool.new_frame(PageKind.LEAF)
        assert not pool.resident(f1.page.pid)
        # Touch f2 so only its bit is set again; the hand sits on it.
        pool.pin(f2.page.pid)
        pool.unpin(f2.page.pid)
        # Second overflow: f2 spends its reference bit (second chance)
        # and the cold f3 right behind it is evicted instead.
        pool.new_frame(PageKind.LEAF)
        assert pool.resident(f2.page.pid)
        assert not pool.resident(f3.page.pid)
        assert pool.evictions == 2

    def test_latched_frames_skipped_by_clock(self):
        _, pool = make_pool(capacity=2, shards=1)
        f1 = pool.new_frame(PageKind.LEAF)
        f1.latch.acquire(LatchMode.S)
        pool.unpin(f1.page.pid)
        f2 = pool.new_frame(PageKind.LEAF)
        pool.unpin(f2.page.pid)
        pool.new_frame(PageKind.LEAF)
        assert pool.resident(f1.page.pid)
        assert not pool.resident(f2.page.pid)
        f1.latch.release()

    def test_ring_survives_many_drop_reload_cycles(self):
        """Stale ring slots are reaped lazily and the ring is compacted;
        heavy drop/reload churn must not grow it without bound."""
        store, pool = make_pool(capacity=8, shards=1)
        frame = pool.new_frame(PageKind.LEAF)
        pid = frame.page.pid
        frame.mark_dirty(1)
        pool.unpin(pid)
        pool.flush_page(pid)
        for _ in range(100):
            pool.drop(pid)
            pool.pin(pid)
            pool.unpin(pid)
        shard = pool._shards[pool.shard_of(pid)]
        assert len(shard.ring) <= 2 * len(shard.frames) + 8
        # and eviction still works afterwards
        for _ in range(10):
            f = pool.new_frame(PageKind.LEAF)
            pool.unpin(f.page.pid)
        assert pool.evictions > 0
