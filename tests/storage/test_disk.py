"""Unit tests for the simulated disk (page store)."""

import time

import pytest

from repro.errors import PageNotFoundError
from repro.storage.disk import PageStore
from repro.storage.page import LeafEntry, PageKind


class TestAllocation:
    def test_allocate_monotonic_then_reuses_freed(self):
        store = PageStore()
        a = store.allocate()
        b = store.allocate()
        assert b == a + 1
        store.free(a)
        c = store.allocate()
        assert c == a  # freed pages are reused — the drain hazard

    def test_is_allocated(self):
        store = PageStore()
        pid = store.allocate()
        assert store.is_allocated(pid)
        store.free(pid)
        assert not store.is_allocated(pid)

    def test_mark_allocated_advances_counter(self):
        store = PageStore()
        store.mark_allocated(10)
        assert store.is_allocated(10)
        assert store.allocate() == 11

    def test_mark_free_then_reuse(self):
        store = PageStore()
        pid = store.allocate()
        store.mark_free(pid)
        assert not store.is_allocated(pid)
        assert pid in store.allocated_pids() or store.allocate() == pid


class TestReadWrite:
    def test_write_then_read_roundtrip(self):
        store = PageStore()
        page = store.new_page(PageKind.LEAF)
        page.add_entry(LeafEntry(1, "r1"))
        store.write(page)
        back = store.read(page.pid)
        assert back.pid == page.pid
        assert back.entries[0].rid == "r1"

    def test_read_returns_independent_snapshot(self):
        store = PageStore()
        page = store.new_page(PageKind.LEAF)
        page.add_entry(LeafEntry(1, "r1"))
        store.write(page)
        copy1 = store.read(page.pid)
        copy1.entries.clear()
        copy2 = store.read(page.pid)
        assert len(copy2.entries) == 1

    def test_write_snapshots_at_write_time(self):
        store = PageStore()
        page = store.new_page(PageKind.LEAF)
        store.write(page)
        page.add_entry(LeafEntry(1, "r1"))  # after the write
        assert len(store.read(page.pid).entries) == 0

    def test_read_missing_page_raises(self):
        store = PageStore()
        with pytest.raises(PageNotFoundError):
            store.read(12345)

    def test_exists(self):
        store = PageStore()
        page = store.new_page(PageKind.LEAF)
        assert not store.exists(page.pid)
        store.write(page)
        assert store.exists(page.pid)


class TestIOLatency:
    def test_io_delay_is_paid(self):
        store = PageStore(io_delay=0.02)
        page = store.new_page(PageKind.LEAF)
        start = time.perf_counter()
        store.write(page)
        store.read(page.pid)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.04

    def test_stats_count_traffic(self):
        store = PageStore()
        page = store.new_page(PageKind.LEAF)
        store.write(page)
        store.write(page)
        store.read(page.pid)
        snap = store.stats.snapshot()
        assert snap["writes"] == 2
        assert snap["reads"] == 1
        assert snap["allocations"] == 1
