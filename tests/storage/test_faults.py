"""Deterministic storage fault injection (DESIGN.md §9).

Unit tests of the fault plan and the storage layers' responses:
transient-read retry, permanent-write dirty-state preservation,
torn-write detection and self-healing, and checksum round-trips.
"""

import pytest

from repro.errors import DiskWriteError, TornPageError, TransientIOError
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.storage.buffer import BufferPool
from repro.storage.disk import PageStore
from repro.storage.page import (
    LeafEntry,
    Page,
    PageKind,
    page_checksum,
    page_fingerprint,
)


def make_page(store, n=3):
    page = store.new_page(PageKind.LEAF)
    for i in range(n):
        page.add_entry(LeafEntry(i, f"r{i}"))
    page.page_lsn = 7
    return page


class TestFaultPlanDeterminism:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42)
        b = FaultPlan.random(42)
        assert [s.describe() for s in a.specs] == [
            s.describe() for s in b.specs
        ]

    def test_different_seeds_differ(self):
        described = {
            tuple(s.describe() for s in FaultPlan.random(seed).specs)
            for seed in range(20)
        }
        assert len(described) > 1

    def test_kind_filter(self):
        plan = FaultPlan.random(1, kinds={FaultKind.TRANSIENT_READ})
        assert [s.kind for s in plan.specs] == [FaultKind.TRANSIENT_READ]

    def test_consultation_sequence_is_reproducible(self):
        def run():
            plan = FaultPlan(
                [FaultSpec(FaultKind.TRANSIENT_READ, op_index=2, times=2)]
            )
            return [plan.on_read(pid) for pid in (5, 5, 5, 5)]

        assert run() == run()
        assert run()[0] is None
        assert run()[1] is FaultKind.TRANSIENT_READ


class TestTransientReads:
    def test_store_raises_typed_error(self):
        plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_READ, op_index=1)])
        store = PageStore(fault_plan=plan)
        page = make_page(store)
        store.write(page)
        with pytest.raises(TransientIOError):
            store.read(page.pid)
        assert store.read(page.pid).pid == page.pid  # next attempt clean

    def test_pool_retries_through_transient_faults(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.TRANSIENT_READ, op_index=1, times=3)]
        )
        store = PageStore(fault_plan=plan)
        page = make_page(store)
        store.write(page)
        pool = BufferPool(store, io_retries=4, io_retry_backoff=0.0)
        frame = pool.pin(page.pid)
        assert frame.page.pid == page.pid
        assert pool.metrics.counter("storage.io_retries").value == 3

    def test_pool_surfaces_error_when_retries_exhausted(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.TRANSIENT_READ, op_index=1, times=10)]
        )
        store = PageStore(fault_plan=plan)
        page = make_page(store)
        store.write(page)
        pool = BufferPool(store, io_retries=2, io_retry_backoff=0.0)
        with pytest.raises(TransientIOError):
            pool.pin(page.pid)


class TestPermanentWrites:
    def test_write_raises_and_persists_nothing(self):
        plan = FaultPlan([FaultSpec(FaultKind.PERMANENT_WRITE, op_index=1)])
        store = PageStore(fault_plan=plan)
        page = make_page(store)
        with pytest.raises(DiskWriteError):
            store.write(page)
        assert not store.exists(page.pid)

    def test_poisoned_page_is_sticky_until_restart(self):
        plan = FaultPlan([FaultSpec(FaultKind.PERMANENT_WRITE, op_index=1)])
        store = PageStore(fault_plan=plan)
        page = make_page(store)
        for _ in range(3):
            with pytest.raises(DiskWriteError):
                store.write(page)
        plan.note_restart()  # "repaired hardware"
        store.write(page)
        assert store.exists(page.pid)

    def test_flush_page_restores_dirty_state(self):
        plan = FaultPlan([FaultSpec(FaultKind.PERMANENT_WRITE, op_index=1)])
        store = PageStore(fault_plan=plan)
        pool = BufferPool(store)
        frame = pool.new_frame(PageKind.LEAF)
        frame.mark_dirty(5)
        with pytest.raises(DiskWriteError):
            pool.flush_page(frame.page.pid)
        assert frame.dirty
        assert frame.rec_lsn == 5

    def test_flush_all_attempts_every_page_then_reraises(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.PERMANENT_WRITE, op_index=1, pid=0)]
        )
        store = PageStore(fault_plan=plan)
        pool = BufferPool(store)
        poisoned = pool.new_frame(PageKind.LEAF)  # pid 0
        healthy = pool.new_frame(PageKind.LEAF)  # pid 1
        poisoned.mark_dirty(1)
        healthy.mark_dirty(2)
        with pytest.raises(DiskWriteError):
            pool.flush_all()
        # the healthy page still made it to disk
        assert store.exists(healthy.page.pid)
        assert not store.exists(poisoned.page.pid)
        assert poisoned.dirty


class TestTornWrites:
    def plan_and_store(self):
        plan = FaultPlan([FaultSpec(FaultKind.TORN_WRITE, op_index=2)])
        store = PageStore(fault_plan=plan)
        return plan, store

    def test_torn_write_detected_on_read(self):
        plan, store = self.plan_and_store()
        page = make_page(store)
        store.write(page)  # write 1: clean
        page.add_entry(LeafEntry(99, "new"))
        store.write(page)  # write 2: torn
        with pytest.raises(TornPageError):
            store.read(page.pid)
        assert store.stats.checksum_failures == 1

    def test_pool_heals_torn_page_via_rebuilder(self):
        plan, store = self.plan_and_store()
        page = make_page(store)
        store.write(page)
        intended = page.snapshot()
        intended.add_entry(LeafEntry(99, "new"))
        store.write(intended)  # torn
        pool = BufferPool(store, io_retry_backoff=0.0)
        pool.page_rebuilder = lambda pid: intended.snapshot()
        frame = pool.pin(page.pid)
        assert frame.page.find_leaf_entry(99, "new") is not None
        assert pool.metrics.counter("storage.torn_pages_healed").value == 1
        # the healed image was re-persisted: a direct read is clean now
        assert store.read(page.pid).find_leaf_entry(99, "new") is not None

    def test_unhealable_torn_page_surfaces_typed_error(self):
        plan, store = self.plan_and_store()
        page = make_page(store)
        store.write(page)
        page.add_entry(LeafEntry(99, "new"))
        store.write(page)  # torn
        pool = BufferPool(store, io_retry_backoff=0.0)  # no rebuilder
        with pytest.raises(TornPageError):
            pool.pin(page.pid)


class TestChecksums:
    def test_roundtrip_clean(self):
        store = PageStore()
        page = make_page(store)
        store.write(page)
        got = store.read(page.pid)
        assert page_fingerprint(got) == page_fingerprint(page)

    def test_fingerprint_covers_entries_and_header(self):
        store = PageStore()
        a = make_page(store)
        b = a.snapshot()
        assert page_checksum(a) == page_checksum(b)
        b.entries[0].deleted = True
        assert page_checksum(a) != page_checksum(b)
        c = a.snapshot()
        c.nsn += 1
        assert page_checksum(a) != page_checksum(c)

    def test_checksums_can_be_disabled(self):
        plan = FaultPlan([FaultSpec(FaultKind.TORN_WRITE, op_index=2)])
        store = PageStore(fault_plan=plan, checksums=False)
        page = make_page(store)
        store.write(page)
        page.add_entry(LeafEntry(99, "new"))
        store.write(page)
        store.read(page.pid)  # torn but unverified: no error


class TestMaxDurableLsn:
    def test_tracks_highest_persisted_page_lsn(self):
        store = PageStore()
        assert store.max_durable_lsn() == 0
        a = make_page(store)
        a.page_lsn = 11
        b = make_page(store)
        b.page_lsn = 30
        store.write(a)
        store.write(b)
        assert store.max_durable_lsn() == 30
