"""Unique-index insertion (section 8)."""

import threading

import pytest

from repro.database import Database
from repro.errors import TransactionAbort, UniqueViolationError
from repro.ext.btree import BTreeExtension, Interval
from repro.lock.modes import LockMode


@pytest.fixture
def unique_tree(db):
    return db.create_tree("uq", BTreeExtension(), unique=True)


class TestUniqueBasics:
    def test_insert_then_duplicate_raises(self, db, unique_tree):
        txn = db.begin()
        unique_tree.insert(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        with pytest.raises(UniqueViolationError):
            unique_tree.insert(txn, 5, "other")
        db.rollback(txn)

    def test_distinct_keys_fine(self, db, unique_tree):
        txn = db.begin()
        for i in range(50):
            unique_tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        assert len(unique_tree.search(txn, Interval(0, 49))) == 50
        db.commit(txn)

    def test_duplicate_within_own_txn_raises(self, db, unique_tree):
        txn = db.begin()
        unique_tree.insert(txn, 5, "r5")
        with pytest.raises(UniqueViolationError):
            unique_tree.insert(txn, 5, "again")
        db.rollback(txn)

    def test_error_is_repeatable(self, db, unique_tree):
        """Section 8: the duplicate's record is S-locked, so the error
        reproduces on retry inside the same transaction."""
        setup = db.begin()
        unique_tree.insert(setup, 5, "r5")
        db.commit(setup)
        txn = db.begin()
        with pytest.raises(UniqueViolationError):
            unique_tree.insert(txn, 5, "mine")
        # the duplicate's data record is now S-locked by txn
        assert db.locks.held_mode(txn.xid, ("rid", "r5")) == LockMode.S
        with pytest.raises(UniqueViolationError):
            unique_tree.insert(txn, 5, "mine")
        db.rollback(txn)

    def test_reinsert_after_committed_delete(self, db, unique_tree):
        txn = db.begin()
        unique_tree.insert(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        unique_tree.delete(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        unique_tree.insert(txn, 5, "r5b")  # no violation
        db.commit(txn)

    def test_insert_predicates_cleaned_up(self, db, unique_tree):
        txn = db.begin()
        unique_tree.insert(txn, 5, "r5")
        # the "= key" predicates are released when the operation ends,
        # before end of transaction (section 8)
        assert unique_tree.predicates.predicates_of(txn.xid) == []
        db.commit(txn)


class TestUniqueRace:
    def test_racing_inserters_one_wins(self):
        """Two transactions inserting the same key concurrently: one
        commits, the other ends in a deadlock abort or a unique
        violation — never two copies of the key (section 8)."""
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("uq", BTreeExtension(), unique=True)
        outcomes = []
        barrier = threading.Barrier(2)

        def racer(rid: str):
            barrier.wait()
            txn = db.begin()
            try:
                tree.insert(txn, 99, rid)
                db.commit(txn)
                outcomes.append(("committed", rid))
            except UniqueViolationError:
                db.rollback(txn)
                outcomes.append(("violation", rid))
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
                outcomes.append(("deadlock", rid))

        threads = [
            threading.Thread(target=racer, args=(f"racer-{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(15.0)
        kinds = sorted(kind for kind, _ in outcomes)
        assert kinds[0] == "committed" or "committed" in kinds
        assert kinds.count("committed") == 1
        txn = db.begin()
        assert len(tree.search(txn, Interval(99, 99))) == 1
        db.commit(txn)

    def test_many_racing_keys(self):
        db = Database(page_capacity=8, lock_timeout=10.0)
        tree = db.create_tree("uq", BTreeExtension(), unique=True)
        committed = []

        def worker(wid: int):
            for key in range(10):
                txn = db.begin()
                try:
                    tree.insert(txn, key, f"w{wid}-k{key}")
                    db.commit(txn)
                    committed.append(key)
                except (UniqueViolationError, TransactionAbort):
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        txn = db.begin()
        result = tree.search(txn, Interval(0, 9))
        db.commit(txn)
        keys = [k for k, _ in result]
        assert len(keys) == len(set(keys))  # uniqueness held
        assert sorted(set(committed)) == sorted(keys)
