"""Remaining logical-deletion edge cases (§7 corner semantics)."""

import pytest

from repro.database import Database
from repro.errors import KeyNotFoundError
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum


def build(n=20):
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("de", BTreeExtension())
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestDeleteInsertInterplay:
    def test_insert_delete_insert_same_rid_in_one_txn(self):
        """A rid can be re-inserted after its tombstone is collected;
        within one transaction the sequence delete→insert of the same
        rid must leave exactly one live entry."""
        db, tree = build(5)
        txn = db.begin()
        tree.delete(txn, 3, "r3")
        tree.insert(txn, 300, "r3")  # same rid, new key
        db.commit(txn)
        check = db.begin()
        rows = [
            (k, r)
            for k, r in tree.search(check, Interval(0, 1000))
            if r == "r3"
        ]
        db.commit(check)
        assert rows == [(300, "r3")]
        # the tombstone under key 3 plus the live entry under key 300
        # coexist physically until vacuum, but never logically
        report = check_tree(tree)
        assert report.ok

    def test_vacuum_after_reinsert_keeps_live_row(self):
        db, tree = build(5)
        txn = db.begin()
        tree.delete(txn, 3, "r3")
        tree.insert(txn, 300, "r3")
        db.commit(txn)
        txn = db.begin()
        vacuum(tree, txn)
        db.commit(txn)
        check = db.begin()
        assert tree.search(check, Interval(300, 300)) == [(300, "r3")]
        assert tree.search(check, Interval(3, 3)) == []
        db.commit(check)
        report = check_tree(tree)
        assert report.ok and report.leaf_entries == report.live_entries

    def test_rollback_of_delete_then_reinsert(self):
        """Rolling back delete(k1,r)+insert(k2,r) must restore the
        original row exactly (LIFO: remove the new entry, unmark the
        old)."""
        db, tree = build(5)
        txn = db.begin()
        tree.delete(txn, 3, "r3")
        tree.insert(txn, 300, "r3")
        db.rollback(txn)
        check = db.begin()
        rows = [
            (k, r)
            for k, r in tree.search(check, Interval(0, 1000))
            if r == "r3"
        ]
        db.commit(check)
        assert rows == [(3, "r3")]
        assert check_tree(tree).ok

    def test_delete_all_duplicate_keys_individually(self):
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("dup", BTreeExtension())
        txn = db.begin()
        for i in range(6):
            tree.insert(txn, 7, f"d{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(6):
            tree.delete(txn, 7, f"d{i}")
        with pytest.raises(KeyNotFoundError):
            tree.delete(txn, 7, "d0")  # already gone
        db.commit(txn)
        check = db.begin()
        assert tree.search(check, Interval(7, 7)) == []
        db.commit(check)

    def test_delete_where_then_vacuum_then_crash(self):
        db, tree = build(40)
        txn = db.begin()
        tree.delete_where(txn, Interval(0, 19))
        db.commit(txn)
        txn = db.begin()
        vacuum(tree, txn)
        db.commit(txn)
        db.crash()
        db2 = db.restart({"de": BTreeExtension()})
        tree2 = db2.tree("de")
        check = db2.begin()
        found = {k for k, _ in tree2.search(check, Interval(0, 100))}
        db2.commit(check)
        assert found == set(range(20, 40))
        assert check_tree(tree2).ok
