"""Logical deletion (section 7)."""

import pytest

from repro.errors import KeyNotFoundError
from repro.ext.btree import Interval
from repro.lock.modes import LockMode
from repro.sync.latch import LatchMode


def find_entry(db, tree, key, rid):
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            if not frame.page.is_leaf:
                continue
            entry = frame.page.find_leaf_entry(key, rid)
            if entry is not None:
                return entry.copy()
    return None


class TestLogicalDelete:
    def test_delete_marks_not_removes(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        db.commit(txn)
        entry = find_entry(db, loaded_btree, 5, "r5")
        assert entry is not None  # physically present
        assert entry.deleted
        assert entry.delete_xid == txn.xid

    def test_deleted_entry_invisible_to_new_search(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        db.commit(txn)
        check = db.begin()
        assert loaded_btree.search(check, Interval(5, 5)) == []
        db.commit(check)

    def test_delete_xlocks_record(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        assert db.locks.held_mode(txn.xid, ("rid", "r5")) == LockMode.X
        db.commit(txn)

    def test_delete_missing_key_raises(self, db, loaded_btree):
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            loaded_btree.delete(txn, 5000, "nope")
        db.rollback(txn)

    def test_delete_wrong_rid_raises(self, db, loaded_btree):
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            loaded_btree.delete(txn, 5, "r6")
        db.rollback(txn)

    def test_double_delete_same_txn_raises(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        with pytest.raises(KeyNotFoundError):
            loaded_btree.delete(txn, 5, "r5")
        db.rollback(txn)

    def test_delete_after_committed_delete_raises(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            loaded_btree.delete(txn, 5, "r5")
        db.rollback(txn)

    def test_bp_not_shrunk_by_delete(self, db, btree):
        """The path to a marked entry must survive (section 7): BPs are
        only shrunk by garbage collection after commit."""
        txn = db.begin()
        for i in range(50):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        # snapshot all BPs
        before = {}
        for pid in btree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                before[pid] = frame.page.bp
        txn = db.begin()
        btree.delete(txn, 49, "r49")  # extreme key of some BP
        db.commit(txn)
        for pid, bp in before.items():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                assert frame.page.bp == bp

    def test_delete_then_reinsert_same_key_new_rid(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        loaded_btree.insert(txn, 5, "r5-new")
        db.commit(txn)
        check = db.begin()
        assert loaded_btree.search(check, Interval(5, 5)) == [
            (5, "r5-new")
        ]
        db.commit(check)


class TestDeleteRollback:
    def test_rollback_unmarks(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        db.rollback(txn)
        entry = find_entry(db, loaded_btree, 5, "r5")
        assert entry is not None and not entry.deleted
        check = db.begin()
        assert loaded_btree.search(check, Interval(5, 5)) == [(5, "r5")]
        db.commit(check)

    def test_rr_scan_blocks_on_uncommitted_delete(self, db, loaded_btree):
        """A repeatable-read scan hitting a logically deleted entry must
        wait for the deleter (via the record lock) — here the deleter
        aborts, so the scan sees the entry."""
        import threading

        deleter = db.begin()
        loaded_btree.delete(deleter, 5, "r5")
        results = []

        def scan():
            txn = db.begin()
            results.append(loaded_btree.search(txn, Interval(5, 5)))
            db.commit(txn)

        t = threading.Thread(target=scan)
        t.start()
        t.join(0.2)
        assert t.is_alive()  # blocked on the deleter's record lock
        db.rollback(deleter)
        t.join(5.0)
        assert results == [[(5, "r5")]]

    def test_rr_scan_skips_after_deleter_commits(self, db, loaded_btree):
        import threading

        deleter = db.begin()
        loaded_btree.delete(deleter, 5, "r5")
        results = []

        def scan():
            txn = db.begin()
            results.append(loaded_btree.search(txn, Interval(4, 6)))
            db.commit(txn)

        t = threading.Thread(target=scan)
        t.start()
        t.join(0.2)
        db.commit(deleter)
        t.join(5.0)
        assert sorted(k for k, _ in results[0]) == [4, 6]
