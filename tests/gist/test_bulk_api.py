"""Convenience bulk APIs: insert_many, count, delete_where."""

import threading

from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rtree import Rect
from repro.gist.checker import check_tree


class TestInsertMany:
    def test_inserts_all_pairs(self, db, btree):
        txn = db.begin()
        n = btree.insert_many(
            txn, [(i, f"r{i}") for i in (5, 1, 9, 3, 7)]
        )
        db.commit(txn)
        assert n == 5
        txn = db.begin()
        assert {k for k, _ in btree.search(txn, Interval(0, 10))} == {
            1,
            3,
            5,
            7,
            9,
        }
        db.commit(txn)

    def test_uses_organize_order_when_available(self, db, btree):
        # BTreeExtension organizes by key; insertion must still be
        # correct whatever the order
        txn = db.begin()
        btree.insert_many(txn, [(i % 7, f"r{i}") for i in range(50)])
        db.commit(txn)
        assert check_tree(btree).ok

    def test_empty_batch(self, db, btree):
        txn = db.begin()
        assert btree.insert_many(txn, []) == 0
        db.commit(txn)

    def test_works_without_organize(self, db, rtree):
        txn = db.begin()
        n = rtree.insert_many(
            txn,
            [(Rect.point(i / 10, i / 10), f"p{i}") for i in range(10)],
        )
        db.commit(txn)
        assert n == 10
        txn = db.begin()
        assert rtree.count(txn, Rect(0, 0, 1, 1)) == 10
        db.commit(txn)


class TestCount:
    def test_count_matches_search(self, db, loaded_btree):
        txn = db.begin()
        query = Interval(10, 40)
        assert loaded_btree.count(txn, query) == len(
            loaded_btree.search(txn, query)
        )
        db.commit(txn)

    def test_count_zero(self, db, loaded_btree):
        txn = db.begin()
        assert loaded_btree.count(txn, Interval(1000, 2000)) == 0
        db.commit(txn)

    def test_count_is_phantom_protected_under_rr(self, db, loaded_btree):
        reader = db.begin()
        first = loaded_btree.count(reader, Interval(10, 20))
        blocked = []

        def writer():
            txn = db.begin()
            try:
                loaded_btree.insert(txn, 15, "phantom")
                db.commit(txn)
                blocked.append(False)
            except TransactionAbort:
                db.rollback(txn)
                blocked.append(True)

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.3)
        second = loaded_btree.count(reader, Interval(10, 20))
        assert first == second
        db.commit(reader)
        t.join(10.0)


class TestDeleteWhere:
    def test_deletes_exactly_matching(self, db, loaded_btree):
        txn = db.begin()
        n = loaded_btree.delete_where(txn, Interval(10, 19))
        db.commit(txn)
        assert n == 10
        txn = db.begin()
        remaining = {
            k for k, _ in loaded_btree.search(txn, Interval(0, 99))
        }
        db.commit(txn)
        assert remaining == set(range(100)) - set(range(10, 20))

    def test_delete_where_empty_range(self, db, loaded_btree):
        txn = db.begin()
        assert loaded_btree.delete_where(txn, Interval(500, 600)) == 0
        db.commit(txn)

    def test_delete_where_rolls_back_atomically(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete_where(txn, Interval(0, 49))
        db.rollback(txn)
        txn = db.begin()
        assert loaded_btree.count(txn, Interval(0, 99)) == 100
        db.commit(txn)

    def test_delete_where_then_crash(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete_where(txn, Interval(0, 49))
        db.commit(txn)
        db.crash()
        db2 = db.restart({"bt": BTreeExtension()})
        tree2 = db2.tree("bt")
        txn = db2.begin()
        assert tree2.count(txn, Interval(0, 99)) == 50
        db2.commit(txn)
        assert check_tree(tree2).ok
