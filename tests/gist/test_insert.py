"""Insertion (Figure 4): splits, BP propagation, NSN juggling."""

from repro.ext.btree import Interval
from repro.gist.checker import check_tree
from repro.lock.modes import LockMode
from repro.storage.page import NO_PAGE
from repro.sync.latch import LatchMode


class TestBasicInsert:
    def test_insert_then_found(self, db, btree):
        txn = db.begin()
        btree.insert(txn, 5, "r5")
        db.commit(txn)
        txn = db.begin()
        assert btree.search(txn, Interval(5, 5)) == [(5, "r5")]
        db.commit(txn)

    def test_insert_xlocks_data_record_first(self, db, btree):
        txn = db.begin()
        btree.insert(txn, 5, "r5")
        assert db.locks.held_mode(txn.xid, ("rid", "r5")) == LockMode.X
        db.commit(txn)

    def test_many_inserts_build_valid_tree(self, db, btree):
        txn = db.begin()
        for i in range(300):
            btree.insert(txn, (i * 37) % 500, f"r{i}")
        db.commit(txn)
        report = check_tree(btree)
        assert report.ok, report.errors
        assert report.live_entries == 300
        assert btree.height() >= 3  # page_capacity=4 forces real depth

    def test_leaf_signaling_lock_held_to_eot(self, db, btree):
        txn = db.begin()
        btree.insert(txn, 5, "r5")
        node_locks = [
            name
            for name in db.locks.locks_of(txn.xid)
            if isinstance(name, tuple) and name[0] == "node"
        ]
        assert node_locks  # at least the target leaf's lock survives
        db.commit(txn)
        assert all(
            db.locks.holders(name) == {} for name in node_locks
        )


class TestSplitMechanics:
    def test_split_assigns_new_nsn_to_original(self, db, btree):
        txn = db.begin()
        for i in range(4):
            btree.insert(txn, i, f"r{i}")
        # root (a leaf) is now full; the next insert splits it
        before = btree.nsn.current()
        btree.insert(txn, 4, "r4")
        db.commit(txn)
        assert btree.nsn.current() > before
        assert btree.stats.root_splits == 1

    def test_sibling_inherits_old_nsn_and_rightlink(self, db, btree):
        txn = db.begin()
        for i in range(60):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        # walk every level: along each rightlink chain, NSNs must be
        # non-increasing toward the right (older siblings first split)
        for pid in btree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page.snapshot()
            if page.rightlink == NO_PAGE:
                continue
            with db.pool.fixed(page.rightlink, LatchMode.S) as frame:
                sibling = frame.page.snapshot()
            assert sibling.level == page.level

    def test_bp_of_split_halves_cover_content(self, db, btree):
        txn = db.begin()
        for i in range(100):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        ext = btree.ext
        for pid in btree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page.snapshot()
            if page.bp is None:
                continue
            preds = (
                [e.key for e in page.entries if not e.deleted]
                if page.is_leaf
                else [e.pred for e in page.entries]
            )
            for pred in preds:
                assert ext.covers(page.bp, pred)

    def test_recursive_split_through_internal_levels(self, db, btree):
        txn = db.begin()
        for i in range(500):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        assert btree.height() >= 4
        assert check_tree(btree).ok


class TestBPExpansion:
    def test_outlier_key_expands_ancestors(self, db, btree):
        txn = db.begin()
        for i in range(50):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        updates_before = btree.stats.bp_updates
        txn = db.begin()
        btree.insert(txn, 10_000, "far")
        db.commit(txn)
        assert btree.stats.bp_updates > updates_before
        txn = db.begin()
        assert btree.search(txn, Interval(10_000, 10_000)) == [
            (10_000, "far")
        ]
        db.commit(txn)
        assert check_tree(btree).ok

    def test_covered_key_needs_no_bp_update(self, db, btree):
        txn = db.begin()
        for i in range(0, 100, 2):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        before = btree.stats.bp_updates
        txn = db.begin()
        btree.insert(txn, 51, "in-range")  # strictly inside some leaf BP?
        db.commit(txn)
        # the insert may or may not hit a covering leaf; what must hold
        # is consistency, checked structurally:
        assert check_tree(btree).ok
        assert btree.stats.bp_updates >= before


class TestInterleavedWorkload:
    def test_mixed_insert_delete_search_single_txn(self, db, btree):
        txn = db.begin()
        for i in range(60):
            btree.insert(txn, i, f"r{i}")
        for i in range(0, 60, 3):
            btree.delete(txn, i, f"r{i}")
        result = btree.search(txn, Interval(0, 59))
        db.commit(txn)
        expected = {i for i in range(60) if i % 3 != 0}
        assert {k for k, _ in result} == expected
        assert check_tree(btree).ok

    def test_insert_after_heavy_deletes(self, db, btree):
        txn = db.begin()
        for i in range(40):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(40):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(40):
            btree.insert(txn, i, f"n{i}")
        db.commit(txn)
        txn = db.begin()
        assert len(btree.search(txn, Interval(0, 39))) == 40
        db.commit(txn)
        assert check_tree(btree).ok
