"""Search (Figure 3): correctness, predicate attachment, RID locking."""

from repro.ext.btree import Interval
from repro.lock.modes import LockMode
from repro.predicate.manager import PredicateKind
from repro.txn.transaction import IsolationLevel


class TestBasicSearch:
    def test_empty_tree(self, db, btree):
        txn = db.begin()
        assert btree.search(txn, Interval(0, 100)) == []
        db.commit(txn)

    def test_point_query(self, db, loaded_btree):
        txn = db.begin()
        assert loaded_btree.search(txn, Interval(42, 42)) == [(42, "r42")]
        db.commit(txn)

    def test_range_query_complete(self, db, loaded_btree):
        txn = db.begin()
        result = loaded_btree.search(txn, Interval(10, 30))
        db.commit(txn)
        assert sorted(k for k, _ in result) == list(range(10, 31))

    def test_query_outside_key_space(self, db, loaded_btree):
        txn = db.begin()
        assert loaded_btree.search(txn, Interval(1000, 2000)) == []
        db.commit(txn)

    def test_duplicate_keys_all_found(self, db, btree):
        txn = db.begin()
        for i in range(5):
            btree.insert(txn, 7, f"dup{i}")
        db.commit(txn)
        txn = db.begin()
        result = btree.search(txn, Interval(7, 7))
        db.commit(txn)
        assert sorted(r for _, r in result) == [f"dup{i}" for i in range(5)]

    def test_search_spanning_many_leaves(self, db, btree):
        txn = db.begin()
        for i in range(200):
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        result = btree.search(txn, Interval(0, 199))
        db.commit(txn)
        assert len(result) == 200
        assert len({r for _, r in result}) == 200  # no duplicates

    def test_own_uncommitted_inserts_visible(self, db, btree):
        txn = db.begin()
        btree.insert(txn, 3, "mine")
        assert btree.search(txn, Interval(0, 10)) == [(3, "mine")]
        db.rollback(txn)

    def test_own_deletes_invisible(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.delete(txn, 5, "r5")
        result = loaded_btree.search(txn, Interval(4, 6))
        assert sorted(k for k, _ in result) == [4, 6]
        db.rollback(txn)


class TestHybridLockingSideEffects:
    def test_rr_search_locks_result_rids(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.search(txn, Interval(10, 12))
        for rid in ("r10", "r11", "r12"):
            assert (
                db.locks.held_mode(txn.xid, ("rid", rid)) == LockMode.S
            )
        db.commit(txn)
        assert db.locks.holders(("rid", "r10")) == {}

    def test_rc_search_leaves_no_locks(self, db, loaded_btree):
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        loaded_btree.search(txn, Interval(10, 12))
        assert db.locks.held_mode(txn.xid, ("rid", "r10")) is None
        db.commit(txn)

    def test_rr_search_attaches_predicate_to_visited_nodes(
        self, db, loaded_btree
    ):
        txn = db.begin()
        loaded_btree.search(txn, Interval(10, 12))
        plocks = loaded_btree.predicates.predicates_of(txn.xid)
        assert len(plocks) == 1
        plock = plocks[0]
        assert plock.kind is PredicateKind.SEARCH
        assert loaded_btree.root_pid in plock.attachments
        assert len(plock.attachments) >= 2  # root + at least the leaf
        db.commit(txn)

    def test_rc_search_attaches_nothing(self, db, loaded_btree):
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        loaded_btree.search(txn, Interval(10, 12))
        assert loaded_btree.predicates.predicates_of(txn.xid) == []
        db.commit(txn)

    def test_predicates_released_at_commit(self, db, loaded_btree):
        txn = db.begin()
        loaded_btree.search(txn, Interval(10, 12))
        db.commit(txn)
        assert loaded_btree.predicates.predicates_of(txn.xid) == []
        assert loaded_btree.predicates.total_predicates() == 0

    def test_attachment_invariant_holds(self, db, loaded_btree):
        """If the search predicate is consistent with a node's BP, it
        must be attached to that node (section 4.3)."""
        from repro.sync.latch import LatchMode

        txn = db.begin()
        query = Interval(20, 60)
        loaded_btree.search(txn, query)
        plock = loaded_btree.predicates.predicates_of(txn.xid)[0]
        ext = loaded_btree.ext
        for pid in loaded_btree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                bp = frame.page.bp
                if bp is not None and ext.consistent(bp, query):
                    assert pid in plock.attachments, (
                        f"predicate missing on node {pid} with BP {bp}"
                    )
        db.commit(txn)


class TestSearchCursor:
    def test_fetch_next_streams_results(self, db, loaded_btree):
        txn = db.begin()
        cursor = loaded_btree.open_cursor(txn, Interval(0, 9))
        rows = []
        while True:
            row = cursor.fetch_next()
            if row is None:
                break
            rows.append(row)
        cursor.close()
        db.commit(txn)
        assert sorted(k for k, _ in rows) == list(range(10))

    def test_fetch_after_exhaustion_returns_none(self, db, loaded_btree):
        txn = db.begin()
        cursor = loaded_btree.open_cursor(txn, Interval(5, 5))
        assert cursor.fetch_next() == (5, "r5")
        assert cursor.fetch_next() is None
        assert cursor.fetch_next() is None
        cursor.close()
        db.commit(txn)

    def test_close_releases_signaling_locks(self, db, loaded_btree):
        txn = db.begin()
        cursor = loaded_btree.open_cursor(txn, Interval(0, 99))
        cursor.fetch_next()  # leaves pointers stacked
        assert cursor.stack
        cursor.close()
        db.commit(txn)
        # all node locks gone after commit
        for pid in loaded_btree.all_pids():
            assert db.locks.holders(loaded_btree.node_lock(pid)) == {}
