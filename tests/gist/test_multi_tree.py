"""Transactions spanning several trees (atomicity across indexes)."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rtree import Rect, RTreeExtension
from repro.gist.checker import check_tree


def build():
    db = Database(page_capacity=8, lock_timeout=10.0)
    by_id = db.create_tree("by_id", BTreeExtension(), unique=True)
    by_loc = db.create_tree("by_loc", RTreeExtension())
    return db, by_id, by_loc


class TestCrossTreeAtomicity:
    def test_commit_applies_to_both(self):
        db, by_id, by_loc = build()
        txn = db.begin()
        by_id.insert(txn, 7, "store-7")
        by_loc.insert(txn, Rect.point(0.3, 0.4), "store-7")
        db.commit(txn)
        check = db.begin()
        assert by_id.search(check, Interval(7, 7)) == [(7, "store-7")]
        assert len(by_loc.search(check, Rect(0, 0, 1, 1))) == 1
        db.commit(check)

    def test_rollback_undoes_both(self):
        db, by_id, by_loc = build()
        txn = db.begin()
        by_id.insert(txn, 7, "store-7")
        by_loc.insert(txn, Rect.point(0.3, 0.4), "store-7")
        db.rollback(txn)
        check = db.begin()
        assert by_id.search(check, Interval(0, 100)) == []
        assert by_loc.search(check, Rect(0, 0, 1, 1)) == []
        db.commit(check)

    def test_crash_recovers_both_consistently(self):
        db, by_id, by_loc = build()
        txn = db.begin()
        for i in range(20):
            by_id.insert(txn, i, f"s{i}")
            by_loc.insert(txn, Rect.point(i / 20, i / 20), f"s{i}")
        db.commit(txn)
        loser = db.begin()
        by_id.insert(loser, 99, "lost")
        by_loc.insert(loser, Rect.point(0.99, 0.99), "lost")
        db.log.flush()
        db.crash()
        db2 = db.restart(
            {"by_id": BTreeExtension(), "by_loc": RTreeExtension()}
        )
        check = db2.begin()
        ids = {r for _, r in db2.tree("by_id").search(check, Interval(0, 100))}
        locs = {
            r
            for _, r in db2.tree("by_loc").search(check, Rect(0, 0, 1, 1))
        }
        db2.commit(check)
        assert ids == locs == {f"s{i}" for i in range(20)}
        assert check_tree(db2.tree("by_id")).ok
        assert check_tree(db2.tree("by_loc")).ok

    def test_partial_rollback_spans_trees(self):
        db, by_id, by_loc = build()
        txn = db.begin()
        by_id.insert(txn, 1, "keep")
        by_loc.insert(txn, Rect.point(0.1, 0.1), "keep")
        sp = db.txns.savepoint(txn)
        by_id.insert(txn, 2, "drop")
        by_loc.insert(txn, Rect.point(0.2, 0.2), "drop")
        db.txns.rollback_to_savepoint(txn, sp)
        db.commit(txn)
        check = db.begin()
        assert {r for _, r in by_id.search(check, Interval(0, 10))} == {
            "keep"
        }
        assert {
            r for _, r in by_loc.search(check, Rect(0, 0, 1, 1))
        } == {"keep"}
        db.commit(check)

    def test_shared_rid_locks_across_trees(self):
        """The same logical record indexed in two trees shares one
        record lock name — a second tree's insert for the same rid is
        reentrant, a competitor's blocks."""
        db, by_id, by_loc = build()
        txn = db.begin()
        by_id.insert(txn, 1, "rec")
        by_loc.insert(txn, Rect.point(0.5, 0.5), "rec")  # same rid: fine
        other = db.begin()
        granted = db.locks.acquire(
            other.xid, ("rid", "rec"), __import__(
                "repro.lock.modes", fromlist=["LockMode"]
            ).LockMode.S, wait=False,
        )
        assert not granted
        db.commit(txn)
        db.commit(other)
