"""The §10.1 LSN-as-NSN optimization under real concurrency.

The optimization's safety argument (footnote 13) is subtle: memorizing
the parent's page LSN instead of the global counter is only sound
because a parent that reflects a child's split carries an LSN above the
child's NSN.  These tests hammer an LSN-sourced tree with concurrent
splits and verify nothing is ever missed.
"""

import random
import threading

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree


def build():
    db = Database(page_capacity=4, lock_timeout=20.0)
    tree = db.create_tree("lsn", BTreeExtension(), nsn_source="lsn")
    return db, tree


class TestLSNModeConcurrency:
    def test_concurrent_inserts_and_searches(self):
        db, tree = build()
        setup = db.begin()
        preloaded = {}
        for i in range(100):
            tree.insert(setup, i * 5, f"pre-{i}")
            preloaded[f"pre-{i}"] = i * 5
        db.commit(setup)
        errors = []
        stop = threading.Event()

        def writer(wid):
            rng = random.Random(wid)
            for i in range(80):
                txn = db.begin()
                try:
                    tree.insert(txn, rng.randrange(500), f"{wid}-{i}")
                    db.commit(txn)
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        def reader():
            rng = random.Random(777)
            while not stop.is_set():
                txn = db.begin()
                try:
                    lo = rng.randrange(400)
                    found = {
                        r
                        for _, r in tree.search(
                            txn, Interval(lo, lo + 100)
                        )
                    }
                    db.commit(txn)
                    expected = {
                        r
                        for r, k in preloaded.items()
                        if lo <= k <= lo + 100
                    }
                    if not expected <= found:
                        errors.append(
                            f"missed {sorted(expected - found)[:3]}"
                        )
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        writers = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(90.0)
        stop.set()
        for t in readers:
            t.join(30.0)
        assert errors == [], errors[:3]
        assert check_tree(tree).ok
        assert tree.stats.splits > 0

    def test_lsn_mode_split_detection_fires(self):
        """Force the Figure-2 interleaving in LSN mode: the paused
        search must still detect the split via the page-LSN memo."""
        from repro.sync.hooks import PredicateGate
        from repro.sync.latch import LatchMode

        db, tree = build()
        txn = db.begin()
        for i in range(1, 13):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        # locate a full leaf and its parent
        leaf_pid = parent_pid = None
        for pid in tree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if (
                    page.is_leaf
                    and page.is_full
                    and pid != tree.root_pid
                ):
                    leaf_pid = pid
                    keys = sorted(e.key for e in page.entries)
        assert leaf_pid is not None
        for pid in tree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                if (
                    frame.page.is_internal
                    and frame.page.find_child_entry(leaf_pid)
                ):
                    parent_pid = pid
        gate = PredicateGate(lambda pid=None, **_: pid == parent_pid)
        db.hooks.on("search:node-visited", gate.block)
        result = []

        def searcher():
            stxn = db.begin()
            result.extend(
                tree.search(stxn, Interval(keys[0], keys[-1]))
            )
            db.commit(stxn)

        t = threading.Thread(target=searcher)
        t.start()
        assert gate.wait_blocked(5.0)
        db.hooks.remove("search:node-visited", gate.block)
        follows_before = tree.stats.rightlink_follows
        wtxn = db.begin()
        tree.insert(wtxn, keys[0] + 0.5, "racer")
        db.commit(wtxn)
        gate.open()
        t.join(10.0)
        check = db.begin()
        expected = {
            k
            for k, _ in tree.search(
                check, Interval(keys[0], keys[-1])
            )
        }
        db.commit(check)
        assert {k for k, _ in result} == expected
        assert tree.stats.rightlink_follows > follows_before
