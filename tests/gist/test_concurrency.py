"""Multi-threaded stress tests of the full transactional GiST."""

import random
import threading

from repro.database import Database
from repro.errors import KeyNotFoundError, TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rtree import Rect, RTreeExtension
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum


def run_threads(workers, timeout=90.0):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    assert not any(t.is_alive() for t in threads), "worker hang"


class TestConcurrentWriters:
    def test_parallel_inserts_all_durable(self):
        db = Database(page_capacity=8, lock_timeout=20.0)
        tree = db.create_tree("c", BTreeExtension())
        inserted = []
        lock = threading.Lock()

        def writer(wid):
            rng = random.Random(wid)
            for batch in range(10):
                txn = db.begin()
                local = []
                try:
                    for i in range(5):
                        key = rng.randrange(50_000)
                        rid = f"{wid}-{batch}-{i}"
                        tree.insert(txn, key, rid)
                        local.append((key, rid))
                    db.commit(txn)
                    with lock:
                        inserted.extend(local)
                except TransactionAbort:
                    db.rollback(txn)

        run_threads([lambda w=w: writer(w) for w in range(8)])
        txn = db.begin()
        found = set(tree.search(txn, Interval(0, 50_000)))
        db.commit(txn)
        assert found == set(inserted)
        report = check_tree(tree)
        assert report.ok, report.errors

    def test_mixed_insert_delete_search_storm(self):
        db = Database(page_capacity=8, lock_timeout=20.0)
        tree = db.create_tree("c", BTreeExtension())
        setup = db.begin()
        base = {}
        for i in range(200):
            tree.insert(setup, i * 10, f"base-{i}")
            base[f"base-{i}"] = i * 10
        db.commit(setup)
        deleted = set()
        lock = threading.Lock()
        errors = []

        def worker(wid):
            rng = random.Random(wid)
            for _ in range(15):
                txn = db.begin()
                try:
                    roll = rng.random()
                    if roll < 0.4:
                        tree.insert(
                            txn,
                            rng.randrange(2000),
                            f"new-{wid}-{rng.random()}",
                        )
                        db.commit(txn)
                    elif roll < 0.6:
                        with lock:
                            candidates = [
                                r for r in base if r not in deleted
                            ]
                        if not candidates:
                            db.rollback(txn)
                            continue
                        rid = rng.choice(candidates)
                        try:
                            tree.delete(txn, base[rid], rid)
                            db.commit(txn)
                            with lock:
                                deleted.add(rid)
                        except KeyNotFoundError:
                            db.rollback(txn)
                    else:
                        lo = rng.randrange(1500)
                        tree.search(txn, Interval(lo, lo + 200))
                        db.commit(txn)
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception as exc:  # pragma: no cover
                        errors.append(repr(exc))
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        run_threads([lambda w=w: worker(w) for w in range(8)])
        assert errors == []
        report = check_tree(tree)
        assert report.ok, report.errors
        txn = db.begin()
        found = {r for _, r in tree.search(txn, Interval(0, 3000))}
        db.commit(txn)
        for rid in base:
            assert (rid in found) == (rid not in deleted)

    def test_concurrent_vacuum_and_writers(self):
        db = Database(page_capacity=8, lock_timeout=20.0)
        tree = db.create_tree("c", BTreeExtension())
        setup = db.begin()
        for i in range(150):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        txn = db.begin()
        for i in range(0, 150, 2):
            tree.delete(txn, i, f"r{i}")
        db.commit(txn)
        errors = []
        stop = threading.Event()

        def vacuumer():
            while not stop.is_set():
                txn = db.begin()
                try:
                    vacuum(tree, txn)
                    db.commit(txn)
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))
                    break

        def writer():
            rng = random.Random(99)
            for i in range(60):
                txn = db.begin()
                try:
                    tree.insert(txn, rng.randrange(150), f"w-{i}")
                    db.commit(txn)
                except TransactionAbort:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass

        vt = threading.Thread(target=vacuumer)
        wt = threading.Thread(target=writer)
        vt.start()
        wt.start()
        wt.join(60.0)
        stop.set()
        vt.join(60.0)
        assert errors == []
        report = check_tree(tree)
        assert report.ok, report.errors

    def test_spatial_concurrent_workload(self):
        db = Database(page_capacity=8, lock_timeout=20.0)
        tree = db.create_tree("rt", RTreeExtension())
        inserted = []
        lock = threading.Lock()

        def writer(wid):
            rng = random.Random(wid)
            for i in range(40):
                txn = db.begin()
                rect = Rect.point(rng.random(), rng.random())
                rid = f"{wid}-{i}"
                try:
                    tree.insert(txn, rect, rid)
                    db.commit(txn)
                    with lock:
                        inserted.append(rid)
                except TransactionAbort:
                    db.rollback(txn)

        def reader():
            rng = random.Random(1234)
            for _ in range(20):
                txn = db.begin()
                x, y = rng.random() * 0.5, rng.random() * 0.5
                tree.search(txn, Rect(x, y, x + 0.5, y + 0.5))
                db.commit(txn)

        run_threads(
            [lambda w=w: writer(w) for w in range(4)] + [reader] * 2
        )
        txn = db.begin()
        found = {r for _, r in tree.search(txn, Rect(0, 0, 1, 1))}
        db.commit(txn)
        assert found == set(inserted)
        assert check_tree(tree).ok


class TestCrashUnderConcurrency:
    def test_crash_after_concurrent_phase_recovers(self):
        db = Database(page_capacity=8, lock_timeout=20.0)
        tree = db.create_tree("c", BTreeExtension())
        committed = []
        lock = threading.Lock()

        def writer(wid):
            rng = random.Random(wid)
            for i in range(20):
                txn = db.begin()
                key = rng.randrange(10_000)
                rid = f"{wid}-{i}"
                try:
                    tree.insert(txn, key, rid)
                    db.commit(txn)
                    with lock:
                        committed.append((key, rid))
                except TransactionAbort:
                    db.rollback(txn)

        run_threads([lambda w=w: writer(w) for w in range(6)])
        db.crash()
        db2 = db.restart({"c": BTreeExtension()})
        tree2 = db2.tree("c")
        txn = db2.begin()
        found = set(tree2.search(txn, Interval(0, 10_000)))
        db2.commit(txn)
        assert found == set(committed)
        assert check_tree(tree2).ok
