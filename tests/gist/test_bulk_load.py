"""Bottom-up bulk load: structure NTA, crash safety, fallbacks."""

import pytest

from repro.database import Database
from repro.errors import UniqueViolationError
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree


def _fresh(cap: int = 8) -> tuple[Database, object]:
    db = Database(page_capacity=cap, lock_timeout=10.0)
    tree = db.create_tree("bl", BTreeExtension())
    return db, tree


def _contents(db, tree):
    txn = db.begin()
    got = {
        (k, r) for k, r in tree.search(txn, Interval(-10**9, 10**9))
    }
    db.commit(txn)
    return got


class TestBulkLoad:
    def test_loads_sorted_batch_bottom_up(self):
        db, tree = _fresh()
        pairs = [(i, f"r{i}") for i in range(200)]
        txn = db.begin()
        assert tree.bulk_load(txn, pairs) == 200
        db.commit(txn)
        assert _contents(db, tree) == set(pairs)
        assert check_tree(tree).ok
        stats = tree.stats.snapshot()
        assert stats["bulk_loads"] == 1
        assert stats["bulk_pages_built"] > 200 // 8

    def test_unsorted_input_is_organized_first(self):
        db, tree = _fresh()
        pairs = [((i * 37) % 200, f"r{i}") for i in range(200)]
        txn = db.begin()
        tree.bulk_load(txn, pairs)
        db.commit(txn)
        assert _contents(db, tree) == set(pairs)
        assert check_tree(tree).ok

    def test_fill_factor_spreads_entries(self):
        db, tree = _fresh(cap=8)
        txn = db.begin()
        tree.bulk_load(txn, [(i, f"r{i}") for i in range(100)], fill=0.5)
        db.commit(txn)
        db2, tree2 = _fresh(cap=8)
        txn = db2.begin()
        tree2.bulk_load(
            txn, [(i, f"r{i}") for i in range(100)], fill=1.0
        )
        db2.commit(txn)
        assert (
            tree.stats.snapshot()["bulk_pages_built"]
            > tree2.stats.snapshot()["bulk_pages_built"]
        )
        assert check_tree(tree).ok and check_tree(tree2).ok

    def test_invalid_fill_rejected(self):
        db, tree = _fresh()
        txn = db.begin()
        with pytest.raises(ValueError):
            tree.bulk_load(txn, [(1, "a")], fill=0.0)
        with pytest.raises(ValueError):
            tree.bulk_load(txn, [(1, "a")], fill=1.5)
        db.rollback(txn)

    def test_small_batch_falls_back_to_runs(self):
        db, tree = _fresh(cap=8)
        txn = db.begin()
        assert tree.bulk_load(txn, [(i, f"r{i}") for i in range(5)]) == 5
        db.commit(txn)
        assert tree.stats.snapshot()["bulk_loads"] == 0  # fallback path
        assert _contents(db, tree) == {(i, f"r{i}") for i in range(5)}

    def test_non_empty_tree_falls_back(self):
        db, tree = _fresh()
        txn = db.begin()
        tree.insert(txn, 500, "prior")
        db.commit(txn)
        pairs = [(i, f"r{i}") for i in range(100)]
        txn = db.begin()
        tree.bulk_load(txn, pairs)
        db.commit(txn)
        assert tree.stats.snapshot()["bulk_loads"] == 0
        assert _contents(db, tree) == set(pairs) | {(500, "prior")}
        assert check_tree(tree).ok

    def test_empty_batch(self):
        db, tree = _fresh()
        txn = db.begin()
        assert tree.bulk_load(txn, []) == 0
        db.commit(txn)

    def test_unique_duplicate_in_batch_rejected(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("u", BTreeExtension(), unique=True)
        txn = db.begin()
        with pytest.raises(UniqueViolationError):
            tree.bulk_load(
                txn, [(i, f"r{i}") for i in range(50)] + [(0, "dup")]
            )
        db.rollback(txn)
        assert _contents(db, tree) == set()

    def test_unique_fallback_checks_prior_content(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("u", BTreeExtension(), unique=True)
        txn = db.begin()
        tree.insert(txn, 3, "prior")
        db.commit(txn)
        txn = db.begin()
        with pytest.raises(UniqueViolationError):
            tree.bulk_load(txn, [(i, f"r{i}") for i in range(50)])
        db.rollback(txn)
        assert _contents(db, tree) == {(3, "prior")}

    def test_rollback_keeps_structure_drops_entries(self):
        db, tree = _fresh()
        pairs = [(i, f"r{i}") for i in range(150)]
        txn = db.begin()
        tree.bulk_load(txn, pairs)
        db.rollback(txn)
        # the NTA-built structure survives like any completed SMO,
        # but every entry was logically undone
        assert _contents(db, tree) == set()
        assert check_tree(tree).ok
        # and the tree is still fully usable
        txn = db.begin()
        tree.insert(txn, 7, "again")
        db.commit(txn)
        assert _contents(db, tree) == {(7, "again")}


class _Boom(Exception):
    pass


def _crash_at(point: str, *, fires: int = 1):
    """Crash a bulk_load at the Nth firing of ``point``; restart."""
    db, tree = _fresh()
    pairs = [(i, f"r{i}") for i in range(150)]
    seen = [0]

    def hook(**_ctx):
        seen[0] += 1
        if seen[0] == fires:
            db.log.flush()  # make everything logged so far durable
            raise _Boom

    db.hooks.on(point, hook)
    txn = db.begin()
    with pytest.raises(_Boom):
        tree.bulk_load(txn, pairs)
    db.crash()
    db2 = db.restart({"bl": BTreeExtension()})
    tree2 = db2.tree("bl")
    return db2, tree2


class TestBulkLoadCrashSafety:
    def test_crash_inside_structure_nta_rolls_back(self):
        # "bulk:attached" fires inside the NTA: restart must undo the
        # whole structure, restoring the empty-leaf root and freeing
        # every built page.
        db2, tree2 = _crash_at("bulk:attached")
        assert _contents(db2, tree2) == set()
        report = check_tree(tree2)
        assert report.ok
        assert report.pages == 1  # back to a lone empty root leaf
        txn = db2.begin()
        tree2.insert(txn, 1, "alive")
        db2.commit(txn)
        assert _contents(db2, tree2) == {(1, "alive")}

    def test_crash_after_nta_keeps_empty_structure(self):
        # "bulk:structure-built" fires after end_nta: the multi-level
        # skeleton of empty leaves survives restart as a legal tree.
        db2, tree2 = _crash_at("bulk:structure-built")
        assert _contents(db2, tree2) == set()
        report = check_tree(tree2)
        assert report.ok
        assert report.pages > 1  # structure survived
        txn = db2.begin()
        tree2.insert(txn, 1, "alive")
        db2.commit(txn)
        assert _contents(db2, tree2) == {(1, "alive")}

    @pytest.mark.parametrize("fires", [1, 3])
    def test_crash_between_leaf_fills_undoes_entries(self, fires):
        # the loading txn never committed: every filled entry must be
        # rolled back, the structure stays
        db2, tree2 = _crash_at("bulk:leaf-filled", fires=fires)
        assert _contents(db2, tree2) == set()
        assert check_tree(tree2).ok
