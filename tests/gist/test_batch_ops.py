"""Batched multi-op APIs: multi_put / multi_get / multi_delete."""

import threading
import time

import pytest

from repro.database import Database
from repro.errors import KeyNotFoundError, UniqueViolationError
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rtree import Rect
from repro.gist.checker import check_tree
from repro.obs.history import HistoryRecorder, check_linearizability


def _all(db, tree, lo=-1_000_000, hi=1_000_000):
    txn = db.begin()
    got = {(k, r) for k, r in tree.search(txn, Interval(lo, hi))}
    db.commit(txn)
    return got


class TestMultiPut:
    def test_equivalent_to_point_inserts(self, db, btree):
        pairs = [(i * 3 % 50, f"r{i}") for i in range(50)]
        txn = db.begin()
        assert btree.multi_put(txn, pairs) == 50
        db.commit(txn)
        assert _all(db, btree) == set(pairs)
        assert check_tree(btree).ok

    def test_empty_batch(self, db, btree):
        txn = db.begin()
        assert btree.multi_put(txn, []) == 0
        db.commit(txn)

    def test_unsorted_input_is_organized(self, db, btree):
        pairs = [(k, f"r{k}") for k in (9, 1, 5, 3, 7, 0, 8, 2, 6, 4)]
        txn = db.begin()
        btree.multi_put(txn, pairs)
        db.commit(txn)
        assert _all(db, btree) == set(pairs)
        assert check_tree(btree).ok

    def test_rollback_undoes_whole_batch(self, db, btree):
        txn = db.begin()
        btree.insert(txn, 100, "keep")
        db.commit(txn)
        txn = db.begin()
        btree.multi_put(txn, [(i, f"r{i}") for i in range(40)])
        db.rollback(txn)
        assert _all(db, btree) == {(100, "keep")}
        assert check_tree(btree).ok

    def test_shares_descents_on_sorted_batch(self, big_db):
        tree = big_db.create_tree("bt", BTreeExtension())
        txn = big_db.begin()
        tree.multi_put(txn, [(i, f"r{i}") for i in range(200)])
        big_db.commit(txn)
        stats = tree.stats.snapshot()
        assert stats["batch_ops"] == 1
        assert stats["batch_keys"] == 200
        assert stats["batch_leaf_runs"] < 200
        assert stats["batch_descents_saved"] > 0
        assert check_tree(tree).ok

    def test_visible_within_same_txn(self, db, btree):
        txn = db.begin()
        btree.multi_put(txn, [(i, f"r{i}") for i in range(10)])
        got = {k for k, _ in btree.search(txn, Interval(0, 10))}
        db.commit(txn)
        assert got == set(range(10))

    def test_unique_tree_falls_back_per_key(self, db):
        tree = db.create_tree("u", BTreeExtension(), unique=True)
        txn = db.begin()
        tree.multi_put(txn, [(1, "a"), (2, "b")])
        db.commit(txn)
        txn = db.begin()
        with pytest.raises(UniqueViolationError):
            tree.multi_put(txn, [(3, "c"), (1, "dup")])
        db.rollback(txn)
        assert _all(db, tree) == {(1, "a"), (2, "b")}

    def test_rtree_batch_without_organize(self, db, rtree):
        # RTreeExtension has no organize order: the batch must still
        # land correctly via coverage-only runs.
        pairs = [
            (Rect.point(i / 30, (i * 7 % 10) / 10), f"p{i}")
            for i in range(30)
        ]
        txn = db.begin()
        assert rtree.multi_put(txn, pairs) == 30
        db.commit(txn)
        txn = db.begin()
        assert rtree.count(txn, Rect(0, 0, 1, 1)) == 30
        db.commit(txn)
        assert check_tree(rtree).ok


class TestMultiGet:
    def test_returns_rids_per_key(self, db, loaded_btree):
        txn = db.begin()
        out = loaded_btree.multi_get(txn, [3, 7, 999])
        db.commit(txn)
        assert out[3] and out[7]
        assert out[999] == []

    def test_matches_point_searches(self, db, btree):
        txn = db.begin()
        btree.multi_put(txn, [(i, f"r{i}") for i in range(60)])
        db.commit(txn)
        keys = [5, 17, 42, 59, 777]
        txn = db.begin()
        batched = btree.multi_get(txn, keys)
        single = {
            k: [r for _, r in btree.search(txn, Interval(k, k))]
            for k in keys
        }
        db.commit(txn)
        assert batched == single

    def test_duplicate_request_keys_collapse(self, db, loaded_btree):
        txn = db.begin()
        out = loaded_btree.multi_get(txn, [3, 3, 3])
        db.commit(txn)
        assert list(out) == [3]

    def test_single_descent_for_batch(self, db, btree):
        txn = db.begin()
        btree.multi_put(txn, [(i, f"r{i}") for i in range(30)])
        db.commit(txn)
        before = btree.stats.snapshot()
        txn = db.begin()
        btree.multi_get(txn, list(range(0, 30, 3)))
        db.commit(txn)
        after = btree.stats.snapshot()
        assert after["searches"] - before["searches"] == 1
        assert after["batch_descents_saved"] > before[
            "batch_descents_saved"
        ]

    def test_rtree_degrades_to_point_searches(self, db, rtree):
        # multi_eq_query is None for the R-tree: per-key degrade
        assert rtree.ext.multi_eq_query([Rect.point(0, 0)]) is None
        pts = [Rect.point(i / 10, i / 10) for i in range(5)]
        txn = db.begin()
        rtree.multi_put(txn, [(p, f"p{i}") for i, p in enumerate(pts)])
        db.commit(txn)
        txn = db.begin()
        out = rtree.multi_get(txn, pts[:3])
        db.commit(txn)
        assert all(out[p] for p in list(out)[:3])


class TestMultiDelete:
    def test_deletes_all_pairs(self, db, btree):
        pairs = [(i, f"r{i}") for i in range(30)]
        txn = db.begin()
        btree.multi_put(txn, pairs)
        db.commit(txn)
        txn = db.begin()
        assert btree.multi_delete(txn, pairs[5:25]) == 20
        db.commit(txn)
        assert _all(db, btree) == set(pairs[:5]) | set(pairs[25:])
        assert check_tree(btree).ok

    def test_missing_pair_raises_after_marking_found(self, db, btree):
        txn = db.begin()
        btree.multi_put(txn, [(1, "a"), (2, "b")])
        db.commit(txn)
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            btree.multi_delete(txn, [(1, "a"), (9, "ghost")])
        db.rollback(txn)
        assert _all(db, btree) == {(1, "a"), (2, "b")}

    def test_rollback_restores_entries(self, db, btree):
        pairs = [(i, f"r{i}") for i in range(20)]
        txn = db.begin()
        btree.multi_put(txn, pairs)
        db.commit(txn)
        txn = db.begin()
        btree.multi_delete(txn, pairs)
        db.rollback(txn)
        assert _all(db, btree) == set(pairs)

    def test_empty_batch(self, db, btree):
        txn = db.begin()
        assert btree.multi_delete(txn, []) == 0
        db.commit(txn)

    def test_rtree_degrades_per_pair(self, db, rtree):
        pairs = [
            (Rect.point(i / 10, i / 10), f"p{i}") for i in range(8)
        ]
        txn = db.begin()
        rtree.multi_put(txn, pairs)
        db.commit(txn)
        txn = db.begin()
        assert rtree.multi_delete(txn, pairs[:4]) == 4
        db.commit(txn)
        txn = db.begin()
        assert rtree.count(txn, Rect(0, 0, 1, 1)) == 4
        db.commit(txn)


class TestDatabaseWrappers:
    def test_database_level_batch_apis(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        txn = db.begin()
        assert db.multi_put(txn, "t", [(1, "a"), (2, "b")]) == 2
        db.commit(txn)
        txn = db.begin()
        assert db.multi_get(txn, "t", [1, 2, 3]) == {
            1: ["a"],
            2: ["b"],
            3: [],
        }
        assert db.multi_delete(txn, "t", [(1, "a")]) == 1
        db.commit(txn)

    def test_commit_many_groups_the_force(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("t", BTreeExtension())
        txns = [db.begin() for _ in range(4)]
        for i, txn in enumerate(txns):
            tree.insert(txn, i, f"r{i}")
        before = db.log.stats.snapshot()["flushes"]
        db.commit_many(txns)
        after = db.log.stats.snapshot()["flushes"]
        assert after - before == 1  # one force covers all four
        assert _all(db, tree) == {(i, f"r{i}") for i in range(4)}


class TestBatchLinearizability:
    def test_concurrent_multi_ops_linearize(self):
        db = Database(page_capacity=8, lock_timeout=10.0)
        tree = db.create_tree("t", BTreeExtension())
        recorder = HistoryRecorder()
        base = [(i, f"base{i}") for i in range(0, 40, 2)]
        txn = db.begin()
        tree.multi_put(txn, base)
        db.commit(txn)
        for key, rid in base:
            recorder.add(
                "insert", inv_ns=0, resp_ns=1, key=key, rid=rid
            )

        def writer(wid: int) -> None:
            pairs = [(k, f"w{wid}-{k}") for k in range(wid, 40, 4)]
            txn = db.begin()
            inv = time.perf_counter_ns()
            tree.multi_put(txn, pairs)
            db.commit(txn)
            resp = time.perf_counter_ns()
            for key, rid in pairs:
                recorder.add(
                    "insert", inv_ns=inv, resp_ns=resp, key=key, rid=rid
                )

        def reader() -> None:
            for _ in range(5):
                txn = db.begin()
                inv = time.perf_counter_ns()
                query = tree.ext.multi_eq_query(list(range(40)))
                found = tree.search(txn, query)
                db.commit(txn)
                resp = time.perf_counter_ns()
                recorder.add(
                    "search",
                    inv_ns=inv,
                    resp_ns=resp,
                    query=query,
                    result=[rid for _, rid in found],
                )

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in (1, 3)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        report = check_linearizability(
            recorder.ops(), lambda q, k: q.contains(k)
        )
        assert report.ok, str(report)
        assert check_tree(tree).ok
