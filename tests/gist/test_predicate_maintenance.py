"""The attachment invariant under structural change (section 4.3).

The hybrid mechanism's invariant — *a search predicate consistent with a
node's BP is attached to that node* — must survive the two structural
events the paper identifies: node splits (replication to the new
sibling) and BP expansion (percolation from ancestors).  These tests
drive the real tree through both events with a live reader and verify
the invariant and its consequences (the insert still blocks).
"""

import threading

from repro.database import Database
from repro.errors import TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.sync.latch import LatchMode


def attachment_invariant_holds(db, tree, txn, query) -> list[str]:
    """All nodes whose BP is consistent with the reader's predicate
    must carry the attachment.  Returns violations."""
    plocks = tree.predicates.predicates_of(txn.xid)
    assert len(plocks) == 1
    plock = plocks[0]
    violations = []
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            bp = frame.page.bp
        if bp is not None and tree.ext.consistent(bp, query):
            if pid not in plock.attachments:
                violations.append(f"node {pid} (bp={bp}) missing")
    return violations


class TestSplitReplication:
    def test_invariant_after_plain_search(self):
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("p", BTreeExtension())
        setup = db.begin()
        for i in range(12):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        reader = db.begin()
        query = Interval(0, 11)
        tree.search(reader, query)
        assert attachment_invariant_holds(db, tree, reader, query) == []
        db.commit(reader)

    def test_split_replicates_to_consistent_sibling_only(self):
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("p", BTreeExtension())
        setup = db.begin()
        for i in range(12):
            tree.insert(setup, i * 10, f"r{i}")
        db.commit(setup)
        reader = db.begin()
        query = Interval(0, 1000)
        tree.search(reader, query)

        done = threading.Event()

        def writer():
            txn = db.begin()
            try:
                # keys inside existing BPs: splits occur, and the
                # insert then blocks on the reader's predicate
                for i in range(12):
                    tree.insert(txn, i * 10 + 1, f"w{i}")
                db.commit(txn)
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
            done.set()

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.3)
        # while the writer is blocked (or after an abort), the invariant
        # must hold across whatever splits it completed
        violations = attachment_invariant_holds(db, tree, reader, query)
        assert violations == [], violations
        db.commit(reader)
        assert done.wait(15.0)
        t.join()


class TestPercolation:
    def test_bp_expansion_percolates_predicates(self):
        """A reader scanned [100, 200] — a region with no keys.  Its
        predicate sits on the root only (no child BP is consistent).  A
        writer inserting key 150 expands some leaf's BP into the
        scanned range; the percolation step must push the reader's
        predicate down to that leaf, and the writer must then block on
        it (phantom prevented)."""
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("p", BTreeExtension())
        setup = db.begin()
        for i in range(12):
            tree.insert(setup, i, f"r{i}")  # keys 0..11 only
        db.commit(setup)
        reader = db.begin()
        query = Interval(100, 200)
        assert tree.search(reader, query) == []
        plock = tree.predicates.predicates_of(reader.xid)[0]
        attached_before = set(plock.attachments)

        blocked = threading.Event()
        outcome = []

        def writer():
            txn = db.begin()
            blocked.set()
            try:
                tree.insert(txn, 150, "phantom")
                db.commit(txn)
                outcome.append("committed")
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass
                outcome.append("aborted")

        t = threading.Thread(target=writer)
        t.start()
        blocked.wait()
        t.join(0.4)
        if t.is_alive():
            # the writer is blocked; percolation must have attached the
            # reader's predicate to the expanded leaf
            assert set(plock.attachments) > attached_before
            # The reader's re-read stays empty.  Two legal endings: the
            # re-read passes immediately (writer still parked), or the
            # re-read blocks on the phantom's record lock, closing a
            # reader/writer cycle the detector breaks by aborting the
            # *younger* writer — either way, no phantom.
            assert tree.search(reader, query) == []
            db.commit(reader)
            t.join(15.0)
            assert outcome and outcome[0] in ("committed", "aborted")
        else:
            # symmetric race resolved by deadlock: also correct
            assert outcome and outcome[0] in ("committed", "aborted")
            db.commit(reader)

    def test_no_phantom_through_expansion_path(self):
        """End-to-end: double read of an empty range straddling a BP
        expansion never sees a phantom."""
        db = Database(page_capacity=4, lock_timeout=10.0)
        tree = db.create_tree("p", BTreeExtension())
        setup = db.begin()
        for i in range(12):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        reader = db.begin()
        first = tree.search(reader, Interval(100, 200))

        def writer():
            txn = db.begin()
            try:
                tree.insert(txn, 150, "phantom")
                db.commit(txn)
            except TransactionAbort:
                try:
                    db.rollback(txn)
                except Exception:
                    pass

        t = threading.Thread(target=writer)
        t.start()
        t.join(0.3)
        second = tree.search(reader, Interval(100, 200))
        assert first == second == []
        db.commit(reader)
        t.join(15.0)
