"""Root-split edge cases (the construction DESIGN.md §4b documents)."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.storage.page import NO_PAGE
from repro.sync.latch import LatchMode


def build(capacity=4):
    db = Database(page_capacity=capacity, lock_timeout=10.0)
    tree = db.create_tree("rs", BTreeExtension())
    return db, tree


class TestRootSplitStructure:
    def test_root_pid_is_stable_across_growth(self):
        db, tree = build()
        root_before = tree.root_pid
        txn = db.begin()
        for i in range(500):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        assert tree.root_pid == root_before
        assert tree.height() >= 4

    def test_root_never_has_rightlink(self):
        db, tree = build()
        txn = db.begin()
        for i in range(200):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        with db.pool.fixed(tree.root_pid, LatchMode.S) as frame:
            assert frame.page.rightlink == NO_PAGE

    def test_children_of_grown_root_are_chained(self):
        db, tree = build()
        txn = db.begin()
        for i in range(5):  # exactly one root split at capacity 4
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        with db.pool.fixed(tree.root_pid, LatchMode.S) as frame:
            page = frame.page
            assert page.is_internal and len(page.entries) == 2
            left_pid = page.entries[0].child
            right_pid = page.entries[1].child
        with db.pool.fixed(left_pid, LatchMode.S) as frame:
            assert frame.page.rightlink == right_pid
            left_nsn = frame.page.nsn
        with db.pool.fixed(right_pid, LatchMode.S) as frame:
            assert frame.page.rightlink == NO_PAGE
            assert frame.page.nsn == left_nsn  # both inherit the old NSN

    def test_internal_root_split(self):
        """The recursive case: a full *internal* root grows a level."""
        db, tree = build()
        txn = db.begin()
        # enough keys to grow past height 2 (internal root splits)
        for i in range(100):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        assert tree.height() >= 3
        assert tree.stats.root_splits >= 2
        assert check_tree(tree).ok

    def test_search_during_same_txn_after_root_split(self):
        db, tree = build()
        txn = db.begin()
        for i in range(5):
            tree.insert(txn, i, f"r{i}")
        # the stack the insert kept predates the root split; the
        # subsequent search must still be complete
        result = tree.search(txn, Interval(0, 4))
        assert len(result) == 5
        db.commit(txn)

    def test_rollback_of_txn_that_grew_root(self):
        """Root splits are atomic actions: rolling the transaction back
        removes its keys but the grown structure stays."""
        db, tree = build()
        txn = db.begin()
        for i in range(10):
            tree.insert(txn, i, f"r{i}")
        assert tree.stats.root_splits >= 1
        db.rollback(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 100)) == []
        db.commit(check)
        assert tree.height() >= 2  # structure survived the rollback
        assert check_tree(tree).ok

    def test_crash_right_after_root_split(self):
        db, tree = build()
        txn = db.begin()
        for i in range(5):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()  # nothing flushed: the grown root lives in the log
        db2 = db.restart({"rs": BTreeExtension()})
        tree2 = db2.tree("rs")
        check = db2.begin()
        assert len(tree2.search(check, Interval(0, 10))) == 5
        db2.commit(check)
        assert check_tree(tree2).ok
