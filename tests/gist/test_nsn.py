"""NSN sources (sections 3 and 10.1)."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.nsn import CounterNSN, LSNBasedNSN
from repro.storage.page import Page, PageKind
from repro.wal.log import LogManager
from repro.wal.records import CommitRecord


class TestCounterNSN:
    def test_monotonic_increments(self):
        nsn = CounterNSN()
        assert nsn.current() == 0
        assert nsn.next_for_split(99) == 1  # lsn argument ignored
        assert nsn.next_for_split(0) == 2
        assert nsn.current() == 2

    def test_memo_reads_global(self):
        nsn = CounterNSN()
        page = Page(pid=1, kind=PageKind.INTERNAL, page_lsn=77)
        reads_before = nsn.global_reads
        assert nsn.memo_for_children(page) == 0
        assert nsn.global_reads == reads_before + 1

    def test_note_recovered_never_regresses(self):
        nsn = CounterNSN()
        nsn.note_recovered(10)
        assert nsn.current() == 10
        nsn.note_recovered(5)
        assert nsn.current() == 10
        assert nsn.next_for_split(0) == 11


class TestLSNBasedNSN:
    def test_split_nsn_is_record_lsn(self):
        log = LogManager()
        nsn = LSNBasedNSN(log)
        assert nsn.next_for_split(42) == 42

    def test_current_is_end_of_log(self):
        log = LogManager()
        nsn = LSNBasedNSN(log)
        assert nsn.current() == 0
        log.append(CommitRecord(xid=1))
        assert nsn.current() == 1

    def test_memo_uses_parent_page_lsn_not_global(self):
        """The §10.1 optimization: no log-manager synchronization per
        child pointer."""
        log = LogManager()
        nsn = LSNBasedNSN(log)
        page = Page(pid=1, kind=PageKind.INTERNAL, page_lsn=7)
        reads_before = nsn.global_reads
        assert nsn.memo_for_children(page) == 7
        assert nsn.global_reads == reads_before  # no global read


class TestLSNModeEndToEnd:
    def test_tree_with_lsn_source_works(self):
        db = Database(page_capacity=4)
        tree = db.create_tree(
            "t", BTreeExtension(), nsn_source="lsn"
        )
        txn = db.begin()
        for i in range(200):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        assert len(tree.search(txn, Interval(0, 199))) == 200
        db.commit(txn)
        assert check_tree(tree).ok

    def test_lsn_mode_reads_global_counter_less(self):
        def global_reads_for(source: str) -> int:
            db = Database(page_capacity=4)
            tree = db.create_tree("t", BTreeExtension(), nsn_source=source)
            txn = db.begin()
            for i in range(100):
                tree.insert(txn, i, f"r{i}")
            db.commit(txn)
            txn = db.begin()
            for i in range(0, 100, 5):
                tree.search(txn, Interval(i, i + 4))
            db.commit(txn)
            return tree.nsn.global_reads

        counter_reads = global_reads_for("counter")
        lsn_reads = global_reads_for("lsn")
        assert lsn_reads < counter_reads  # the whole point of §10.1

    def test_lsn_mode_survives_crash(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("t", BTreeExtension(), nsn_source="lsn")
        txn = db.begin()
        for i in range(60):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        tree2 = db2.tree("t")
        # note: restart rebuilds trees with the default counter source;
        # re-wire the lsn source as an application would
        txn = db2.begin()
        assert len(tree2.search(txn, Interval(0, 59))) == 60
        db2.commit(txn)
        assert check_tree(tree2).ok
