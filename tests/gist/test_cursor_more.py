"""Additional cursor behaviours: interleaving, reuse, edge cases."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.txn.transaction import IsolationLevel


def build(n=60):
    db = Database(page_capacity=4, lock_timeout=10.0)
    tree = db.create_tree("cur", BTreeExtension())
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    return db, tree


class TestCursorInterleaving:
    def test_two_cursors_same_transaction(self):
        db, tree = build()
        txn = db.begin()
        a = tree.open_cursor(txn, Interval(0, 29))
        b = tree.open_cursor(txn, Interval(30, 59))
        rows = []
        while True:
            ra = a.fetch_next()
            rb = b.fetch_next()
            if ra is None and rb is None:
                break
            rows.extend(r for r in (ra, rb) if r is not None)
        a.close()
        b.close()
        db.commit(txn)
        assert {k for k, _ in rows} == set(range(60))

    def test_cursor_sees_own_transactions_inserts(self):
        db, tree = build(n=10)
        txn = db.begin()
        tree.insert(txn, 100, "mine")
        cursor = tree.open_cursor(txn, Interval(90, 110))
        rows = cursor.fetch_all()
        cursor.close()
        db.commit(txn)
        assert rows == [(100, "mine")]

    def test_cursor_results_never_duplicate_under_writer(self):
        """Footnote 9: rescans deduplicate by data RID even when the
        leaf splits mid-scan."""
        import threading

        db, tree = build(n=40)
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        cursor = tree.open_cursor(txn, Interval(0, 39))
        first_rows = [cursor.fetch_next() for _ in range(5)]

        def writer():
            wtxn = db.begin()
            for i in range(20):
                tree.insert(wtxn, 20 + i % 5, f"w{i}")
            db.commit(wtxn)

        t = threading.Thread(target=writer)
        t.start()
        t.join(20.0)
        rest = cursor.fetch_all()
        cursor.close()
        db.commit(txn)
        rids = [r for _, r in first_rows + rest]
        assert len(rids) == len(set(rids))
        # all 40 preloaded rows are found (they never moved logically)
        assert {f"r{i}" for i in range(40)} <= set(rids)

    def test_closed_cursor_is_idempotent(self):
        db, tree = build(n=5)
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 5))
        cursor.fetch_all()
        cursor.close()
        cursor.close()  # no error
        db.commit(txn)

    def test_abandoned_cursor_cleaned_by_close(self):
        db, tree = build()
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 59))
        cursor.fetch_next()  # stack still holds pointers
        assert cursor.stack
        cursor.close()
        assert cursor.stack == []
        db.commit(txn)


class TestEmptyAndDegenerate:
    def test_cursor_on_empty_tree(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("e", BTreeExtension())
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 10))
        assert cursor.fetch_next() is None
        cursor.close()
        db.commit(txn)

    def test_zero_width_interval(self):
        db, tree = build(n=10)
        txn = db.begin()
        assert tree.search(txn, Interval(5, 5)) == [(5, "r5")]
        db.commit(txn)

    def test_search_single_entry_tree(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("one", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 7, "only")
        db.commit(txn)
        txn = db.begin()
        assert tree.search(txn, Interval(0, 10)) == [(7, "only")]
        assert tree.search(txn, Interval(8, 10)) == []
        db.commit(txn)
