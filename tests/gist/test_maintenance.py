"""Garbage collection, BP shrinking, node deletion (sections 7.1–7.2)."""

from repro.ext.btree import Interval
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum
from repro.lock.modes import LockMode
from repro.sync.latch import LatchMode


def load(db, tree, n=40):
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)


class TestGarbageCollection:
    def test_vacuum_removes_committed_tombstones(self, db, btree):
        load(db, btree)
        txn = db.begin()
        for i in range(0, 40, 2):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(btree, txn)
        db.commit(txn)
        assert report.entries_collected == 20
        check = check_tree(btree)
        assert check.ok and check.leaf_entries == check.live_entries == 20

    def test_vacuum_spares_uncommitted_tombstones(self, db, btree):
        load(db, btree, n=10)
        deleter = db.begin()
        btree.delete(deleter, 3, "r3")
        vac_txn = db.begin()
        report = vacuum(btree, vac_txn)
        db.commit(vac_txn)
        assert report.entries_collected == 0
        db.rollback(deleter)  # the entry must still be unmarked-able
        check = db.begin()
        assert btree.search(check, Interval(3, 3)) == [(3, "r3")]
        db.commit(check)

    def test_vacuum_spares_aborted_deleters_leftovers(self, db, btree):
        load(db, btree, n=10)
        txn = db.begin()
        btree.delete(txn, 3, "r3")
        db.rollback(txn)  # unmarked again
        vac = db.begin()
        report = vacuum(btree, vac)
        db.commit(vac)
        assert report.entries_collected == 0

    def test_insert_triggers_opportunistic_gc(self, db, btree):
        """A full leaf with committed tombstones is GC'd instead of
        split (section 7.1)."""
        txn = db.begin()
        for i in range(4):  # page_capacity=4: root leaf now full
            btree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        btree.delete(txn, 0, "r0")
        db.commit(txn)
        splits_before = btree.stats.splits
        txn = db.begin()
        btree.insert(txn, 9, "r9")
        db.commit(txn)
        assert btree.stats.gc_runs >= 1
        assert btree.stats.splits == splits_before  # GC avoided the split


class TestBPShrinking:
    def test_vacuum_shrinks_wide_bps(self, db, btree):
        load(db, btree)
        txn = db.begin()
        for i in range(30, 40):  # delete the high end
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(btree, txn)
        db.commit(txn)
        assert report.bps_shrunk > 0
        assert check_tree(btree).ok
        # no BP should extend beyond the remaining key range on leaves
        for pid in btree.all_pids():
            with db.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if page.is_leaf and page.bp is not None and page.entries:
                    assert page.bp.hi <= 29


class TestNodeDeletion:
    def test_vacuum_deletes_empty_nodes(self, db, btree):
        load(db, btree)
        pages_before = btree.page_count()
        txn = db.begin()
        for i in range(40):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(btree, txn)
        db.commit(txn)
        assert report.nodes_deleted > 0
        assert btree.page_count() < pages_before
        assert check_tree(btree).ok

    def test_signaling_lock_blocks_deletion(self, db, btree):
        """The drain technique: a node with a signaling lock must not be
        deleted (section 7.2)."""
        load(db, btree)
        txn = db.begin()
        for i in range(40):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        # simulate an operation holding a stacked pointer to every node
        holder = db.begin()
        for pid in btree.all_pids():
            db.locks.acquire(
                holder.xid, btree.node_lock(pid), LockMode.S
            )
        vac = db.begin()
        report = vacuum(btree, vac)
        db.commit(vac)
        assert report.nodes_deleted == 0
        assert report.deletions_blocked > 0
        db.commit(holder)
        # once the locks are gone, vacuum can reclaim
        vac = db.begin()
        report = vacuum(btree, vac)
        db.commit(vac)
        assert report.nodes_deleted > 0

    def test_freed_pages_are_reused_by_splits(self, db, btree):
        load(db, btree)
        txn = db.begin()
        for i in range(40):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        report = vacuum(btree, txn)
        db.commit(txn)
        freed = set(report.freed_pids)
        assert freed
        load(db, btree)  # grow again: splits allocate pages
        reused = freed & set(btree.all_pids())
        assert reused  # at least one freed page came back

    def test_full_delete_then_vacuum_collapses_to_empty_leaf(
        self, db, btree
    ):
        load(db, btree)
        txn = db.begin()
        for i in range(40):
            btree.delete(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        vacuum(btree, txn)
        db.commit(txn)
        with db.pool.fixed(btree.root_pid, LatchMode.S) as frame:
            assert frame.page.is_leaf
            assert frame.page.entries == []
        # the tree remains fully usable
        load(db, btree, n=20)
        txn = db.begin()
        assert len(btree.search(txn, Interval(0, 19))) == 20
        db.commit(txn)
        assert check_tree(btree).ok

    def test_vacuum_on_empty_tree_is_noop(self, db, btree):
        txn = db.begin()
        report = vacuum(btree, txn)
        db.commit(txn)
        assert report.nodes_deleted == 0
        assert report.entries_collected == 0
