"""Leaf-hint descent cache: validation protocol, invalidation, stress.

The ISSUE's contract: a hint must never bypass the NSN check, never land
on a FREE/reused page, and never survive a ``Database`` restart.  The
fallback is always the plain root descent, so every test also asserts
end-state correctness against it.
"""

import random
import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.maintenance import vacuum
from repro.txn.transaction import IsolationLevel


def make_db(**kw):
    kw.setdefault("page_capacity", 4)
    kw.setdefault("leaf_hints", True)
    kw.setdefault("pool_shards", 4)
    kw.setdefault("lock_timeout", 20.0)
    db = Database(**kw)
    tree = db.create_tree("t", BTreeExtension())
    return db, tree


def seed_tree(db, tree, n=300, seed=7):
    keys = list(range(n))
    random.Random(seed).shuffle(keys)
    txn = db.begin()
    for k in keys:
        tree.insert(txn, k, f"r{k}")
    db.commit(txn)
    return keys


class TestInsertHints:
    def test_repeat_vicinity_inserts_hit(self):
        db, tree = make_db()
        seed_tree(db, tree)
        txn = db.begin()
        tree.insert(txn, 150, "dup-0")
        before = tree.stats.hint_hits
        for i in range(1, 6):
            tree.insert(txn, 150, f"dup-{i}")
        db.commit(txn)
        assert tree.stats.hint_hits > before
        assert tree.stats.hint_descents_saved >= tree.stats.hint_hits > 0
        txn = db.begin()
        rows = tree.search(txn, 150)
        db.commit(txn)
        assert {rid for _, rid in rows} == {"r150"} | {
            f"dup-{i}" for i in range(6)
        }
        assert check_tree(tree).ok

    def test_hints_off_by_default(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("t", BTreeExtension())
        seed_tree(db, tree, n=100)
        txn = db.begin()
        for i in range(5):
            tree.insert(txn, 50, f"d{i}")
        db.commit(txn)
        assert tree.stats.hint_hits == 0
        assert tree.stats.hint_misses == 0

    def test_stale_hint_follows_rightlink_after_foreign_split(self):
        """The NSN check is never bypassed: another thread splits the
        hinted leaf, so this thread's memo is stale and the hinted
        descent must walk the rightlink chain to the correct sibling."""
        db, tree = make_db()
        seed_tree(db, tree)
        # Record a hint in the main thread.
        txn = db.begin()
        tree.insert(txn, 200, "mine-0")
        db.commit(txn)
        hint = tree._hint_state()["insert"]
        assert hint is not None
        splits_before = tree.stats.splits

        def splitter():
            stxn = db.begin()
            for i in range(40):
                tree.insert(stxn, 200, f"other-{i}")
            db.commit(stxn)

        t = threading.Thread(target=splitter)
        t.start()
        t.join(60)
        assert not t.is_alive()
        assert tree.stats.splits > splits_before
        # The main thread still holds its now-stale hint.
        assert tree._hint_state()["insert"] == hint
        txn = db.begin()
        for i in range(1, 6):
            tree.insert(txn, 200, f"mine-{i}")
        db.commit(txn)
        txn = db.begin()
        rids = {rid for _, rid in tree.search(txn, 200)}
        db.commit(txn)
        assert {f"mine-{i}" for i in range(6)} <= rids
        assert {f"other-{i}" for i in range(40)} <= rids
        assert check_tree(tree).ok

    def test_hint_invalidated_by_node_deletion(self):
        """A hint pointing at a drained-and-freed node must miss: the
        deleter bumps the hint epoch under the victim's X latch, so the
        hinted descent can never land on the FREE (or reused) page."""
        db, tree = make_db()
        seed_tree(db, tree)
        txn = db.begin()
        tree.insert(txn, 250, "doomed")
        db.commit(txn)
        hint = tree._hint_state()["insert"]
        assert hint is not None
        hinted_pid = hint[0]
        # Empty out a wide band around the hinted leaf, then vacuum.
        txn = db.begin()
        tree.delete_where(txn, Interval(220, 299))
        db.commit(txn)
        vtxn = db.begin()
        report = vacuum(tree, vtxn)
        db.commit(vtxn)
        assert hinted_pid in report.freed_pids
        # The stale hint is still in thread-local state but the epoch
        # moved; the next insert must fall back to a root descent.
        misses_before = tree.stats.hint_misses
        txn = db.begin()
        tree.insert(txn, 250, "reborn")
        db.commit(txn)
        assert tree.stats.hint_misses > misses_before
        txn = db.begin()
        rows = tree.search(txn, 250)
        db.commit(txn)
        assert [rid for _, rid in rows] == ["reborn"]
        assert check_tree(tree).ok

    def test_hints_do_not_survive_restart(self):
        db, tree = make_db()
        seed_tree(db, tree, n=120)
        txn = db.begin()
        tree.insert(txn, 60, "pre-crash")
        db.commit(txn)
        assert tree._hint_state()["insert"] is not None
        db.checkpoint()
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        tree2 = db2.tree("t")
        # Knobs propagate, hint state does not.
        assert tree2.leaf_hints is True
        assert db2.pool_shards == db.pool_shards
        assert tree2._hint_state()["insert"] is None
        assert tree2._hint_state()["search"] is None
        txn = db2.begin()
        rids = {rid for _, rid in tree2.search(txn, 60)}
        tree2.insert(txn, 60, "post-crash")
        db2.commit(txn)
        assert "pre-crash" in rids
        assert check_tree(tree2).ok


class TestSearchHints:
    def test_repeat_point_search_hits(self):
        db, tree = make_db()
        seed_tree(db, tree)
        results = []
        for _ in range(4):
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            results.append(tree.search(txn, 42))
            db.commit(txn)
        assert all(r == [(42, "r42")] for r in results)
        # First search records the hint; later ones replay it.
        assert tree.stats.hint_hits >= 2

    def test_hinted_search_sees_new_duplicates(self):
        """Correctness across invalidation: an insert that lands after
        the hint was recorded must still be visible to a replayed (or
        fallen-back) search."""
        db, tree = make_db()
        seed_tree(db, tree)
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        assert tree.search(txn, 77) == [(77, "r77")]
        db.commit(txn)
        txn = db.begin()
        for i in range(8):
            tree.insert(txn, 77, f"late-{i}")
        db.commit(txn)
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        rids = {rid for _, rid in tree.search(txn, 77)}
        db.commit(txn)
        assert rids == {"r77"} | {f"late-{i}" for i in range(8)}

    def test_range_queries_never_recorded(self):
        db, tree = make_db()
        seed_tree(db, tree)
        for _ in range(3):
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            tree.search(txn, Interval(10, 90))
            db.commit(txn)
        assert tree._hint_state()["search"] is None

    def test_repeatable_read_never_uses_hints(self):
        """RR needs predicate attachment along the whole descent; the
        hint shortcut is categorically disabled for it."""
        db, tree = make_db()
        seed_tree(db, tree)
        hits_after_seed = tree.stats.hint_hits
        for _ in range(3):
            txn = db.begin(IsolationLevel.REPEATABLE_READ)
            assert tree.search(txn, 42) == [(42, "r42")]
            db.commit(txn)
        assert tree._hint_state()["search"] is None
        assert tree.stats.hint_hits == hits_after_seed


class TestHintStress:
    def test_concurrent_localized_writers_with_vacuum(self):
        """Hinted descents racing splits, logical deletes and vacuum
        node-deletions must preserve tree integrity and never lose an
        insert."""
        db, tree = make_db(page_capacity=8)
        seed_tree(db, tree, n=400)
        inserted = []
        ilock = threading.Lock()
        stop = threading.Event()

        def writer(wid):
            rng = random.Random(100 + wid)
            center = 50 + wid * 100  # per-thread vicinity => hint hits
            for batch in range(15):
                txn = db.begin()
                local = []
                for i in range(6):
                    key = center + rng.randrange(10)
                    rid = f"w{wid}-{batch}-{i}"
                    tree.insert(txn, key, rid)
                    local.append((key, rid))
                db.commit(txn)
                with ilock:
                    inserted.extend(local)

        def vacuumer():
            rng = random.Random(99)
            while not stop.is_set():
                txn = db.begin()
                lo = rng.randrange(350)
                # Delete seed rows only — never the writers' rids.
                for key, rid in tree.search(txn, Interval(lo, lo + 25)):
                    if rid == f"r{key}":
                        tree.delete(txn, key, rid)
                db.commit(txn)
                vtxn = db.begin()
                vacuum(tree, vtxn)
                db.commit(vtxn)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        vt = threading.Thread(target=vacuumer)
        for t in threads:
            t.start()
        vt.start()
        for t in threads:
            t.join(120)
        stop.set()
        vt.join(120)
        assert not any(t.is_alive() for t in threads) and not vt.is_alive()
        assert tree.stats.hint_hits > 0  # the cache actually engaged
        txn = db.begin()
        found = {
            (key, rid)
            for key, rid in tree.search(txn, Interval(0, 1000))
            if not rid.startswith("r")
        }
        db.commit(txn)
        assert found == set(inserted)
        report = check_tree(tree)
        assert report.ok, report.errors
