"""The invariant checker itself must catch real corruption."""

from repro.ext.btree import Interval
from repro.gist.checker import check_tree
from repro.storage.page import LeafEntry
from repro.sync.latch import LatchMode


def load(db, tree, n=60):
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)


def leaf_pids(db, tree):
    out = []
    for pid in tree.all_pids():
        with db.pool.fixed(pid, LatchMode.S) as frame:
            if frame.page.is_leaf:
                out.append(pid)
    return out


class TestCleanTreesPass:
    def test_fresh_tree(self, db, btree):
        assert check_tree(btree).ok

    def test_loaded_tree(self, db, btree):
        load(db, btree)
        report = check_tree(btree)
        assert report.ok
        assert report.live_entries == 60
        assert report.pages == len(btree.all_pids())


class TestCorruptionIsCaught:
    def test_dangling_downlink(self, db, btree):
        load(db, btree)
        with db.pool.fixed(btree.root_pid, LatchMode.X) as frame:
            frame.page.entries[0].child = 99_999
        report = check_tree(btree, check_reachability=False)
        assert not report.ok
        assert any("dangling" in e or "unreachable" in e for e in report.errors)

    def test_bp_not_covering_content(self, db, btree):
        load(db, btree)
        victim = leaf_pids(db, btree)[0]
        with db.pool.fixed(victim, LatchMode.X) as frame:
            frame.page.entries.append(LeafEntry(10**6, "alien"))
        report = check_tree(btree, check_reachability=False)
        assert not report.ok

    def test_duplicate_rid_across_leaves(self, db, btree):
        load(db, btree)
        pids = leaf_pids(db, btree)
        with db.pool.fixed(pids[0], LatchMode.S) as frame:
            entry = frame.page.entries[0].copy()
        with db.pool.fixed(pids[1], LatchMode.X) as frame:
            frame.page.entries.append(entry)
        report = check_tree(btree, check_reachability=False)
        assert not report.ok
        assert any("RID" in e for e in report.errors)

    def test_level_mismatch(self, db, btree):
        load(db, btree)
        victim = leaf_pids(db, btree)[0]
        with db.pool.fixed(victim, LatchMode.X) as frame:
            frame.page.level = 5
        report = check_tree(btree, check_reachability=False)
        assert not report.ok

    def test_rightlink_cycle(self, db, btree):
        load(db, btree)
        pids = leaf_pids(db, btree)
        with db.pool.fixed(pids[0], LatchMode.X) as frame:
            frame.page.rightlink = pids[0]  # self-loop
        report = check_tree(btree, check_reachability=False)
        assert not report.ok
        assert any("cycle" in e for e in report.errors)

    def test_nsn_beyond_counter(self, db, btree):
        load(db, btree)
        victim = leaf_pids(db, btree)[0]
        with db.pool.fixed(victim, LatchMode.X) as frame:
            frame.page.nsn = 10**9
        report = check_tree(btree, check_reachability=False)
        assert not report.ok
        assert any("NSN" in e for e in report.errors)

    def test_unreachable_live_entry(self, db, btree):
        load(db, btree)
        # shrink a downlink predicate so its subtree's keys fall outside
        with db.pool.fixed(btree.root_pid, LatchMode.X) as frame:
            entry = frame.page.entries[0]
            entry.pred = Interval(-10, -5)
        report = check_tree(btree)
        assert not report.ok
