"""Op-scoped span trees: lifecycle, attribution, database wiring."""

import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.obs.export import load_jsonl
from repro.obs.spans import ATTRIBUTION_FIELDS, SpanTracker


class TestSpanLifecycle:
    def test_begin_finish_produces_a_timed_span(self):
        tracker = SpanTracker()
        span = tracker.begin("insert", tree="t")
        assert span is not None
        assert tracker.active() is span
        tracker.finish(span)
        assert tracker.active() is None
        assert span.total_ns > 0
        assert span.cpu_ns <= span.total_ns

    def test_nested_begin_folds_into_outermost(self):
        tracker = SpanTracker()
        outer = tracker.begin("delete")
        inner = tracker.begin("search")
        assert inner is None
        # attribution during the nested phase lands on the outer span
        tracker.add_io(100)
        assert outer.io_ns == 100
        tracker.finish(inner)  # no-op
        assert tracker.active() is outer
        tracker.finish(outer)
        assert tracker.active() is None

    def test_started_counts_every_span_ever_begun(self):
        tracker = SpanTracker(capacity=2)
        for _ in range(5):
            tracker.finish(tracker.begin("search"))
        assert tracker.started == 5
        # the ring retains only the newest `capacity` spans
        assert len(tracker.completed()) == 2

    def test_spans_are_thread_local(self):
        tracker = SpanTracker()
        main_span = tracker.begin("insert")
        seen = {}

        def other():
            seen["active"] = tracker.active()
            span = tracker.begin("search")
            seen["own"] = span
            tracker.add_lock_wait(7)
            tracker.finish(span)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen["active"] is None
        assert seen["own"] is not None
        assert seen["own"].lock_wait_ns == 7
        assert main_span.lock_wait_ns == 0
        tracker.finish(main_span)


class TestAttribution:
    def test_hooks_are_noops_without_an_active_span(self):
        tracker = SpanTracker()
        tracker.add_latch_wait(1)
        tracker.add_lock_wait(1)
        tracker.add_io(1)
        tracker.add_wal(1)
        tracker.note_wal_append()
        tracker.note_fix()
        tracker.note_event("gist.split", pid=1)
        assert tracker.completed() == []

    def test_hooks_accumulate_on_the_active_span(self):
        tracker = SpanTracker()
        span = tracker.begin("insert")
        tracker.add_latch_wait(10)
        tracker.add_latch_wait(5)
        tracker.add_lock_wait(20)
        tracker.add_io(30)
        tracker.add_wal(40)
        tracker.note_wal_append()
        tracker.note_wal_append()
        tracker.note_fix()
        tracker.note_event("gist.split", pid=3, new_pid=4)
        tracker.finish(span)
        assert span.latch_wait_ns == 15
        assert span.lock_wait_ns == 20
        assert span.io_ns == 30
        assert span.wal_ns == 40
        assert span.wal_appends == 2
        assert span.buffer_fixes == 1
        assert span.events == [("gist.split", {"pid": 3, "new_pid": 4})]

    def test_cpu_is_the_unattributed_residue(self):
        tracker = SpanTracker()
        span = tracker.begin("search")
        tracker.finish(span)
        waits = sum(getattr(span, f) for f in ATTRIBUTION_FIELDS)
        assert span.cpu_ns == span.total_ns - waits
        # cpu never goes negative even if attribution overshoots
        span.io_ns = span.total_ns * 2
        assert span.cpu_ns == 0

    def test_finish_feeds_per_kind_aggregates(self):
        tracker = SpanTracker()
        for _ in range(3):
            span = tracker.begin("insert")
            tracker.add_io(100)
            tracker.finish(span)
        snap = tracker.metrics.snapshot()
        assert snap["op"]["insert"]["count"] == 3
        assert snap["op"]["insert"]["io_ns"] == 300
        assert snap["op"]["insert"]["total_ns"]["count"] == 3

    def test_as_dict_and_export_roundtrip(self, tmp_path):
        tracker = SpanTracker()
        span = tracker.begin("delete", tree="t")
        tracker.note_event("gist.split", pid=9)
        tracker.finish(span)
        d = span.as_dict()
        assert d["kind"] == "delete"
        assert d["tree"] == "t"
        assert d["events"] == [{"name": "gist.split", "pid": 9}]
        path = tracker.export_jsonl(str(tmp_path / "spans.jsonl"))
        (loaded,) = load_jsonl(path)
        assert loaded["op_id"] == span.op_id
        assert loaded["total_ns"] == span.total_ns


class TestDatabaseWiring:
    def test_tracing_off_by_default(self):
        db = Database(page_capacity=8)
        assert db.spans is None
        db.create_tree("t", BTreeExtension())
        txn = db.begin()
        db.tree("t").insert(txn, 1, "r1")
        db.commit(txn)
        assert "op" not in db.metrics.snapshot()

    def test_traced_operations_attribute_their_work(self):
        db = Database(page_capacity=8, op_tracing=True)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, i, f"r{i}")
        tree.search(txn, Interval(0, 50))
        db.commit(txn)
        kinds = {s.kind for s in db.spans.completed()}
        assert {"insert", "search", "commit"} <= kinds
        inserts = [s for s in db.spans.completed() if s.kind == "insert"]
        assert all(s.buffer_fixes > 0 for s in inserts)
        assert all(s.wal_appends > 0 for s in inserts)
        commits = [s for s in db.spans.completed() if s.kind == "commit"]
        # commit forces the log: the flush wait is attributed to WAL
        assert any(s.wal_ns > 0 for s in commits)
        snap = db.metrics.snapshot()
        assert snap["op"]["insert"]["count"] == 40
        assert snap["op"]["insert"]["buffer_fixes"] > 0

    def test_split_lands_as_a_span_event(self):
        db = Database(page_capacity=4, op_tracing=True)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        events = [
            name
            for span in db.spans.completed()
            for name, _ in span.events
        ]
        assert "gist.root_split" in events
        assert "gist.split" in events

    def test_abort_span_kind(self):
        db = Database(page_capacity=8, op_tracing=True)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.rollback(txn)
        kinds = [s.kind for s in db.spans.completed()]
        assert "abort" in kinds
