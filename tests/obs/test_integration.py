"""End-to-end wiring of the observability layer.

A real workload against a full :class:`~repro.database.Database` must
leave traces in every subsystem's corner of ``db.metrics.snapshot()``
— the dotted names asserted here are the public contract documented in
README.md's "Observability" section.
"""

import json

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.maintenance import vacuum
from repro.lock.modes import LockMode
from repro.tools.inspect import dump_stats


def run_workload(db, tree, n=60):
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, i, f"r{i}")
    db.commit(txn)
    txn = db.begin()
    for i in range(0, n, 7):
        tree.search(txn, Interval(i, i + 5))
    db.commit(txn)
    txn = db.begin()
    for i in range(0, n, 3):
        tree.delete(txn, i, f"r{i}")
    db.commit(txn)


class TestSnapshotWiring:
    def test_every_subsystem_reports(self):
        # a small pool forces misses and evictions alongside the hits
        # (but large enough for the pinned set of a root-split chain)
        db = Database(page_capacity=4, pool_capacity=16)
        tree = db.create_tree("obs", BTreeExtension())
        run_workload(db, tree)
        snap = db.metrics.snapshot()

        # latches: acquisitions are batched (1 in LatchTimer.SAMPLE_EVERY
        # is timed); this workload makes hundreds of them
        assert snap["latch"]["acquisitions"] > 0
        assert snap["latch"]["wait_ns"]["count"] > 0
        assert snap["latch"]["hold_ns"]["count"] > 0

        buf = snap["buffer"]
        assert buf["hits"] > 0
        assert buf["misses"] > 0
        assert buf["evictions"] > 0
        assert 0.0 < buf["hit_rate"] <= 1.0

        assert snap["wal"]["appends"] > 0
        assert snap["wal"]["flushes"] > 0

        assert snap["lock"]["acquires"] > 0

        g = snap["gist"]
        assert g["searches"] > 0
        assert g["inserts"] > 0
        assert g["deletes"] > 0
        assert g["splits"] > 0
        assert g["op"]["search_ns"]["count"] == g["searches"]
        assert g["op"]["insert_ns"]["count"] == g["inserts"]
        assert g["op"]["delete_ns"]["count"] == g["deletes"]
        # rare protocol counters are present even when the quiet
        # single-thread workload never trips them (scenario tests
        # provoke them deterministically)
        assert g["restarts"]["nsn_mismatch"] >= 0
        assert g["drain"]["waits"] >= 0

        assert snap["io"]["reads"] > 0
        assert snap["io"]["writes"] > 0

        assert snap["txn"]["committed"] == 3
        assert snap["txn"]["active"] == 0

    def test_registry_counters_match_per_tree_stats(self):
        """The shared gist.* counters mirror tree.stats exactly when a
        single tree is active."""
        db = Database(page_capacity=4)
        tree = db.create_tree("mirror", BTreeExtension())
        run_workload(db, tree, n=30)
        snap = db.metrics.snapshot()["gist"]
        stats = tree.stats.snapshot()
        assert snap["searches"] == stats["searches"]
        assert snap["inserts"] == stats["inserts"]
        assert snap["splits"] == stats["splits"]
        assert snap["restarts"]["nsn_mismatch"] == stats["nsn_restarts"]

    def test_drain_waits_surface_in_snapshot(self):
        """The section 7.2 drain technique shows up as gist.drain.waits:
        vacuum finds empty nodes pinned by signaling locks."""
        db = Database(page_capacity=4, lock_timeout=5.0)
        tree = db.create_tree("drain", BTreeExtension())
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        txn = db.begin()
        for i in range(40):
            tree.delete(txn, i, f"r{i}")
        db.commit(txn)
        holder = db.begin()
        for pid in tree.all_pids():
            db.locks.acquire(holder.xid, tree.node_lock(pid), LockMode.S)
        vac = db.begin()
        report = vacuum(tree, vac)
        db.commit(vac)
        db.commit(holder)
        assert report.deletions_blocked > 0
        assert db.metrics.snapshot()["gist"]["drain"]["waits"] > 0


class TestExporters:
    def test_dump_stats_renders_contract_names(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("dump", BTreeExtension())
        run_workload(db, tree, n=30)
        text = dump_stats(db)
        for name in (
            "wal.appends",
            "buffer.hits",
            "lock.acquires",
            "latch.wait_ns",
            "gist.op.insert_ns",
        ):
            assert name in text, f"{name} missing from dump_stats output"

    def test_to_json_parses_and_nests(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("json", BTreeExtension())
        run_workload(db, tree, n=30)
        parsed = json.loads(db.metrics.to_json())
        assert parsed["wal"]["appends"] > 0
        assert parsed["gist"]["op"]["insert_ns"]["count"] > 0


class TestRestartContinuity:
    def test_recovery_metrics_and_wal_totals_carry_over(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("obs", BTreeExtension())
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        appends_before = db.log.stats.appends
        assert appends_before > 0
        db.crash()
        db2 = db.restart({"obs": BTreeExtension()})
        snap = db2.metrics.snapshot()
        assert snap["recovery"]["runs"] == 1
        assert snap["recovery"]["analysis_ns"]["count"] == 1
        assert snap["recovery"]["redo_ns"]["count"] == 1
        assert snap["recovery"]["undo_ns"]["count"] == 1
        # the log manager survives the restart: its totals are
        # cumulative across the crash boundary
        assert snap["wal"]["appends"] >= appends_before
        # and the recovered tree still works
        txn = db2.begin()
        assert db2.tree("obs").search(txn, Interval(5, 5)) == [(5, "r5")]
        db2.commit(txn)


class TestDisabledEndToEnd:
    def test_disabled_database_works_and_reports_nothing(self):
        db = Database(page_capacity=4, metrics_enabled=False)
        tree = db.create_tree("quiet", BTreeExtension())
        run_workload(db, tree, n=30)
        assert db.metrics.snapshot() == {}
        assert db.metrics.to_json() == "{}"
        # subsystem counters that are plain ints under their own mutex
        # still count — only the registry is silent
        assert db.pool.hits > 0
        assert db.log.stats.appends > 0
        txn = db.begin()
        assert tree.search(txn, Interval(1, 1)) == [(1, "r1")]
        db.commit(txn)
