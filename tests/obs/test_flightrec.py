"""Flight recorder: rings, black-box dumps, replay determinism."""

import threading

from repro.database import Database
from repro.ext.btree import BTreeExtension
from repro.obs.export import (
    NONDETERMINISTIC_FIELDS,
    canonical_events,
    load_jsonl,
)
from repro.obs.flightrec import FlightRecorder


class TestRecording:
    def test_events_carry_sequence_and_data(self):
        fr = FlightRecorder()
        fr.record("txn.begin", xid=7)
        fr.record("txn.commit", xid=7)
        first, second = fr.events()
        assert (first.name, first.data) == ("txn.begin", {"xid": 7})
        assert second.name == "txn.commit"
        assert first.seq < second.seq
        assert len(fr) == 2

    def test_ring_is_a_window_but_writes_are_exact(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record("e", i=i)
        assert len(fr) == 4
        assert [e.data["i"] for e in fr.events()] == [6, 7, 8, 9]
        assert fr.writes() == 10

    def test_last_n(self):
        fr = FlightRecorder()
        for i in range(5):
            fr.record("e", i=i)
        assert [e.data["i"] for e in fr.last(2)] == [3, 4]
        assert fr.last(0) == []

    def test_clear_drops_events_not_write_count(self):
        fr = FlightRecorder()
        fr.record("e")
        fr.clear()
        assert len(fr) == 0
        assert fr.writes() == 1

    def test_multithreaded_records_merge_in_seq_order(self):
        fr = FlightRecorder(capacity=1000)
        barrier = threading.Barrier(4)

        def worker(tid):
            barrier.wait()
            for i in range(100):
                fr.record("w", tid=tid, i=i)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = fr.events()
        assert len(events) == 400
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 400

    def test_snapshot_during_concurrent_append(self):
        fr = FlightRecorder(capacity=64)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                fr.record("w")

        threads = [threading.Thread(target=writer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                for event in fr.events():
                    assert event.name == "w"
                fr.clear()
                len(fr)
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestBlackBox:
    def test_dump_and_load_roundtrip(self, tmp_path):
        fr = FlightRecorder()
        fr.record("txn.begin", xid=1)
        fr.record("db.crash", flushed_lsn=12)
        path = fr.dump(str(tmp_path / "box.jsonl"))
        loaded = load_jsonl(path)
        assert [e["name"] for e in loaded] == ["txn.begin", "db.crash"]
        assert loaded[0]["data"] == {"xid": 1}
        assert all("ts_ns" in e and "thread" in e for e in loaded)

    def test_canonical_form_excludes_nondeterministic_fields(self):
        assert NONDETERMINISTIC_FIELDS == ("ts_ns", "thread")
        fr_a = FlightRecorder()
        fr_b = FlightRecorder()
        for fr in (fr_a, fr_b):
            fr.record("txn.begin", xid=1)
            fr.record("txn.commit", xid=1)
        # same logical sequence, different timestamps/threads: the
        # replay core is identical
        assert fr_a.canonical() == fr_b.canonical()
        for seq, name, data in fr_a.canonical():
            assert "ts_ns" not in data and "thread" not in data

    def test_dumped_file_replays_to_the_same_canonical_form(
        self, tmp_path
    ):
        fr = FlightRecorder()
        fr.record("lock.deadlock_victim", victim="x3")
        path = fr.dump(str(tmp_path / "box.jsonl"))
        assert canonical_events(load_jsonl(path)) == fr.canonical()


class TestDatabaseWiring:
    def test_on_by_default_and_records_txn_boundaries(self):
        db = Database(page_capacity=8)
        assert db.flightrec is not None
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        txn2 = db.begin()
        tree.insert(txn2, 2, "r2")
        db.rollback(txn2)
        names = [e.name for e in db.flightrec.events()]
        assert "txn.begin" in names
        assert "txn.commit" in names
        assert "txn.abort" in names

    def test_can_be_disabled(self):
        db = Database(page_capacity=8, flight_recorder=False)
        assert db.flightrec is None
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)

    def test_capacity_knob(self):
        db = Database(page_capacity=8, flight_capacity=3)
        tree = db.create_tree("t", BTreeExtension())
        for i in range(5):
            txn = db.begin()
            tree.insert(txn, i, f"r{i}")
            db.commit(txn)
        assert len(db.flightrec) == 3

    def test_black_box_survives_crash_and_restart(self):
        db = Database(page_capacity=8)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "r1")
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        # the recorder is the external observer: same instance, and the
        # pre-crash events are still in the box after recovery
        assert db2.flightrec is db.flightrec
        names = [e.name for e in db2.flightrec.events()]
        assert "txn.commit" in names  # pre-crash history retained
        assert "db.crash" in names
        assert "db.restart" in names
        assert "db.recovered" in names

    def test_splits_recorded(self):
        db = Database(page_capacity=4)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        for i in range(30):
            tree.insert(txn, i, f"r{i}")
        db.commit(txn)
        names = {e.name for e in db.flightrec.events()}
        assert "gist.root_split" in names
        assert "gist.split" in names
