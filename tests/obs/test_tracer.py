"""Unit tests for the structured-event tracer (per-thread rings)."""

import threading
import time

from repro.obs.tracer import Tracer


class TestRecording:
    def test_event_carries_data(self):
        tracer = Tracer()
        tracer.event("gist.split", tree="t", pid=7)
        (event,) = tracer.events()
        assert event.name == "gist.split"
        assert event.dur_ns is None
        assert event.data == {"tree": "t", "pid": 7}

    def test_record_span_carries_duration(self):
        tracer = Tracer()
        tracer.record_span("op", 1234, tree="t")
        (event,) = tracer.events()
        assert event.dur_ns == 1234
        assert event.data == {"tree": "t"}

    def test_span_context_manager_times_its_body(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.dur_ns >= 1_000_000  # at least 1ms of the 2ms sleep

    def test_as_dict_shape(self):
        tracer = Tracer()
        tracer.record_span("op", 5, k="v")
        d = tracer.events()[0].as_dict()
        assert d["name"] == "op"
        assert d["dur_ns"] == 5
        assert d["data"] == {"k": "v"}
        tracer.clear()
        tracer.event("point")
        d = tracer.events()[0].as_dict()
        assert "dur_ns" not in d and "data" not in d


class TestRingSemantics:
    def test_ring_wraparound_keeps_last_capacity_events(self):
        tracer = Tracer(capacity=8)
        for i in range(20):
            tracer.event(f"e{i}")
        events = tracer.events()
        assert len(events) == 8
        assert [e.name for e in events] == [f"e{i}" for i in range(12, 20)]

    def test_rings_are_per_thread_and_merge_time_ordered(self):
        tracer = Tracer(capacity=4)

        def record(tag):
            for i in range(3):
                tracer.event(f"{tag}{i}")

        t = threading.Thread(target=record, args=("worker",))
        record("main")
        t.start()
        t.join()
        events = tracer.events()
        assert len(events) == 6  # neither thread evicted the other's
        assert len({e.thread_id for e in events}) == 2
        assert [e.ts_ns for e in events] == sorted(e.ts_ns for e in events)

    def test_one_thread_cannot_evict_anothers_events(self):
        tracer = Tracer(capacity=4)
        tracer.event("keep")

        def flood():
            for i in range(100):
                tracer.event(f"flood{i}")

        t = threading.Thread(target=flood)
        t.start()
        t.join()
        names = [e.name for e in tracer.events()]
        assert "keep" in names
        assert len(names) == 5  # 1 + the flooder's last 4

    def test_name_filter(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.event("b")
        tracer.event("a")
        assert len(tracer.events(name="a")) == 2

    def test_clear_keeps_rings_registered(self):
        tracer = Tracer()
        tracer.event("x")
        tracer.clear()
        assert len(tracer) == 0
        tracer.event("y")
        assert len(tracer) == 1


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event("e")
        tracer.record_span("s", 1)
        with tracer.span("body"):
            pass
        assert tracer.events() == []


class TestConcurrentSnapshot:
    """events()/clear() vs live appenders (regression: the rings were
    previously iterated bare, so a concurrent append could raise
    ``RuntimeError: deque mutated during iteration``)."""

    def test_snapshot_while_workers_append(self):
        tracer = Tracer(capacity=32)
        stop = threading.Event()
        failures = []

        def writer(tid):
            i = 0
            try:
                while not stop.is_set():
                    tracer.event("w", tid=tid, i=i)
                    i += 1
            except Exception as exc:  # pragma: no cover - regression
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                events = tracer.events()
                # every snapshot is internally consistent
                for event in events:
                    assert event.name == "w"
                    assert set(event.data) == {"tid", "i"}
                tracer.clear()
                len(tracer)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failures == []

    def test_per_thread_events_stay_in_order_in_snapshots(self):
        tracer = Tracer(capacity=2048)
        done = threading.Event()

        def writer():
            for i in range(500):
                tracer.event("w", i=i)
            done.set()

        t = threading.Thread(target=writer)
        t.start()
        while not done.is_set():
            events = tracer.events()
            seen = [e.data["i"] for e in events if e.name == "w"]
            assert seen == sorted(seen)
        t.join()
