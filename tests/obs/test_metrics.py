"""Unit tests for the metrics registry: counters, gauges, histograms.

The contract under test is the one DESIGN.md's "Observability" section
documents: exact sharded counters, fixed-bucket histograms with
interpolated percentiles, gauges evaluated at snapshot time, dotted
names nesting in the snapshot, and a disabled registry whose every
instrument is a shared no-op.
"""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Histogram,
    LatchTimer,
    MetricsRegistry,
)


class TestCounter:
    def test_single_thread_increments(self):
        c = Counter("c")
        for _ in range(10):
            c.inc()
        c.inc(5)
        assert c.value == 15

    def test_concurrent_increments_sum_exactly(self):
        """8 threads x 10k increments lose nothing (per-thread shards)."""
        c = Counter("c")
        per_thread = 10_000
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * per_thread

    def test_finished_thread_contribution_survives(self):
        c = Counter("c")
        t = threading.Thread(target=lambda: c.inc(7))
        t.start()
        t.join()
        assert c.value == 7


class TestHistogramBuckets:
    def test_bucket_boundaries_are_inclusive_upper(self):
        """Bucket i holds bounds[i-1] < v <= bounds[i]."""
        h = Histogram("h", bounds=(10, 20, 30))
        for v in (10, 11, 20, 21, 30, 31, 1000):
            h.record(v)
        counts, total, _, lo, hi = h._merged()
        #             <=10  <=20  <=30  overflow
        assert counts == [1, 2, 2, 2]
        assert total == 7
        assert lo == 10 and hi == 1000

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 10, 20))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(20, 10))

    def test_default_bounds_are_the_ns_scale(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_NS_BUCKETS


class TestHistogramPercentiles:
    def test_identical_values_collapse_to_that_value(self):
        h = Histogram("h", bounds=(10, 100))
        for _ in range(50):
            h.record(5)
        # interpolation would say 7.5; clamping to [min, max] fixes it
        assert h.percentile(0.5) == 5.0
        assert h.percentile(0.99) == 5.0

    def test_two_cluster_distribution(self):
        h = Histogram("h", bounds=(10, 100))
        for _ in range(50):
            h.record(5)
        for _ in range(50):
            h.record(50)
        # p50 lands at the top of the first bucket
        assert h.percentile(0.50) == pytest.approx(10.0)
        # p95: 45/50 through the second bucket [10, 100), clamped at 50
        assert h.percentile(0.95) == pytest.approx(50.0)

    def test_interpolation_inside_bucket(self):
        h = Histogram("h", bounds=(0, 100))
        for v in range(1, 101):
            h.record(v)
        # all 100 values in bucket (0, 100]: p50 interpolates to 50
        assert h.percentile(0.50) == pytest.approx(50.0)
        assert h.percentile(0.95) == pytest.approx(95.0)

    def test_overflow_bucket_interpolates_toward_max(self):
        h = Histogram("h", bounds=(10,))
        h.record(1000)
        assert h.percentile(0.99) == pytest.approx(1000.0)

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.percentile(0.5) == 0.0
        snap = h.snapshot()
        assert snap == {
            "count": 0,
            "sum": 0,
            "min": 0,
            "max": 0,
            "avg": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_snapshot_aggregates(self):
        h = Histogram("h", bounds=(10, 100))
        for v in (2, 4, 6):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 12
        assert snap["min"] == 2
        assert snap["max"] == 6
        assert snap["avg"] == pytest.approx(4.0)


class TestHistogramConcurrency:
    def test_concurrent_records_sum_exactly(self):
        h = Histogram("h", bounds=(10, 100))
        per_thread = 5_000
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for i in range(per_thread):
                h.record(i % 150)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8 * per_thread

    def test_snapshot_while_mutating(self):
        """Snapshots taken mid-run are stale-but-consistent, never corrupt."""
        registry = MetricsRegistry()
        c = registry.counter("c")
        h = registry.histogram("h", bounds=(10, 100))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                c.inc()
                h.record(7)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            last_count = 0
            for _ in range(50):
                snap = registry.snapshot()
                assert snap["c"] >= last_count  # monotonic
                last_count = snap["c"]
                hsnap = snap["h"]
                assert 0 <= hsnap["count"]
                assert hsnap["min"] in (0, 7) and hsnap["max"] in (0, 7)
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_nested_snapshot_along_dotted_names(self):
        registry = MetricsRegistry()
        registry.counter("buffer.hits").inc(3)
        registry.histogram("latch.wait_ns").record(500)
        registry.gauge("txn.active", lambda: 2)
        snap = registry.snapshot()
        assert snap["buffer"]["hits"] == 3
        assert snap["latch"]["wait_ns"]["count"] == 1
        assert snap["txn"]["active"] == 2

    def test_gauge_errors_surface_as_none(self):
        registry = MetricsRegistry()
        registry.gauge("g", lambda: 1 / 0)
        assert registry.snapshot()["g"] is None

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["a"]["b"] == 1

    def test_counter_value_helper(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0
        registry.counter("c").inc(4)
        assert registry.counter_value("c") == 4


class TestDisabledRegistry:
    def test_all_instruments_are_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        c1, c2 = registry.counter("a"), registry.counter("b")
        assert c1 is c2  # one shared null object
        c1.inc(100)
        assert c1.value == 0
        h = registry.histogram("h")
        h.record(123)
        assert h.count == 0

    def test_snapshot_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("g", lambda: 1)
        assert registry.snapshot() == {}

    def test_tracer_disabled_too(self):
        registry = MetricsRegistry(enabled=False)
        registry.tracer.event("e")
        assert len(registry.tracer) == 0


class TestLatchTimer:
    def test_sampling_and_batched_counting(self):
        registry = MetricsRegistry()
        timer = LatchTimer(registry)
        n = timer.SAMPLE_EVERY
        # one full cycle: exactly one sampled acquisition, counted in
        # one batch of SAMPLE_EVERY
        decisions = [timer.sample() for _ in range(n)]
        assert decisions.count(True) == 1
        assert timer.acquisitions.value == n
        # a partial cycle is not yet counted (trails by < SAMPLE_EVERY)
        for _ in range(n - 1):
            timer.sample()
        assert timer.acquisitions.value == n
        timer.sample()
        assert timer.acquisitions.value == 2 * n
