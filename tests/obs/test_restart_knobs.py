"""Observability knobs must survive ``Database.restart``."""

from repro.database import Database
from repro.ext.btree import BTreeExtension


def _crash_restart(db, **config):
    tree = db.tree("t")
    txn = db.begin()
    tree.insert(txn, 1, "r1")
    db.commit(txn)
    db.crash()
    return db.restart({"t": BTreeExtension()}, **config)


class TestRestartPropagation:
    def test_op_tracing_and_capacity_carry_over(self):
        db = Database(page_capacity=8, op_tracing=True, trace_capacity=77)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.op_tracing is True
        assert db2.spans is not None
        assert db2.trace_capacity == 77
        assert db2.metrics.trace_capacity == 77
        # and the revived tracker is live: recovery's ops aside, a new
        # operation gets a span
        tree = db2.tree("t")
        txn = db2.begin()
        tree.insert(txn, 2, "r2")
        db2.commit(txn)
        assert any(s.kind == "insert" for s in db2.spans.completed())

    def test_tracing_off_stays_off(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.spans is None

    def test_explicit_restart_override_wins(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db, op_tracing=True)
        assert db2.spans is not None
        db3 = _crash_restart(db2, op_tracing=False)
        assert db3.spans is None

    def test_flight_recorder_knobs_carry_over(self):
        db = Database(page_capacity=8, flight_capacity=9)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.flight_recorder_enabled is True
        # same instance: the black box is the external observer
        assert db2.flightrec is db.flightrec
        assert db2.flightrec.capacity == 9

    def test_disabled_flight_recorder_stays_disabled(self):
        db = Database(page_capacity=8, flight_recorder=False)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.flightrec is None

    def test_wal_tracker_is_rebound_not_stale(self):
        # restart with tracing toggled off must not leave the new log
        # manager pointing at the old tracker
        db = Database(page_capacity=8, op_tracing=True)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db, op_tracing=False)
        assert db2.log.tracker is None
        db3 = _crash_restart(db2, op_tracing=True)
        assert db3.log.tracker is db3.spans
