"""Observability knobs must survive ``Database.restart``."""

from repro.database import Database
from repro.ext.btree import BTreeExtension, Interval


def _crash_restart(db, **config):
    tree = db.tree("t")
    txn = db.begin()
    tree.insert(txn, 1, "r1")
    db.commit(txn)
    db.crash()
    return db.restart({"t": BTreeExtension()}, **config)


class TestRestartPropagation:
    def test_op_tracing_and_capacity_carry_over(self):
        db = Database(page_capacity=8, op_tracing=True, trace_capacity=77)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.op_tracing is True
        assert db2.spans is not None
        assert db2.trace_capacity == 77
        assert db2.metrics.trace_capacity == 77
        # and the revived tracker is live: recovery's ops aside, a new
        # operation gets a span
        tree = db2.tree("t")
        txn = db2.begin()
        tree.insert(txn, 2, "r2")
        db2.commit(txn)
        assert any(s.kind == "insert" for s in db2.spans.completed())

    def test_tracing_off_stays_off(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.spans is None

    def test_explicit_restart_override_wins(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db, op_tracing=True)
        assert db2.spans is not None
        db3 = _crash_restart(db2, op_tracing=False)
        assert db3.spans is None

    def test_flight_recorder_knobs_carry_over(self):
        db = Database(page_capacity=8, flight_capacity=9)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.flight_recorder_enabled is True
        # same instance: the black box is the external observer
        assert db2.flightrec is db.flightrec
        assert db2.flightrec.capacity == 9

    def test_disabled_flight_recorder_stays_disabled(self):
        db = Database(page_capacity=8, flight_recorder=False)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.flightrec is None

    def test_wal_tracker_is_rebound_not_stale(self):
        # restart with tracing toggled off must not leave the new log
        # manager pointing at the old tracker
        db = Database(page_capacity=8, op_tracing=True)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db, op_tracing=False)
        assert db2.log.tracker is None
        db3 = _crash_restart(db2, op_tracing=True)
        assert db3.log.tracker is db3.spans


class TestWalPipelineKnobs:
    """The WAL writer pipeline knobs must survive ``Database.restart``."""

    def test_wal_writer_carries_over(self):
        db = Database(page_capacity=8, wal_writer=True)
        db.create_tree("t", BTreeExtension())
        assert db.log.wal_writer_active
        db2 = _crash_restart(db)
        assert db2.wal_writer is True
        assert db2.log.wal_writer_active
        # and the revived writer actually serves commits
        tree = db2.tree("t")
        txn = db2.begin()
        tree.insert(txn, 2, "r2")
        db2.commit(txn)
        assert db2.log.stats.writer_batches > 0
        db2.shutdown()

    def test_wal_writer_off_stays_off(self):
        db = Database(page_capacity=8)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.wal_writer is False
        assert not db2.log.wal_writer_active
        assert db2.log._writer_thread is None

    def test_group_commit_window_carries_over(self):
        db = Database(
            page_capacity=8, wal_writer=True, group_commit_window=0.004
        )
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db)
        assert db2.group_commit_window == 0.004
        assert db2.log.group_commit_window == 0.004
        db2.shutdown()

    def test_explicit_restart_override_wins(self):
        db = Database(page_capacity=8, wal_writer=True)
        db.create_tree("t", BTreeExtension())
        db2 = _crash_restart(db, wal_writer=False)
        assert not db2.log.wal_writer_active
        db3 = _crash_restart(db2, wal_writer=True, group_commit_window=0.002)
        assert db3.log.wal_writer_active
        assert db3.log.group_commit_window == 0.002
        db3.shutdown()

    def test_writer_composes_with_leaf_hints(self):
        # both knobs on together: batch inserts through the writer with
        # the hint cache live, and both survive the restart
        db = Database(page_capacity=8, wal_writer=True, leaf_hints=True)
        tree = db.create_tree("t", BTreeExtension())
        txn = db.begin()
        tree.multi_put(txn, [(i, f"r{i}") for i in range(40)])
        db.commit(txn)
        db.crash()
        db2 = db.restart({"t": BTreeExtension()})
        assert db2.leaf_hints is True
        assert db2.log.wal_writer_active
        tree2 = db2.tree("t")
        txn = db2.begin()
        got = {k for k, _ in tree2.search(txn, Interval(0, 100))}
        db2.commit(txn)
        assert got == set(range(40))
        db2.shutdown()


class TestPartitionKnobs:
    """Cluster topology and database knobs across a cluster re-open."""

    def _cluster(self, **kwargs):
        from repro.cluster import PartitionedDatabase

        cluster = PartitionedDatabase(**kwargs)
        cluster.create_tree("t", BTreeExtension())
        cluster.multi_put("t", [(i, f"r{i}") for i in range(30)])
        return cluster

    def test_partitions_and_router_survive_restart(self):
        cluster = self._cluster(
            partitions=3, router="range:1000", page_capacity=16
        )
        reopened = cluster.restart()
        try:
            assert reopened.partitions == 3
            assert reopened.router.kind == "range"
            assert reopened.router.boundaries == [333, 666]
            rows = reopened.search("t", Interval(0, 30))
            assert [k for k, _ in rows] == list(range(30))
        finally:
            reopened.shutdown()

    def test_db_knobs_propagate_to_every_worker(self):
        cluster = self._cluster(
            partitions=2, page_capacity=16, leaf_hints=True
        )
        reopened = cluster.restart()
        try:
            for info in reopened.describe().values():
                assert info["page_capacity"] == 16
                assert info["leaf_hints"] is True
        finally:
            reopened.shutdown()

    def test_explicit_reopen_override_wins(self):
        cluster = self._cluster(partitions=2, page_capacity=16)
        reopened = cluster.restart(leaf_hints=True)
        try:
            for info in reopened.describe().values():
                assert info["page_capacity"] == 16  # propagated
                assert info["leaf_hints"] is True  # overridden
            # and the override itself now propagates onward
            again = reopened.restart()
            try:
                for info in again.describe().values():
                    assert info["leaf_hints"] is True
            finally:
                again.shutdown()
        finally:
            if not reopened._closed:
                reopened.shutdown()
