"""History recorder + linearizability/read-committed oracle."""

import threading

from repro.ext.btree import Interval
from repro.obs.export import load_jsonl
from repro.obs.history import (
    HistoryRecorder,
    check_linearizability,
    check_read_committed,
)
from repro.workload.scenario import covers, run_scenario


def _covers_key(query, key):
    return query == key


def _history(entries):
    """Build a recorder from (kind, inv, resp, key, rid, result) rows."""
    rec = HistoryRecorder()
    for kind, inv, resp, key, rid, result in entries:
        if kind == "search":
            rec.add(
                "search", inv_ns=inv, resp_ns=resp, query=key,
                result=result,
            )
        else:
            rec.add(
                kind, inv_ns=inv, resp_ns=resp, key=key, rid=rid,
                result=result,
            )
    return rec.ops()


class TestRecorder:
    def test_ops_sorted_by_invocation(self):
        rec = HistoryRecorder()
        rec.add("insert", inv_ns=50, resp_ns=60, key=1, rid="b")
        rec.add("insert", inv_ns=10, resp_ns=20, key=1, rid="a")
        assert [op.rid for op in rec.ops()] == ["a", "b"]
        assert len(rec) == 2

    def test_search_results_become_frozensets(self):
        rec = HistoryRecorder()
        op = rec.add(
            "search", inv_ns=1, resp_ns=2, query=Interval(0, 5),
            result=["r1", "r2", "r1"],
        )
        assert op.result == frozenset({"r1", "r2"})

    def test_thread_safe_add(self):
        rec = HistoryRecorder()

        def worker():
            for i in range(200):
                rec.add("insert", inv_ns=i, resp_ns=i + 1, key=i, rid=i)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ops = rec.ops()
        assert len(ops) == 800
        assert len({op.op_id for op in ops}) == 800

    def test_export_jsonl(self, tmp_path):
        rec = HistoryRecorder()
        rec.add("insert", inv_ns=1, resp_ns=2, key=3, rid="r1", result=True)
        rec.add(
            "search", inv_ns=3, resp_ns=4, query=Interval(0, 5),
            result=["r1"],
        )
        path = rec.export_jsonl(str(tmp_path / "history.jsonl"))
        first, second = load_jsonl(path)
        assert first["kind"] == "insert" and first["result"] is True
        assert second["result"] == ["r1"]


class TestLinearizability:
    def test_sequential_lifetime_is_linearizable(self):
        ops = _history(
            [
                ("insert", 0, 10, 1, "r1", True),
                ("search", 20, 30, 1, None, {"r1"}),
                ("delete", 40, 50, 1, "r1", True),
                ("search", 60, 70, 1, None, set()),
            ]
        )
        report = check_linearizability(ops, _covers_key)
        assert report.ok
        assert report.elements == 1
        assert report.reads == 2

    def test_concurrent_reads_during_write_may_go_either_way(self):
        # both reads overlap the insert: one sees it, one does not —
        # the insert linearizes between them
        ops = _history(
            [
                ("insert", 0, 100, 1, "r1", True),
                ("search", 10, 20, 1, None, set()),
                ("search", 30, 40, 1, None, {"r1"}),
            ]
        )
        assert check_linearizability(ops, _covers_key).ok

    def test_read_your_writes_violation_is_flagged(self):
        # the insert committed at 10, yet a strictly later search does
        # not see the element (and nothing deleted it)
        ops = _history(
            [
                ("insert", 0, 10, 1, "r1", True),
                ("search", 20, 30, 1, None, set()),
            ]
        )
        report = check_linearizability(ops, _covers_key)
        assert not report.ok
        assert "rid='r1'" in report.violations[0]
        # this one is a read-committed violation too
        assert not check_read_committed(ops, _covers_key).ok

    def test_lost_update_is_flagged(self):
        # the delete committed at 50, yet a strictly later search still
        # sees the element: the delete's effect was lost
        ops = _history(
            [
                ("insert", 0, 10, 1, "r1", True),
                ("delete", 40, 50, 1, "r1", True),
                ("search", 60, 70, 1, None, {"r1"}),
            ]
        )
        report = check_linearizability(ops, _covers_key)
        assert not report.ok
        assert not check_read_committed(ops, _covers_key).ok

    def test_new_then_old_value_across_ordered_reads_is_flagged(self):
        # R1 sees the new value, then a strictly later R2 sees the old
        # one: individually stale-OK, jointly not linearizable
        ops = _history(
            [
                ("insert", 0, 100, 1, "r1", True),
                ("search", 10, 20, 1, None, {"r1"}),
                ("search", 30, 40, 1, None, set()),
            ]
        )
        report = check_linearizability(ops, _covers_key)
        assert not report.ok
        # read-committed accepts it: each read alone overlaps the write
        assert check_read_committed(ops, _covers_key).ok

    def test_failed_delete_is_a_read_of_absence(self):
        # delete-not-found before the insert committed: fine
        ops = _history(
            [
                ("delete", 0, 5, 1, "r1", False),
                ("insert", 10, 20, 1, "r1", True),
                ("search", 30, 40, 1, None, {"r1"}),
            ]
        )
        assert check_linearizability(ops, _covers_key).ok
        # delete-not-found strictly after the insert committed: bug
        ops = _history(
            [
                ("insert", 0, 5, 1, "r1", True),
                ("delete", 10, 20, 1, "r1", False),
            ]
        )
        assert not check_linearizability(ops, _covers_key).ok

    def test_elements_are_independent(self):
        # a violation on one element does not implicate the others
        ops = _history(
            [
                ("insert", 0, 10, 1, "r1", True),
                ("insert", 0, 10, 2, "r2", True),
                ("search", 20, 30, 1, None, set()),  # violation
                ("search", 20, 30, 2, None, {"r2"}),  # fine
            ]
        )
        report = check_linearizability(ops, _covers_key)
        assert report.elements == 2
        assert len(report.violations) == 1

    def test_range_queries_read_every_covered_element(self):
        rec = HistoryRecorder()
        rec.add("insert", inv_ns=0, resp_ns=10, key=3, rid="r1", result=True)
        rec.add("insert", inv_ns=0, resp_ns=10, key=7, rid="r2", result=True)
        # covers both keys but reports only one: r2 was dropped
        rec.add(
            "search", inv_ns=20, resp_ns=30, query=Interval(0, 10),
            result={"r1"},
        )
        report = check_linearizability(
            rec.ops(), lambda q, k: q.contains(k)
        )
        assert not report.ok
        assert "r2" in report.violations[0]


class TestReadCommitted:
    def test_read_before_any_insert_must_be_absent(self):
        ops = _history(
            [
                ("insert", 10, 20, 1, "r1", True),
                ("search", 30, 40, 1, None, set()),
            ]
        )
        report = check_read_committed(ops, _covers_key)
        assert not report.ok

    def test_phantom_presence_without_insert_is_flagged(self):
        rec = HistoryRecorder()
        rec.add("insert", inv_ns=0, resp_ns=10, key=1, rid="r1", result=True)
        rec.add("delete", inv_ns=20, resp_ns=30, key=1, rid="r1", result=True)
        rec.add(
            "search", inv_ns=40, resp_ns=50, query=Interval(0, 5),
            result={"r1"},
        )
        report = check_read_committed(
            rec.ops(), lambda q, k: q.contains(k)
        )
        assert not report.ok
        assert "outside its committed lifetime" in report.violations[0]


class _StaleCacheTree:
    """Oracle-test-only: a tree wrapper with a deliberately broken cache.

    Every (key, rid) a search ever returned is remembered and unioned
    into every later covering search — deleted elements keep being
    reported, which the oracle must flag.
    """

    def __init__(self, inner):
        self._inner = inner
        self._lock = threading.Lock()
        self._seen: dict[object, set] = {}

    def insert(self, txn, key, rid):
        self._inner.insert(txn, key, rid)

    def delete(self, txn, key, rid):
        self._inner.delete(txn, key, rid)

    def search(self, txn, query):
        real = list(self._inner.search(txn, query))
        with self._lock:
            for key, rid in real:
                self._seen.setdefault(key, set()).add(rid)
            stale = [
                (key, rid)
                for key, rids in self._seen.items()
                if query.contains(key)
                for rid in rids
            ]
        return list({*real, *stale})


class TestEndToEnd:
    def test_clean_scenario_passes_both_oracles(self):
        result = run_scenario(seed=5, ops=120, threads=3, preload=20)
        assert result.dropped == 0
        assert result.linearizability.ok
        assert result.read_committed.ok

    def test_broken_cache_scenario_is_flagged(self):
        from repro.database import Database
        from repro.ext.btree import BTreeExtension

        db = Database(page_capacity=16, pool_capacity=128, lock_timeout=10.0)
        tree = _StaleCacheTree(db.create_tree("scenario", BTreeExtension()))
        result = run_scenario(
            seed=5, ops=150, threads=2, preload=20,
            selectivity=0.2, db=db, tree=tree,
        )
        # the stale cache resurrects deleted elements: both oracles
        # must flag the history
        assert not result.linearizability.ok
        assert not result.read_committed.ok
        assert any(
            "lifetime" in v for v in result.read_committed.violations
        )


class TestCoversPredicate:
    def test_interval_covers(self):
        assert covers(Interval(0, 10), 5)
        assert not covers(Interval(0, 10), 50)
