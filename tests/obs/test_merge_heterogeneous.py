"""merge_snapshots over heterogeneous namespaces + shed-burst dumps.

The serving stack merges three registries that share almost no keys:
the server's own counters (``server.*``), the cluster front end
(``cluster.*``) and the cross-partition aggregate (``wal.*``,
``buffer.*``, ...).  The merge must keep disjoint namespaces intact,
sum where names do collide, and tolerate snapshots that are missing
whole subtrees — a partition that died before reporting, a local
backend with no cluster section at all.
"""

import json

from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry, merge_snapshots


def _registry(**counters) -> dict:
    reg = MetricsRegistry()
    for name, n in counters.items():
        counter = reg.counter(name.replace("__", "."))
        for _ in range(n):
            counter.inc()
    return reg.snapshot()


class TestHeterogeneousMerge:
    def test_disjoint_namespaces_coexist(self):
        server = _registry(server__offered__point=10)
        cluster = _registry(cluster__routed_ops=7)
        aggregate = _registry(wal__appends=40)
        merged = merge_snapshots([server, cluster, aggregate])
        assert merged["server"]["offered"]["point"] == 10
        assert merged["cluster"]["routed_ops"] == 7
        assert merged["wal"]["appends"] == 40

    def test_colliding_names_sum(self):
        a = _registry(wal__appends=3, latch__acquires=5)
        b = _registry(wal__appends=4)
        merged = merge_snapshots([a, b])
        assert merged["wal"]["appends"] == 7
        assert merged["latch"]["acquires"] == 5

    def test_missing_subtrees_tolerated(self):
        full = _registry(
            server__offered__point=2, cluster__routed_ops=1
        )
        sparse = _registry(server__offered__scan=3)
        empty: dict = {}
        merged = merge_snapshots([full, sparse, empty])
        assert merged["server"]["offered"] == {"point": 2, "scan": 3}
        assert merged["cluster"]["routed_ops"] == 1

    def test_scalar_vs_subtree_collision_keeps_subtree(self):
        # one registry reports a leaf where another has a dict: the
        # dict side wins the shape and the scalar is dropped rather
        # than corrupting the tree
        merged = merge_snapshots(
            [{"queue": 5}, {"queue": {"depth": 2}}]
        )
        assert merged["queue"] == {"depth": 2}

    def test_order_invariant_for_numeric_leaves(self):
        a = _registry(cluster__rpc__timeouts=2)
        b = _registry(cluster__rpc__timeouts=9)
        assert (
            merge_snapshots([a, b])["cluster"]["rpc"]["timeouts"]
            == merge_snapshots([b, a])["cluster"]["rpc"]["timeouts"]
            == 11
        )

    def test_booleans_are_not_summed(self):
        merged = merge_snapshots(
            [{"flags": {"enabled": True}}, {"flags": {"enabled": True}}]
        )
        assert merged["flags"]["enabled"] is True


class TestShedBurstDump:
    def test_dump_preserves_shed_event_sequence(self, tmp_path):
        rec = FlightRecorder(capacity=64)
        for i in range(10):
            rec.record(
                "server.shed",
                klass="point",
                reason="queue_full",
                client=f"c{i % 3}",
            )
        rec.record("server.shed", klass="scan", reason="rate_limit",
                   client="c9")
        path = tmp_path / "shed-burst.jsonl"
        rec.dump(str(path))
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        sheds = [e for e in events if e["name"] == "server.shed"]
        assert len(sheds) == 11
        seqs = [e["seq"] for e in sheds]
        assert seqs == sorted(seqs)
        assert sheds[-1]["data"]["reason"] == "rate_limit"
        reasons = {e["data"]["reason"] for e in sheds}
        assert reasons == {"queue_full", "rate_limit"}

    def test_ring_bounds_the_dump(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for i in range(50):
            rec.record("server.shed", klass="point", reason="x",
                       client=f"c{i}")
        path = tmp_path / "bounded.jsonl"
        rec.dump(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 8
        # the ring keeps the most recent events — the postmortem tail
        assert json.loads(lines[-1])["data"]["client"] == "c49"
