"""Workload generators: determinism, distributions, mix invariants."""

import pytest

from repro.ext.btree import Interval
from repro.ext.rtree import Rect
from repro.workload.generator import (
    MixSpec,
    RectKeys,
    RectWorkload,
    ScalarKeys,
    ScalarWorkload,
    SetKeys,
    partition_ops,
)


class TestScalarKeys:
    def test_deterministic_given_seed(self):
        a = [ScalarKeys(7).next_key() for _ in range(50)]
        b = [ScalarKeys(7).next_key() for _ in range(50)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [ScalarKeys(1).next_key() for _ in range(50)]
        b = [ScalarKeys(2).next_key() for _ in range(50)]
        assert a != b

    def test_keys_in_range(self):
        gen = ScalarKeys(3, key_space=1000)
        assert all(0 <= gen.next_key() < 1000 for _ in range(500))

    @pytest.mark.parametrize("dist", ["uniform", "zipf", "clustered"])
    def test_distributions_produce_valid_keys(self, dist):
        gen = ScalarKeys(3, key_space=1000, distribution=dist)
        keys = [gen.next_key() for _ in range(300)]
        assert all(0 <= k < 1000 for k in keys)

    def test_zipf_is_skewed(self):
        gen = ScalarKeys(3, key_space=100_000, distribution="zipf")
        keys = [gen.next_key() for _ in range(2000)]
        low = sum(1 for k in keys if k < 10_000)
        assert low > len(keys) * 0.4  # heavy head

    def test_unknown_distribution_raises(self):
        with pytest.raises(ValueError):
            ScalarKeys(1, distribution="bogus")

    def test_range_query_width(self):
        gen = ScalarKeys(3, key_space=10_000)
        q = gen.range_query(selectivity=0.01)
        assert isinstance(q, Interval)
        assert q.hi - q.lo == 100


class TestRectAndSetKeys:
    def test_rects_inside_unit_square(self):
        gen = RectKeys(5)
        for _ in range(200):
            r = gen.next_key()
            assert 0 <= r.xlo <= r.xhi <= 1
            assert 0 <= r.ylo <= r.yhi <= 1

    def test_window_query_selectivity(self):
        gen = RectKeys(5)
        w = gen.window_query(selectivity=0.04)
        assert isinstance(w, Rect)
        assert w.area == pytest.approx(0.04)

    def test_set_keys_nonempty(self):
        gen = SetKeys(5, vocabulary=50)
        for _ in range(100):
            s = gen.next_key()
            assert s and all(0 <= e < 50 for e in s)


class TestMixAndWorkloads:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MixSpec(insert=0.5, search=0.2, delete=0.2)

    def test_scalar_workload_deterministic(self):
        ops_a = list(ScalarWorkload(9).ops(100))
        ops_b = list(ScalarWorkload(9).ops(100))
        assert ops_a == ops_b

    def test_deletes_target_live_pairs(self):
        wl = ScalarWorkload(
            9, mix=MixSpec(insert=0.4, search=0.2, delete=0.4)
        )
        live = {}
        for op in wl.ops(500):
            if op.kind == "insert":
                live[op.rid] = op.key
            elif op.kind == "delete":
                assert live.pop(op.rid) == op.key  # always valid

    def test_rids_unique(self):
        wl = ScalarWorkload(9)
        rids = [
            op.rid for op in wl.ops(300) if op.kind == "insert"
        ]
        assert len(rids) == len(set(rids))

    def test_preload_is_insert_only(self):
        wl = ScalarWorkload(9)
        ops = wl.preload(50)
        assert len(ops) == 50
        assert all(op.kind == "insert" for op in ops)

    def test_rect_workload_runs(self):
        wl = RectWorkload(3, mix=MixSpec(0.6, 0.3, 0.1))
        kinds = {op.kind for op in wl.ops(200)}
        assert "insert" in kinds and "search" in kinds

    def test_partition_round_robin(self):
        wl = ScalarWorkload(9)
        ops = list(wl.ops(10))
        buckets = partition_ops(ops, 3)
        assert [len(b) for b in buckets] == [4, 3, 3]
        assert buckets[0][0] is ops[0]
        assert buckets[1][0] is ops[1]


class TestBatchedMix:
    def test_batch_fractions_join_the_sum(self):
        with pytest.raises(ValueError):
            MixSpec(insert=0.5, search=0.5, multi_put=0.2)
        MixSpec(insert=0.3, search=0.3, multi_put=0.2, multi_get=0.1,
                multi_delete=0.1)  # sums to 1: fine

    def test_batched_ops_emitted_deterministically(self):
        mix = MixSpec(
            insert=0.2,
            search=0.2,
            multi_put=0.3,
            multi_get=0.2,
            multi_delete=0.1,
        )
        a = list(ScalarWorkload(11, mix=mix, batch_size=8).ops(300))
        b = list(ScalarWorkload(11, mix=mix, batch_size=8).ops(300))
        assert a == b
        kinds = {op.kind for op in a}
        assert {"multi_put", "multi_get", "multi_delete"} <= kinds

    def test_multi_put_pairs_have_unique_rids(self):
        mix = MixSpec(insert=0.0, search=0.2, multi_put=0.8)
        rids = [
            rid
            for op in ScalarWorkload(11, mix=mix, batch_size=6).ops(200)
            if op.kind == "multi_put"
            for _, rid in op.pairs
        ]
        assert len(rids) == len(set(rids))

    def test_multi_delete_targets_live_pairs(self):
        mix = MixSpec(insert=0.0, search=0.0, multi_put=0.6, multi_delete=0.4)
        wl = ScalarWorkload(11, mix=mix, batch_size=5)
        live = {rid: key for op in wl.preload(10)
                for key, rid in [(op.key, op.rid)]}
        for op in wl.ops(400):
            if op.kind == "insert":  # emitted only while live is empty
                live[op.rid] = op.key
            elif op.kind == "multi_put":
                for key, rid in op.pairs:
                    live[rid] = key
            elif op.kind == "multi_delete":
                assert op.pairs  # never emitted empty
                for key, rid in op.pairs:
                    assert live.pop(rid) == key

    def test_multi_get_keys_sized_to_batch(self):
        mix = MixSpec(insert=0.0, search=0.0, multi_get=1.0)
        wl = ScalarWorkload(11, mix=mix, batch_size=7)
        wl.preload(20)
        for op in wl.ops(50):
            assert op.kind == "multi_get"
            assert 1 <= len(op.keys) <= 7
