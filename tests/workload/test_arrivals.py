"""Poisson arrival schedules: seeded determinism and shape."""

import pytest

from repro.workload.generator import PoissonArrivals


class TestOffsets:
    def test_deterministic_under_a_seed(self):
        a = PoissonArrivals(rate=200.0, duration=2.0, seed=42)
        b = PoissonArrivals(rate=200.0, duration=2.0, seed=42)
        assert a.offsets() == b.offsets()

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate=200.0, duration=2.0, seed=1)
        b = PoissonArrivals(rate=200.0, duration=2.0, seed=2)
        assert a.offsets() != b.offsets()

    def test_offsets_ascending_and_in_range(self):
        offsets = PoissonArrivals(
            rate=500.0, duration=1.5, seed=7
        ).offsets()
        assert offsets == sorted(offsets)
        assert all(0.0 <= t < 1.5 for t in offsets)

    def test_count_tracks_rate_times_duration(self):
        # Poisson(lambda=1000): mean 1000, sd ~32; 5 sd of slack
        offsets = PoissonArrivals(
            rate=2000.0, duration=0.5, seed=3
        ).offsets()
        assert 840 <= len(offsets) <= 1160

    def test_interarrivals_look_exponential(self):
        offsets = PoissonArrivals(
            rate=1000.0, duration=2.0, seed=11
        ).offsets()
        gaps = [
            b - a for a, b in zip(offsets, offsets[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1 / 1000.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0, duration=1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=10.0, duration=0.0)


class TestSchedule:
    def test_schedule_zips_offsets_onto_ops(self):
        arrivals = PoissonArrivals(rate=100.0, duration=1.0, seed=5)
        n = len(arrivals.offsets())
        ops = [("put", ("t", i, f"r{i}")) for i in range(n)]
        schedule = arrivals.schedule(ops)
        assert len(schedule) == n
        offsets = arrivals.offsets()
        for i, entry in enumerate(schedule):
            assert entry[0] == offsets[i]
            assert entry[1:] == ops[i]

    def test_schedule_truncates_to_shorter_side(self):
        arrivals = PoissonArrivals(rate=100.0, duration=1.0, seed=5)
        schedule = arrivals.schedule([("get", ("t", 1))])
        assert len(schedule) == 1
