"""History-recorded scenario runner."""

from repro.workload.generator import Op
from repro.workload.scenario import (
    main,
    partition_by_rid,
    run_scenario,
)


class TestPartitioning:
    def test_writes_of_one_rid_share_a_worker_in_order(self):
        ops = [
            Op("insert", key=1, rid="r1"),
            Op("insert", key=2, rid="r2"),
            Op("search", query=object()),
            Op("delete", key=1, rid="r1"),
            Op("delete", key=2, rid="r2"),
        ]
        buckets = partition_by_rid(ops, 2)
        for bucket in buckets:
            for rid in ("r1", "r2"):
                writes = [op.kind for op in bucket if op.rid == rid]
                assert writes in ([], ["insert", "delete"])

    def test_partitioning_is_process_independent(self):
        # bucket choice must not depend on hash randomization
        ops = [Op("insert", key=i, rid=f"r{i}") for i in range(8)]
        buckets = partition_by_rid(ops, 3)
        assert [
            [op.rid for op in bucket] for bucket in buckets
        ] == [
            ["r0", "r3", "r6"],
            ["r1", "r4", "r7"],
            ["r2", "r5"],
        ]

    def test_searches_round_robin(self):
        ops = [Op("search", query=i) for i in range(4)]
        buckets = partition_by_rid(ops, 2)
        assert [op.query for op in buckets[0]] == [0, 2]
        assert [op.query for op in buckets[1]] == [1, 3]


class TestRunScenario:
    def test_single_threaded_run_passes(self):
        result = run_scenario(seed=1, ops=60, threads=1, preload=10)
        assert result.ok
        assert result.dropped == 0
        assert result.ops_run == len(result.history) == 70
        assert result.linearizability.elements > 0

    def test_concurrent_run_passes(self):
        result = run_scenario(seed=2, ops=120, threads=4, preload=16)
        assert result.ok, (
            result.errors
            + result.linearizability.violations
            + result.read_committed.violations
        )

    def test_op_tracing_knob(self):
        result = run_scenario(
            seed=3, ops=40, threads=2, preload=8, op_tracing=True
        )
        assert result.ok
        assert result.db.spans is not None
        kinds = {s.kind for s in result.db.spans.completed()}
        assert "commit" in kinds

    def test_history_reaches_the_oracle_with_intervals(self):
        result = run_scenario(seed=4, ops=30, threads=1, preload=4)
        for op in result.history.ops():
            assert op.inv_ns < op.resp_ns


class TestCli:
    def test_main_ok(self, capsys):
        rc = main(["--ops", "40", "--threads", "2", "--seed", "6",
                   "--preload", "8", "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "linearizability: PASS" in out
        assert "read-committed: PASS" in out

    def test_main_exports_history(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        rc = main(["--ops", "20", "--threads", "1", "--seed", "6",
                   "--preload", "4", "--export", path])
        assert rc == 0
        from repro.obs.export import load_jsonl

        assert len(load_jsonl(path)) == 24
