"""Unit tests for transaction lifecycle: begin/commit/rollback."""

import pytest

from repro.errors import TransactionStateError
from repro.ext.btree import BTreeExtension, Interval
from repro.lock.modes import LockMode
from repro.txn.manager import txn_lock_name
from repro.txn.transaction import IsolationLevel, TxnState
from repro.wal.records import CommitRecord, EndRecord


class TestLifecycle:
    def test_begin_assigns_increasing_xids(self, db):
        t1 = db.begin()
        t2 = db.begin()
        assert t2.xid == t1.xid + 1
        assert t1.is_active and t2.is_active

    def test_begin_takes_own_txn_lock(self, db):
        txn = db.begin()
        assert db.locks.held_mode(txn.xid, txn_lock_name(txn.xid)) == (
            LockMode.X
        )

    def test_commit_writes_and_forces_commit_record(self, db):
        txn = db.begin()
        db.commit(txn)
        assert txn.state is TxnState.COMMITTED
        records = list(db.log.records_from(1))
        commits = [r for r in records if isinstance(r, CommitRecord)]
        ends = [r for r in records if isinstance(r, EndRecord)]
        assert len(commits) == 1 and len(ends) == 1
        assert db.log.flushed_lsn >= commits[0].lsn

    def test_commit_releases_locks(self, db):
        txn = db.begin()
        db.locks.acquire(txn.xid, ("rid", "x"), LockMode.X)
        db.commit(txn)
        assert db.locks.holders(("rid", "x")) == {}

    def test_rollback_writes_abort_and_end(self, db):
        txn = db.begin()
        db.rollback(txn)
        assert txn.state is TxnState.ABORTED
        kinds = [type(r).__name__ for r in db.log.records_from(1)]
        assert "AbortRecord" in kinds and "EndRecord" in kinds

    def test_double_commit_raises(self, db):
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionStateError):
            db.commit(txn)

    def test_rollback_after_commit_raises(self, db):
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionStateError):
            db.rollback(txn)

    def test_committed_xids_tracked(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.commit(t1)
        db.rollback(t2)
        assert db.txns.is_committed(t1.xid)
        assert not db.txns.is_committed(t2.xid)
        assert db.txns.is_finished(t2.xid)

    def test_oldest_active(self, db):
        assert db.txns.oldest_active_xid() is None
        t1 = db.begin()
        t2 = db.begin()
        assert db.txns.oldest_active_xid() == t1.xid
        db.commit(t1)
        assert db.txns.oldest_active_xid() == t2.xid
        db.commit(t2)


class TestRollbackUndoesWork:
    def test_rollback_undoes_multiple_operations_lifo(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        setup = db.begin()
        tree.insert(setup, 50, "keep")
        db.commit(setup)
        txn = db.begin()
        tree.insert(txn, 1, "a")
        tree.delete(txn, 50, "keep")
        tree.insert(txn, 2, "b")
        db.rollback(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 100)) == [(50, "keep")]
        db.commit(check)

    def test_rollback_is_idempotent_per_record(self, db):
        """CLRs make repeated rollback attempts safe: a second manual
        undo pass must find nothing left to undo."""
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "a")
        db.rollback(txn)
        clrs = [
            r
            for r in db.log.records_from(1)
            if r.undo_next is not None and r.xid == txn.xid
        ]
        assert clrs  # compensation was logged
        # walking the chain from the txn's last lsn hits only CLRs and
        # lands before any undoable record
        lsn = db.log.last_lsn_of(txn.xid)
        seen_undoable = 0
        while lsn:
            record = db.log.get(lsn)
            if record.undo_next is not None:
                lsn = record.undo_next
                continue
            if record.undoable:
                seen_undoable += 1
            lsn = record.prev_lsn
        assert seen_undoable == 0


class TestIsolationLevels:
    def test_default_is_repeatable_read(self, db):
        txn = db.begin()
        assert txn.isolation is IsolationLevel.REPEATABLE_READ
        assert txn.repeatable_read

    def test_read_committed(self, db):
        txn = db.begin(IsolationLevel.READ_COMMITTED)
        assert not txn.repeatable_read
