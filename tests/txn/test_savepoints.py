"""Savepoints and partial rollback (section 10.2)."""

import pytest

from repro.errors import TransactionStateError
from repro.ext.btree import BTreeExtension, Interval


class TestPartialRollback:
    def test_rollback_to_savepoint_undoes_later_work_only(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "before")
        sp = db.txns.savepoint(txn, "sp1")
        tree.insert(txn, 2, "after")
        db.txns.rollback_to_savepoint(txn, sp)
        # still inside the transaction: 'before' visible, 'after' gone
        assert tree.search(txn, Interval(0, 10)) == [(1, "before")]
        db.commit(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 10)) == [(1, "before")]
        db.commit(check)

    def test_rollback_to_savepoint_restores_deletes(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        setup = db.begin()
        tree.insert(setup, 5, "r5")
        db.commit(setup)
        txn = db.begin()
        sp = db.txns.savepoint(txn)
        tree.delete(txn, 5, "r5")
        assert tree.search(txn, Interval(5, 5)) == []
        db.txns.rollback_to_savepoint(txn, sp)
        assert tree.search(txn, Interval(5, 5)) == [(5, "r5")]
        db.commit(txn)

    def test_transaction_continues_after_partial_rollback(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        sp = db.txns.savepoint(txn)
        tree.insert(txn, 1, "a")
        db.txns.rollback_to_savepoint(txn, sp)
        tree.insert(txn, 2, "b")
        db.commit(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 10)) == [(2, "b")]
        db.commit(check)

    def test_nested_savepoints(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "a")
        sp1 = db.txns.savepoint(txn, "one")
        tree.insert(txn, 2, "b")
        sp2 = db.txns.savepoint(txn, "two")
        tree.insert(txn, 3, "c")
        db.txns.rollback_to_savepoint(txn, sp2)
        assert {r for _, r in tree.search(txn, Interval(0, 10))} == {
            "a",
            "b",
        }
        db.txns.rollback_to_savepoint(txn, sp1)
        assert {r for _, r in tree.search(txn, Interval(0, 10))} == {"a"}
        db.commit(txn)

    def test_rollback_to_inner_then_outer(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        sp1 = db.txns.savepoint(txn)
        tree.insert(txn, 1, "a")
        sp2 = db.txns.savepoint(txn)
        db.txns.rollback_to_savepoint(txn, sp2)
        db.txns.rollback_to_savepoint(txn, sp1)
        assert tree.search(txn, Interval(0, 10)) == []
        db.commit(txn)

    def test_rollback_to_dead_savepoint_raises(self, db):
        txn = db.begin()
        sp1 = db.txns.savepoint(txn)
        sp2 = db.txns.savepoint(txn)
        db.txns.rollback_to_savepoint(txn, sp1)  # discards sp2
        with pytest.raises(TransactionStateError):
            db.txns.rollback_to_savepoint(txn, sp2)
        db.commit(txn)

    def test_full_rollback_after_partial(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        tree.insert(txn, 1, "a")
        sp = db.txns.savepoint(txn)
        tree.insert(txn, 2, "b")
        db.txns.rollback_to_savepoint(txn, sp)
        db.rollback(txn)
        check = db.begin()
        assert tree.search(check, Interval(0, 10)) == []
        db.commit(check)

    def test_locks_survive_partial_rollback(self, db):
        """Strict 2PL: partial rollback releases no locks."""
        tree = db.create_tree("bt", BTreeExtension())
        txn = db.begin()
        sp = db.txns.savepoint(txn)
        tree.insert(txn, 1, "a")
        db.txns.rollback_to_savepoint(txn, sp)
        assert db.locks.held_mode(txn.xid, ("rid", "a")) is not None
        db.commit(txn)


class TestCursorRestoration:
    def test_open_cursor_position_restored(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        setup = db.begin()
        for i in range(40):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 39))
        first_half = [cursor.fetch_next() for _ in range(10)]
        sp = db.txns.savepoint(txn)
        more = [cursor.fetch_next() for _ in range(10)]
        db.txns.rollback_to_savepoint(txn, sp)
        # the cursor resumes from the savepoint position: re-fetching
        # yields the same stream it produced after the savepoint
        replay = [cursor.fetch_next() for _ in range(10)]
        assert replay == more
        rest = cursor.fetch_all()
        cursor.close()
        seen = {r for _, r in first_half + more + rest}
        assert seen == {f"r{i}" for i in range(40)}
        db.commit(txn)

    def test_savepoint_snapshot_contains_cursor_stack(self, db):
        tree = db.create_tree("bt", BTreeExtension())
        setup = db.begin()
        for i in range(20):
            tree.insert(setup, i, f"r{i}")
        db.commit(setup)
        txn = db.begin()
        cursor = tree.open_cursor(txn, Interval(0, 19))
        cursor.fetch_next()
        sp = db.txns.savepoint(txn)
        assert cursor in sp.cursor_stacks
        snapshot = sp.cursor_stacks[cursor]
        assert "stack" in snapshot and "seen" in snapshot
        cursor.close()
        db.commit(txn)
