"""Unit tests of the Transaction object's bookkeeping."""

import pytest

from repro.errors import TransactionStateError
from repro.txn.transaction import (
    IsolationLevel,
    Savepoint,
    Transaction,
    TxnState,
)


class TestStateMachine:
    def test_fresh_transaction_active(self):
        txn = Transaction(1)
        assert txn.is_active
        txn.require_active()  # no raise

    def test_rolling_back_counts_as_active_but_not_usable(self):
        txn = Transaction(1)
        txn.state = TxnState.ROLLING_BACK
        assert txn.is_active
        with pytest.raises(TransactionStateError):
            txn.require_active()

    def test_finished_states(self):
        txn = Transaction(1)
        txn.state = TxnState.COMMITTED
        assert not txn.is_active
        with pytest.raises(TransactionStateError):
            txn.require_active()

    def test_isolation_flags(self):
        assert Transaction(1).repeatable_read
        assert not Transaction(
            2, IsolationLevel.READ_COMMITTED
        ).repeatable_read
        assert not Transaction(
            3, IsolationLevel.READ_UNCOMMITTED
        ).repeatable_read


class TestSignalingBookkeeping:
    def test_note_then_release(self):
        txn = Transaction(1)
        txn.note_signaling(("node", "t", 5))
        assert txn.may_release_signaling(("node", "t", 5))
        txn.drop_signaling(("node", "t", 5))
        assert not txn.may_release_signaling(("node", "t", 5))

    def test_eot_pin_blocks_release(self):
        txn = Transaction(1)
        name = ("node", "t", 5)
        txn.note_signaling(name)
        txn.pin_signaling_to_eot(name)
        assert not txn.may_release_signaling(name)

    def test_savepoint_pin_blocks_release_until_popped(self):
        txn = Transaction(1)
        name = ("node", "t", 5)
        txn.note_signaling(name)
        sp = Savepoint(name="s", lsn=0, pinned_signaling={name})
        txn.add_savepoint(sp)
        assert not txn.may_release_signaling(name)
        txn.release_savepoint(sp)
        assert txn.may_release_signaling(name)

    def test_nested_savepoint_pins_recomputed(self):
        txn = Transaction(1)
        n1, n2 = ("node", "t", 1), ("node", "t", 2)
        txn.note_signaling(n1)
        txn.note_signaling(n2)
        sp1 = Savepoint(name="1", lsn=0, pinned_signaling={n1})
        sp2 = Savepoint(name="2", lsn=0, pinned_signaling={n2})
        txn.add_savepoint(sp1)
        txn.add_savepoint(sp2)
        assert not txn.may_release_signaling(n2)
        txn.pop_savepoints_after(sp1)  # sp2 gone
        assert txn.may_release_signaling(n2)
        assert not txn.may_release_signaling(n1)

    def test_signaling_counts(self):
        txn = Transaction(1)
        name = ("node", "t", 9)
        txn.note_signaling(name)
        txn.note_signaling(name)
        txn.drop_signaling(name)
        assert txn.may_release_signaling(name)
        txn.drop_signaling(name)
        assert not txn.may_release_signaling(name)


class TestCursorRegistry:
    def test_register_unregister(self):
        txn = Transaction(1)
        cursor = object()
        txn.register_cursor(cursor)
        assert txn.open_cursors() == [cursor]
        txn.unregister_cursor(cursor)
        assert txn.open_cursors() == []

    def test_unregister_unknown_is_noop(self):
        txn = Transaction(1)
        txn.unregister_cursor(object())
