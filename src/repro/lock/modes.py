"""Lock modes, compatibility and conversion (supremum) tables.

The paper's protocols only need S and X locks (data-record locks,
signaling locks, owner-transaction locks), but a production lock manager
carries the full multi-granularity set, and the harness uses intention
modes for table-level locking in the isolation experiments, so we
implement the classic five-mode matrix from Gray & Reuter.
"""

from __future__ import annotations

from enum import Enum


class LockMode(Enum):
    """Multi-granularity lock modes."""

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"


_ORDER = {
    LockMode.IS: 0,
    LockMode.IX: 1,
    LockMode.S: 2,
    LockMode.SIX: 3,
    LockMode.X: 4,
}

#: compat[a][b] is True when a lock held in mode ``a`` is compatible with a
#: request for mode ``b``.
_COMPAT: dict[LockMode, set[LockMode]] = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.SIX: {LockMode.IS},
    LockMode.X: set(),
}

#: supremum[(a, b)] is the weakest mode at least as strong as both.
_SUP: dict[tuple[LockMode, LockMode], LockMode] = {}
for _a in LockMode:
    for _b in LockMode:
        if _a is _b:
            _SUP[(_a, _b)] = _a
        elif {_a, _b} == {LockMode.S, LockMode.IX}:
            _SUP[(_a, _b)] = LockMode.SIX
        elif _ORDER[_a] >= _ORDER[_b]:
            _SUP[(_a, _b)] = _a
        else:
            _SUP[(_a, _b)] = _b


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True if ``requested`` can be granted alongside ``held``."""
    return requested in _COMPAT[held]


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """The weakest mode at least as strong as both ``a`` and ``b``."""
    return _SUP[(a, b)]


def stronger_or_equal(a: LockMode, b: LockMode) -> bool:
    """True if holding ``a`` subsumes a request for ``b``."""
    return supremum(a, b) is a
