"""The lock manager.

Implements the transactional locking substrate the paper assumes:

* multi-mode locks on arbitrary hashable names (data-record RIDs,
  node ids for *signaling locks*, owner-transaction ids for blocking
  "on a predicate" — see section 10.3),
* FIFO wait queues with immediate-grant conversions,
* waits-for-graph deadlock detection with youngest-victim abort (the
  paper relies on this to resolve the unique-index insertion race of
  section 8),
* no-wait acquisition (used by node deletion to probe signaling locks,
  section 7.2).

Unlike latches, locks are held by *transactions*, are organized in a hash
table, and are checked for deadlock — exactly the distinction footnote 8
of the paper draws.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter_ns

from repro.errors import DeadlockError, LockTimeoutError
from repro.lock.modes import LockMode, compatible, stronger_or_equal, supremum
from repro.obs.metrics import MetricsRegistry

#: Lock names are arbitrary hashables; by convention the library uses
#: tuples like ``("rid", rid)``, ``("node", pid)``, ``("txn", xid)``.
LockName = object
#: Lock owners are transaction ids (ints) by convention.
Owner = object


@dataclass
class _Request:
    owner: Owner
    mode: LockMode
    convert_from: LockMode | None = None
    granted: bool = False
    victim: bool = False
    timed_out: bool = False


@dataclass
class _LockHead:
    name: LockName
    granted: dict[Owner, LockMode] = field(default_factory=dict)
    counts: dict[Owner, int] = field(default_factory=dict)
    queue: deque[_Request] = field(default_factory=deque)


class LockStats:
    """Counters the benchmarks read off the lock manager.

    The ints are only ever mutated while the manager's mutex is held, so
    plain ``+=`` is exact; the registry reads them through ``lock.*``
    gauges evaluated at snapshot time, which makes a lock acquisition
    cost zero registry calls on the hot path.  Only the wait-time
    histogram is a live registry instrument (waits are rare and already
    expensive).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry or MetricsRegistry()
        #: mutated under the manager mutex only
        self.acquires = 0
        self.waits = 0
        self.deadlocks = 0
        self.timeouts = 0
        registry.gauge("lock.acquires", lambda: self.acquires)
        registry.gauge("lock.waits", lambda: self.waits)
        registry.gauge("lock.deadlocks", lambda: self.deadlocks)
        registry.gauge("lock.timeouts", lambda: self.timeouts)
        self.wait_ns = registry.histogram("lock.wait_ns")

    def note_acquire(self) -> None:
        """Count one acquisition request (manager mutex held)."""
        self.acquires += 1

    def note_wait(self) -> None:
        """Count one queued wait (manager mutex held)."""
        self.waits += 1

    def note_deadlock(self) -> None:
        """Count one deadlock-victim abort (manager mutex held)."""
        self.deadlocks += 1

    def note_timeout(self) -> None:
        """Count one abandoned wait (manager mutex held)."""
        self.timeouts += 1

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        return {
            "acquires": self.acquires,
            "waits": self.waits,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
        }


class LockManager:
    """A strict-queue lock manager with deadlock detection.

    Parameters
    ----------
    default_timeout:
        Backstop timeout in seconds for any wait (protects the test suite
        against undetected hangs).  ``None`` waits forever.
    metrics:
        Metrics registry for the ``lock.*`` counters and wait-time
        histogram; a private registry is created when omitted.
    """

    def __init__(
        self,
        default_timeout: float | None = 30.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.default_timeout = default_timeout
        self.stats = LockStats(metrics)
        #: lockdep witness (Database(protocol_checks=True)); flags any
        #: blocking lock wait entered while the thread holds a latch
        self.witness = None
        #: span tracker (Database(op_tracing=True)); lock waits are
        #: attributed to the blocked thread's active operation span
        self.tracker = None
        #: flight recorder (black box); deadlock-victim selection is a
        #: rare, semantically heavy event and is always recorded
        self.flightrec = None
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._heads: dict[LockName, _LockHead] = {}
        self._held: dict[Owner, set[LockName]] = {}
        #: owners currently waiting, mapped to their queued request + head
        self._waiting: dict[Owner, tuple[_Request, _LockHead]] = {}

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: Owner,
        name: LockName,
        mode: LockMode,
        *,
        wait: bool = True,
        timeout: float | None = None,
    ) -> bool:
        """Acquire ``name`` in ``mode`` on behalf of ``owner``.

        Returns ``True`` when granted.  With ``wait=False`` returns
        ``False`` immediately instead of blocking.  Raises
        :class:`DeadlockError` if this request closes a waits-for cycle
        and ``owner`` is chosen as the victim, or
        :class:`LockTimeoutError` on timeout.
        """
        if timeout is None:
            timeout = self.default_timeout
        with self._mutex:
            self.stats.note_acquire()
            head = self._heads.get(name)
            if head is None:
                head = _LockHead(name)
                self._heads[name] = head

            held = head.granted.get(owner)
            if held is not None:
                if stronger_or_equal(held, mode):
                    head.counts[owner] += 1
                    return True
                target = supremum(held, mode)
                if self._conversion_grantable(head, owner, target):
                    head.granted[owner] = target
                    head.counts[owner] += 1
                    return True
                if not wait:
                    return False
                request = _Request(owner, target, convert_from=held)
                # Conversions go ahead of ordinary waiters but behind
                # earlier conversions (FIFO among conversions).
                insert_at = 0
                for i, queued in enumerate(head.queue):
                    if queued.convert_from is None:
                        break
                    insert_at = i + 1
                head.queue.insert(insert_at, request)
            else:
                if self._fresh_grantable(head, mode):
                    self._grant(head, owner, mode)
                    return True
                if not wait:
                    return False
                request = _Request(owner, mode)
                head.queue.append(request)

            return self._wait_for_grant(head, request, timeout)

    def _wait_for_grant(
        self, head: _LockHead, request: _Request, timeout: float | None
    ) -> bool:
        """Block (mutex held) until the queued request is granted."""
        if self.witness is not None:
            # An actual (not merely potential) wait is starting: the
            # paper forbids holding any latch across this point.
            self.witness.note_lock_wait(head.name)
        self.stats.note_wait()
        self._waiting[request.owner] = (request, head)
        wait_start = perf_counter_ns()
        try:
            self._detect_deadlock()
            remaining = timeout
            while not request.granted:
                if request.victim:
                    self._remove_request(head, request)
                    self.stats.note_deadlock()
                    raise DeadlockError(
                        f"transaction {request.owner!r} chosen as deadlock "
                        f"victim waiting for {head.name!r}"
                    )
                if remaining is not None and remaining <= 0:
                    self._remove_request(head, request)
                    self.stats.note_timeout()
                    raise LockTimeoutError(
                        f"lock wait timeout on {head.name!r} by "
                        f"{request.owner!r}"
                    )
                slice_ = 0.05 if remaining is None else min(0.05, remaining)
                self._cond.wait(slice_)
                if remaining is not None:
                    remaining -= slice_
            return True
        finally:
            # Every wait is measured — granted, victimized or timed out;
            # the histogram is the latency face of the waits counter.
            wait_ns = perf_counter_ns() - wait_start
            self.stats.wait_ns.record(wait_ns)
            if self.tracker is not None:
                self.tracker.add_lock_wait(wait_ns)
            self._waiting.pop(request.owner, None)

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def release(self, owner: Owner, name: LockName) -> None:
        """Drop one acquisition of ``name`` by ``owner``."""
        with self._mutex:
            head = self._heads.get(name)
            if head is None or owner not in head.granted:
                return
            head.counts[owner] -= 1
            if head.counts[owner] > 0:
                return
            del head.granted[owner]
            del head.counts[owner]
            held = self._held.get(owner)
            if held is not None:
                held.discard(name)
            self._promote(head)

    def release_all(self, owner: Owner) -> None:
        """Release every lock held by ``owner`` (end of transaction)."""
        with self._mutex:
            names = list(self._held.get(owner, ()))
            for name in names:
                head = self._heads.get(name)
                if head is None or owner not in head.granted:
                    continue
                del head.granted[owner]
                del head.counts[owner]
                self._promote(head)
            self._held.pop(owner, None)

    def replicate_shared(self, src: LockName, dst: LockName) -> list[Owner]:
        """Copy every S-mode holder of ``src`` onto ``dst``.

        This is the lock-manager extension the paper calls for in
        section 10.3: when a node splits, the signaling locks set on the
        original node must be replicated on the new right sibling, so
        that operations holding *indirect* references (a stacked pointer
        plus an NSN that will lead them across the rightlink) keep the
        sibling safe from deletion.  S locks never conflict with each
        other, so the copies are granted immediately.
        """
        copied: list[Owner] = []
        with self._mutex:
            src_head = self._heads.get(src)
            if src_head is None:
                return copied
            holders = [
                (owner, src_head.counts[owner])
                for owner, mode in src_head.granted.items()
                if mode is LockMode.S
            ]
            if not holders:
                return copied
            dst_head = self._heads.get(dst)
            if dst_head is None:
                dst_head = _LockHead(dst)
                self._heads[dst] = dst_head
            for owner, count in holders:
                # The full count is copied: each acquisition corresponds
                # to one stacked pointer whose owner will traverse the
                # rightlink into ``dst`` and release one count there.
                if owner in dst_head.granted:
                    dst_head.counts[owner] += count
                else:
                    self._grant(dst_head, owner, LockMode.S)
                    dst_head.counts[owner] = count
                copied.append(owner)
        return copied

    def downgrade(self, owner: Owner, name: LockName, mode: LockMode) -> None:
        """Reduce the held mode (e.g. X -> S); may unblock waiters."""
        with self._mutex:
            head = self._heads.get(name)
            if head is None or owner not in head.granted:
                return
            head.granted[owner] = mode
            self._promote(head)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def holders(self, name: LockName) -> dict[Owner, LockMode]:
        """Granted owners of ``name`` with their modes."""
        with self._mutex:
            head = self._heads.get(name)
            return dict(head.granted) if head else {}

    def held_mode(self, owner: Owner, name: LockName) -> LockMode | None:
        """Mode in which ``owner`` holds ``name``, or ``None``."""
        with self._mutex:
            head = self._heads.get(name)
            return head.granted.get(owner) if head else None

    def locks_of(self, owner: Owner) -> set[LockName]:
        """All lock names currently held by ``owner``."""
        with self._mutex:
            return set(self._held.get(owner, ()))

    def waiting_owners(self) -> list[Owner]:
        """Owners currently blocked in a lock wait (diagnostics)."""
        with self._mutex:
            return list(self._waiting)

    # ------------------------------------------------------------------
    # internals (mutex held)
    # ------------------------------------------------------------------
    def _grant(self, head: _LockHead, owner: Owner, mode: LockMode) -> None:
        head.granted[owner] = mode
        head.counts[owner] = head.counts.get(owner, 0) + 1
        self._held.setdefault(owner, set()).add(head.name)

    def _fresh_grantable(self, head: _LockHead, mode: LockMode) -> bool:
        if head.queue:
            return False  # FIFO fairness: never overtake waiters
        return all(compatible(m, mode) for m in head.granted.values())

    def _conversion_grantable(
        self, head: _LockHead, owner: Owner, target: LockMode
    ) -> bool:
        return all(
            compatible(m, target)
            for other, m in head.granted.items()
            if other != owner
        )

    def _promote(self, head: _LockHead) -> None:
        """Grant queued requests now possible, preserving FIFO order."""
        woke = False
        while head.queue:
            request = head.queue[0]
            if request.convert_from is not None:
                if not self._conversion_grantable(
                    head, request.owner, request.mode
                ):
                    break
                head.granted[request.owner] = request.mode
                head.counts[request.owner] += 1
            else:
                if not all(
                    compatible(m, request.mode)
                    for m in head.granted.values()
                ):
                    break
                self._grant(head, request.owner, request.mode)
            head.queue.popleft()
            request.granted = True
            woke = True
        if not head.granted and not head.queue:
            self._heads.pop(head.name, None)
        if woke:
            self._cond.notify_all()

    def _remove_request(self, head: _LockHead, request: _Request) -> None:
        try:
            head.queue.remove(request)
        except ValueError:
            pass
        self._promote(head)

    # ------------------------------------------------------------------
    # deadlock detection (mutex held)
    # ------------------------------------------------------------------
    def _blockers_of(self, request: _Request, head: _LockHead) -> set[Owner]:
        """Owners this queued request is waiting on."""
        blockers: set[Owner] = set()
        for other, mode in head.granted.items():
            if other == request.owner:
                continue
            if not compatible(mode, request.mode):
                blockers.add(other)
        for queued in head.queue:
            if queued is request:
                break
            if queued.owner != request.owner and not compatible(
                queued.mode, request.mode
            ):
                blockers.add(queued.owner)
        return blockers

    def _detect_deadlock(self) -> None:
        """Find waits-for cycles; mark the youngest member a victim.

        "Youngest" is the largest owner id under Python ordering when
        comparable, else the most recent waiter.
        """
        graph: dict[Owner, set[Owner]] = {}
        for owner, (request, head) in self._waiting.items():
            graph[owner] = self._blockers_of(request, head)

        visited: set[Owner] = set()
        for start in list(graph):
            if start in visited:
                continue
            cycle = self._find_cycle(graph, start, visited)
            if not cycle:
                continue
            victim = self._pick_victim(cycle)
            entry = self._waiting.get(victim)
            if entry is not None:
                entry[0].victim = True
                if self.flightrec is not None:
                    # leaf-safe: the recorder takes only its ring lock
                    self.flightrec.record(
                        "lock.deadlock_victim",
                        victim=repr(victim),
                        cycle=[repr(o) for o in cycle],
                        lock=repr(entry[1].name),
                    )
                self._cond.notify_all()

    @staticmethod
    def _find_cycle(
        graph: dict[Owner, set[Owner]], start: Owner, visited: set[Owner]
    ) -> list[Owner] | None:
        path: list[Owner] = []
        on_path: set[Owner] = set()

        def dfs(node: Owner) -> list[Owner] | None:
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for neighbor in graph.get(node, ()):
                if neighbor in on_path:
                    idx = path.index(neighbor)
                    return path[idx:]
                if neighbor in graph and neighbor not in visited:
                    found = dfs(neighbor)
                    if found:
                        return found
            path.pop()
            on_path.discard(node)
            return None

        return dfs(start)

    @staticmethod
    def _pick_victim(cycle: list[Owner]) -> Owner:
        try:
            return max(cycle)  # type: ignore[type-var]
        except TypeError:
            return cycle[-1]
