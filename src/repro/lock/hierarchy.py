"""Multi-granularity (hierarchical) locking helper.

The lock manager implements the full IS/IX/S/SIX/X matrix; this helper
packages the classic two-level protocol on top of it: intention locks on
a coarse resource (a table / an index) before real locks on the fine
ones (records), enabling cheap whole-table operations — a bulk loader
takes one X table lock instead of a million record locks, and a table
scan under SIX reads everything while still updating selected rows.

The tree algorithms themselves do not use this (the paper's protocols
are record + predicate based); it serves applications and the harness,
and doubles as the executable specification of the mode matrix.
"""

from __future__ import annotations

from repro.lock.manager import LockManager
from repro.lock.modes import LockMode


def table_lock(table: str) -> tuple:
    """Lock name of a whole table."""
    return ("table", table)


def record_lock(table: str, rid: object) -> tuple:
    """Lock name of one record within a table."""
    return ("table-record", table, rid)


class HierarchicalLocker:
    """Two-level intention locking over a :class:`LockManager`."""

    def __init__(self, locks: LockManager) -> None:
        self.locks = locks

    # ------------------------------------------------------------------
    # record-level access (with the proper intention on the table)
    # ------------------------------------------------------------------
    def read_record(
        self, xid: int, table: str, rid: object, *, wait: bool = True
    ) -> bool:
        """IS on the table, S on the record."""
        if not self.locks.acquire(
            xid, table_lock(table), LockMode.IS, wait=wait
        ):
            return False
        if not self.locks.acquire(
            xid, record_lock(table, rid), LockMode.S, wait=wait
        ):
            return False
        return True

    def write_record(
        self, xid: int, table: str, rid: object, *, wait: bool = True
    ) -> bool:
        """IX on the table, X on the record."""
        if not self.locks.acquire(
            xid, table_lock(table), LockMode.IX, wait=wait
        ):
            return False
        if not self.locks.acquire(
            xid, record_lock(table, rid), LockMode.X, wait=wait
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # table-level access
    # ------------------------------------------------------------------
    def read_table(
        self, xid: int, table: str, *, wait: bool = True
    ) -> bool:
        """S on the whole table: a scan needing no record locks at all.

        Compatible with other readers and with IS, but blocks any
        writer's IX — the coarse trade the hierarchy exists for.
        """
        return self.locks.acquire(
            xid, table_lock(table), LockMode.S, wait=wait
        )

    def read_table_with_updates(
        self, xid: int, table: str, *, wait: bool = True
    ) -> bool:
        """SIX: read everything, then X individual records to update."""
        return self.locks.acquire(
            xid, table_lock(table), LockMode.SIX, wait=wait
        )

    def exclusive_table(
        self, xid: int, table: str, *, wait: bool = True
    ) -> bool:
        """X on the whole table (bulk load, drop, reorganization)."""
        return self.locks.acquire(
            xid, table_lock(table), LockMode.X, wait=wait
        )

    # ------------------------------------------------------------------
    # escalation
    # ------------------------------------------------------------------
    def escalate_to_table(
        self, xid: int, table: str, *, wait: bool = True
    ) -> bool:
        """Convert the transaction's intention into a full table lock.

        Classic lock escalation: when a transaction has accumulated many
        record locks, trade them for one coarse lock.  The record locks
        are *released* after the table lock is granted (they are then
        subsumed by it).
        """
        granted = self.locks.acquire(
            xid, table_lock(table), LockMode.X, wait=wait
        )
        if not granted:
            return False
        for name in list(self.locks.locks_of(xid)):
            if (
                isinstance(name, tuple)
                and name[:2] == ("table-record", table)
            ):
                while self.locks.held_mode(xid, name) is not None:
                    self.locks.release(xid, name)
        return True

    def release_all(self, xid: int) -> None:
        """End of transaction: drop every lock ``xid`` holds."""
        self.locks.release_all(xid)
