"""Transactional lock manager: modes, queues, deadlock detection."""

from repro.lock.hierarchy import (
    HierarchicalLocker,
    record_lock,
    table_lock,
)
from repro.lock.manager import LockManager, LockName, LockStats, Owner
from repro.lock.modes import LockMode, compatible, stronger_or_equal, supremum

__all__ = [
    "HierarchicalLocker",
    "LockManager",
    "LockMode",
    "LockName",
    "LockStats",
    "Owner",
    "compatible",
    "record_lock",
    "table_lock",
    "stronger_or_equal",
    "supremum",
]
