"""Pure predicate locking (section 4.2) — the baseline the hybrid beats.

Under pure predicate locking every operation registers its predicate in
a **tree-global table** before touching the index, after checking the
entire table for conflicts.  The two drawbacks the paper names fall out
directly:

* conflict checks scan the whole global list (no way to index arbitrary
  predicates), so an insert pays one ``consistent()`` call per live scan
  predicate in the *whole tree*, not per predicate attached to its
  target leaf;
* the full search range is locked up-front, before the first data record
  is retrieved.

The implementation wraps any object with ``insert/search/delete`` (the
baseline trees) and enforces repeatable read purely through the global
table; the benchmark reads ``stats.comparisons`` to reproduce the
hybrid-vs-pure cost curve (experiment C2).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import LockTimeoutError


@dataclass
class GlobalPredicate:
    """One entry in the global predicate table."""

    owner: int
    pred: object
    kind: str  # "search" | "insert" | "delete"
    seqno: int = 0


class GlobalPredicateStats:
    """Counters for the pure-predicate-locking cost experiment (C2)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.checks = 0
        self.comparisons = 0
        self.blocks = 0

    def note(self, comparisons: int, blocked: bool) -> None:
        """Record one conflict check."""
        with self._lock:
            self.checks += 1
            self.comparisons += comparisons
            if blocked:
                self.blocks += 1

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        with self._lock:
            return {
                "checks": self.checks,
                "comparisons": self.comparisons,
                "blocks": self.blocks,
            }


#: which predicate kinds conflict with which (readers conflict with
#: writers and vice versa; readers never conflict with readers)
_CONFLICTS = {
    "search": ("insert", "delete"),
    "insert": ("search",),
    "delete": ("search",),
}


class GlobalPredicateTable:
    """The tree-global predicate list of section 4.2."""

    def __init__(
        self,
        consistent: Callable[[object, object], bool],
        timeout: float = 30.0,
    ) -> None:
        self.consistent = consistent
        self.timeout = timeout
        self.stats = GlobalPredicateStats()
        self._cond = threading.Condition()
        self._table: list[GlobalPredicate] = []
        self._seq = itertools.count(1)

    def register(
        self, owner: int, pred: object, kind: str
    ) -> GlobalPredicate:
        """Check the whole table for conflicts, block until clear, then
        register (the §4.2 protocol: set your own predicate only after
        verifying no conflicting predicates exist)."""
        deadline = self.timeout
        with self._cond:
            while True:
                comparisons, conflict = self._scan_locked(owner, pred, kind)
                self.stats.note(comparisons, conflict is not None)
                if conflict is None:
                    entry = GlobalPredicate(
                        owner, pred, kind, next(self._seq)
                    )
                    self._table.append(entry)
                    return entry
                if deadline <= 0:
                    raise LockTimeoutError(
                        f"pure predicate lock wait timeout for {owner}"
                    )
                self._cond.wait(0.05)
                deadline -= 0.05

    def _scan_locked(
        self, owner: int, pred: object, kind: str
    ) -> tuple[int, GlobalPredicate | None]:
        conflicting_kinds = _CONFLICTS[kind]
        comparisons = 0
        for entry in self._table:
            if entry.owner == owner or entry.kind not in conflicting_kinds:
                continue
            comparisons += 1
            if self.consistent(entry.pred, pred):
                return comparisons, entry
        return comparisons, None

    def release_owner(self, owner: int) -> None:
        """Drop every predicate the owner registered; wake waiters."""
        with self._cond:
            self._table = [e for e in self._table if e.owner != owner]
            self._cond.notify_all()

    def size(self) -> int:
        """Number of predicates currently in the global table."""
        with self._cond:
            return len(self._table)


class PurePredicateIndex:
    """Repeatable read via pure predicate locking over a baseline tree.

    ``owner`` plays the role of a transaction id; all its predicates are
    dropped at :meth:`end`.
    """

    def __init__(self, tree, timeout: float = 30.0) -> None:
        self.tree = tree
        self.table = GlobalPredicateTable(
            tree.ext.consistent, timeout=timeout
        )

    def search(self, owner: int, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching the query (protocol-specific traversal)."""
        self.table.register(owner, query, "search")
        return self.tree.search(query)

    def insert(self, owner: int, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair under this protocol's latching discipline."""
        self.table.register(owner, self.tree.ext.eq_query(key), "insert")
        self.tree.insert(key, rid)

    def delete(self, owner: int, key: object, rid: object) -> bool:
        """Remove a pair (protocol-specific)."""
        self.table.register(owner, self.tree.ext.eq_query(key), "delete")
        return self.tree.delete(key, rid)

    def end(self, owner: int) -> None:
        """Transaction end: release every predicate the owner holds."""
        self.table.release_owner(owner)
