"""Baselines the paper argues against, for head-to-head benchmarks."""

from repro.baselines.keyrange import EOF_LOCK, KeyRangeIndex
from repro.baselines.purepred import (
    GlobalPredicateTable,
    PurePredicateIndex,
)
from repro.baselines.simpletree import (
    PROTOCOLS,
    BaselineTree,
    CouplingTree,
    LinkTree,
    NaiveTree,
    SubtreeTree,
    make_baseline,
)

__all__ = [
    "EOF_LOCK",
    "PROTOCOLS",
    "BaselineTree",
    "CouplingTree",
    "GlobalPredicateTable",
    "KeyRangeIndex",
    "LinkTree",
    "NaiveTree",
    "PurePredicateIndex",
    "SubtreeTree",
    "make_baseline",
]
