"""Protocol-isolated baseline trees.

These trees share the production storage substrate (pages, buffer pool,
simulated-I/O disk) and the same extension interface as the real GiST,
but strip away transactions, WAL and predicate locking.  What varies is
*only* the concurrency-control protocol, so head-to-head benchmarks
isolate the quantity the paper's claims are about:

=====================  ======================================================
:class:`NaiveTree`     no split compensation at all — structurally sound but
                       traversals can miss concurrent splits; reproduces the
                       Figure 1 anomaly
:class:`LinkTree`      the paper's protocol (NSN + rightlink, no coupling):
                       no latch is ever held across an I/O
:class:`CouplingTree`  latch-coupling descent (hold the parent latch while
                       fetching the child — i.e. across the child's I/O);
                       writers release ancestors above the highest safe node
:class:`SubtreeTree`   conservative subtree X-locking in the spirit of
                       [BS77]: a writer X-latches its entire root-to-leaf
                       path for the duration of the operation
=====================  ======================================================

All four expose the same non-transactional API (``insert``, ``search``,
``delete``) so the benchmark driver can swap them freely.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError
from repro.gist.extension import GiSTExtension
from repro.storage.buffer import BufferPool, Frame
from repro.storage.disk import PageStore
from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageId,
    PageKind,
)
from repro.sync.hooks import NULL_HOOKS, Hooks
from repro.sync.latch import LatchMode


class _Restart(Exception):
    """Internal: the descent must restart (e.g. the root just grew)."""


class BaselineStats:
    """Counters shared by the baseline trees."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.searches = 0
        self.inserts = 0
        self.splits = 0
        self.rightlink_follows = 0
        self.restarts = 0

    def bump(self, field: str, amount: int = 1) -> None:
        """Increment a named counter."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        with self._lock:
            return {
                k: v
                for k, v in self.__dict__.items()
                if not k.startswith("_")
            }


def _pred_of(entry: LeafEntry | InternalEntry) -> object:
    return entry.key if isinstance(entry, LeafEntry) else entry.pred


class BaselineTree:
    """Shared mechanics: storage, splits, BP maintenance."""

    #: protocol label used in benchmark reports
    protocol = "abstract"

    def __init__(
        self,
        extension: GiSTExtension,
        *,
        io_delay: float = 0.0,
        page_capacity: int = 32,
        pool_capacity: int = 4096,
        hooks: Hooks | None = None,
        store: PageStore | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        self.ext = extension
        self.store = store or PageStore(
            io_delay=io_delay, page_capacity=page_capacity
        )
        self.pool = pool or BufferPool(self.store, capacity=pool_capacity)
        self.hooks = hooks or NULL_HOOKS
        self.stats = BaselineStats()
        root = self.store.new_page(PageKind.LEAF)
        frame = self.pool.adopt(root)
        frame.dirty = True
        self.root_pid = root.pid
        self._nsn_lock = threading.Lock()
        self._nsn = 0

    # ------------------------------------------------------------------
    # NSN helpers (used by LinkTree; others ignore them)
    # ------------------------------------------------------------------
    def _nsn_current(self) -> int:
        with self._nsn_lock:
            return self._nsn

    def _nsn_next(self) -> int:
        with self._nsn_lock:
            self._nsn += 1
            return self._nsn

    # ------------------------------------------------------------------
    # split mechanics
    # ------------------------------------------------------------------
    def _recompute_bp(self, page: Page) -> None:
        page.bp = self.ext.union([_pred_of(e) for e in page.entries])

    def _do_split(
        self, frame: Frame, parent_frame: Frame, *, link: bool
    ) -> tuple[Frame, Frame]:
        """Split ``frame`` (X-latched, non-root); install the downlink in
        ``parent_frame`` (X-latched, has room).  Returns (orig, new),
        both X-latched."""
        page = frame.page
        stay_idx, move_idx = self.ext.pick_split(
            [_pred_of(e) for e in page.entries]
        )
        new_page = self.store.new_page(page.kind, page.level)
        new_frame = self.pool.adopt(new_page)
        self.pool.pin(new_page.pid)
        try:
            new_frame.latch.acquire(LatchMode.X)
        except BaseException:
            # never strand the pin if the latch grant fails
            self.pool.unpin(new_page.pid)
            raise
        new_page.entries = [page.entries[i].copy() for i in move_idx]
        page.entries = [page.entries[i] for i in stay_idx]
        self._recompute_bp(new_page)
        self._recompute_bp(page)
        if link:
            new_page.nsn = page.nsn
            new_page.rightlink = page.rightlink
            page.nsn = self._nsn_next()
            page.rightlink = new_page.pid
        frame.dirty = True
        new_frame.dirty = True
        self.stats.bump("splits")
        parent_page = parent_frame.page
        entry = parent_page.find_child_entry(page.pid)
        if entry is not None:
            entry.pred = page.bp
        parent_page.add_entry(InternalEntry(new_page.bp, new_page.pid))
        parent_frame.dirty = True
        self.hooks.fire(
            "insert:after-split", pid=page.pid, new_pid=new_page.pid
        )
        return frame, new_frame

    def _grow_root(self, frame: Frame, *, link: bool) -> None:
        """Root split: move contents into two children (stable root id)."""
        page = frame.page
        stay_idx, move_idx = self.ext.pick_split(
            [_pred_of(e) for e in page.entries]
        )
        kind, level = page.kind, page.level
        left = self.store.new_page(kind, level)
        right = self.store.new_page(kind, level)
        left_frame = self.pool.adopt(left)
        right_frame = self.pool.adopt(right)
        left.entries = [page.entries[i].copy() for i in stay_idx]
        right.entries = [page.entries[i].copy() for i in move_idx]
        for child in (left, right):
            self._recompute_bp(child)
            child.nsn = page.nsn
        if link:
            left.rightlink = right.pid
        page.kind = PageKind.INTERNAL
        page.level = level + 1
        page.entries = [
            InternalEntry(left.bp, left.pid),
            InternalEntry(right.bp, right.pid),
        ]
        if link:
            page.nsn = self._nsn_next()
        frame.dirty = True
        left_frame.dirty = True
        right_frame.dirty = True
        self.stats.bump("splits")
        self.hooks.fire(
            "insert:after-split", pid=page.pid, new_pid=right.pid
        )

    # ------------------------------------------------------------------
    # held-path insertion (naive / coupling / subtree variants)
    # ------------------------------------------------------------------
    def _ensure_room(self, path: list[Frame], i: int, *, link: bool) -> None:
        """Make sure ``path[i]`` can take one more entry, splitting it
        (and ancestors, recursively) while the whole path is X-latched.
        Raises :class:`_Restart` when the root grows."""
        frame = path[i]
        if not frame.page.is_full:
            return
        if frame.page.pid == self.root_pid:
            self._grow_root(frame, link=link)
            raise _Restart()
        self._ensure_room(path, i - 1, link=link)
        orig, new = self._do_split(frame, path[i - 1], link=link)
        if i < len(path) - 1:
            below = path[i + 1].page.pid
            keep = (
                orig
                if orig.page.find_child_entry(below) is not None
                else new
            )
        else:
            keep = orig if not orig.page.is_full else new
        drop = new if keep is orig else orig
        self.pool.unfix(drop)
        path[i] = keep

    def _insert_on_held_path(
        self, path: list[Frame], key: object, rid: object, *, link: bool
    ) -> None:
        """Finish an insertion once a full root-to-leaf path is held."""
        self._ensure_room(path, len(path) - 1, link=link)
        leaf = path[-1]
        # pick the cheaper side if the ensure-room split left a choice
        leaf.page.add_entry(LeafEntry(key, rid))
        leaf.dirty = True
        # expand BPs and parent entries bottom-up along the held path
        for i in range(len(path) - 1, -1, -1):
            page = path[i].page
            if page.pid == self.root_pid:
                break
            if page.bp is not None and self.ext.covers(page.bp, key):
                break
            page.bp = (
                self.ext.union([page.bp, key])
                if page.bp is not None
                else self.ext.union([key])
            )
            path[i].dirty = True
            parent_entry = path[i - 1].page.find_child_entry(page.pid)
            if parent_entry is not None:
                parent_entry.pred = page.bp
                path[i - 1].dirty = True

    # ------------------------------------------------------------------
    # shared read-only helpers
    # ------------------------------------------------------------------
    def contents(self) -> list[tuple]:
        """Quiesced dump of all live (key, rid) pairs."""
        out = []
        frontier = [self.root_pid]
        seen: set[PageId] = set()
        while frontier:
            pid = frontier.pop()
            if pid in seen or pid == NO_PAGE:
                continue
            seen.add(pid)
            with self.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if page.rightlink != NO_PAGE:
                    frontier.append(page.rightlink)
                if page.is_leaf:
                    out.extend(
                        (e.key, e.rid)
                        for e in page.entries
                        if not e.deleted
                    )
                else:
                    frontier.extend(e.child for e in page.entries)
        return out

    def delete(self, key: object, rid: object) -> bool:
        """Physical delete (baselines have no transactions)."""
        eq = self.ext.eq_query(key)
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            with self.pool.fixed(pid, LatchMode.X) as frame:
                page = frame.page
                if page.is_leaf:
                    entry = page.find_leaf_entry(key, rid)
                    if entry is not None:
                        page.entries.remove(entry)
                        frame.dirty = True
                        return True
                else:
                    stack.extend(
                        e.child
                        for e in page.entries
                        if self.ext.consistent(e.pred, eq)
                    )
        return False

    # API stubs
    def insert(self, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair (protocol-specific)."""
        raise NotImplementedError

    def search(self, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching ``query``."""
        raise NotImplementedError


class _HeldPathTree(BaselineTree):
    """Shared writer for the coupled baselines: the descent X-latches
    its entire root-to-leaf path and holds it for the whole insertion
    (splits and BP updates then need no re-location machinery)."""

    def insert(self, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair under this protocol's latching discipline."""
        self.stats.bump("inserts")
        while True:
            path: list[Frame] = []
            try:
                pid = self.root_pid
                while True:
                    frame = self.pool.fix(pid, LatchMode.X)
                    path.append(frame)
                    page = frame.page
                    if page.is_leaf:
                        break
                    best = min(
                        page.entries,
                        key=lambda e: self.ext.penalty(e.pred, key),
                    )
                    pid = best.child
                self._insert_on_held_path(path, key, rid, link=False)
                return
            except _Restart:
                self.stats.bump("restarts")
            finally:
                for frame in path:
                    self.pool.unfix(frame)


class LinkTree(BaselineTree):
    """The paper's link protocol, minus transactions.

    Neither readers nor writers ever hold a latch while fetching another
    node; missed splits are detected via NSNs and compensated by walking
    rightlinks.  Structure modifications re-locate the parent bottom-up
    exactly as Figure 4 prescribes.

    ``_link = False`` (the :class:`NaiveTree` subclass) keeps the exact
    same fine-grained latching but performs no NSN/rightlink juggling —
    the honest "implemented GiST without thinking about concurrency"
    baseline whose traversals can silently miss splits.
    """

    protocol = "link"
    _link = True

    # -------------------------- search --------------------------------
    def search(self, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching the query (protocol-specific traversal)."""
        self.stats.bump("searches")
        results: list[tuple] = []
        stack = [(self.root_pid, self._nsn_current())]
        while stack:
            pid, memo = stack.pop()
            with self.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if page.nsn > memo and page.rightlink != NO_PAGE:
                    self.stats.bump("rightlink_follows")
                    stack.append((page.rightlink, memo))
                if page.is_leaf:
                    results.extend(
                        (e.key, e.rid)
                        for e in page.entries
                        if not e.deleted
                        and self.ext.consistent(e.key, query)
                    )
                else:
                    child_memo = self._nsn_current()
                    stack.extend(
                        (e.child, child_memo)
                        for e in page.entries
                        if self.ext.consistent(e.pred, query)
                    )
            self.hooks.fire(
                "search:node-visited", pid=pid, is_leaf=page.is_leaf
            )
        return results

    # -------------------------- insert --------------------------------
    def insert(self, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair under this protocol's latching discipline."""
        self.stats.bump("inserts")
        while True:
            try:
                self._try_insert(key, rid)
                return
            except _Restart:
                self.stats.bump("restarts")

    def _try_insert(self, key: object, rid: object) -> None:
        hints: list[PageId] = []  # visited ancestors, for parent fixing
        pid = self.root_pid
        memo = self._nsn_current()
        while True:
            frame = self.pool.fix(pid, LatchMode.X)
            frame = self._follow_chain(frame, memo, key)
            page = frame.page
            if page.is_leaf:
                break
            hints.append(page.pid)
            best = min(
                page.entries, key=lambda e: self.ext.penalty(e.pred, key)
            )
            memo = self._nsn_current()
            pid = best.child
            self.pool.unfix(frame)
        # leaf X-latched, no other latches held
        if page.is_full:
            frame = self._split_link(frame, hints, key)
            page = frame.page
        self._expand_up(frame, hints, key)
        page.add_entry(LeafEntry(key, rid))
        frame.dirty = True
        self.pool.unfix(frame)

    def _follow_chain(self, frame: Frame, memo: int, key: object) -> Frame:
        """Walk the split chain delimited by ``memo`` and keep the
        min-penalty node latched (at most two latches, left-to-right)."""
        mode = frame.latch.held_by_me() or LatchMode.X

        def pen(f: Frame) -> float:
            return (
                0.0
                if f.page.bp is None
                else self.ext.penalty(f.page.bp, key)
            )

        best, current = frame, frame
        best_pen = pen(frame)
        while current.page.nsn > memo and current.page.rightlink != NO_PAGE:
            nxt = self.pool.fix(current.page.rightlink, mode)
            self.stats.bump("rightlink_follows")
            if current is not best:
                self.pool.unfix(current)
            if pen(nxt) < best_pen:
                if best is not nxt:
                    self.pool.unfix(best)
                best, best_pen = nxt, pen(nxt)
            current = nxt
        if current is not best:
            self.pool.unfix(current)
        return best

    def _fix_parent_x(self, child_pid: PageId, hints: list[PageId]) -> Frame:
        """X-latch the node currently holding ``child_pid``'s downlink."""
        pid = hints[-1] if hints else self.root_pid
        while pid != NO_PAGE:
            frame = self.pool.fix(pid, LatchMode.X)
            if frame.page.find_child_entry(child_pid) is not None:
                return frame
            nxt = frame.page.rightlink
            self.pool.unfix(frame)
            self.stats.bump("rightlink_follows")
            pid = nxt
        # fallback: breadth-first re-descent from the root
        frontier = [self.root_pid]
        seen: set[PageId] = set()
        while frontier:
            pid = frontier.pop()
            if pid in seen or pid == NO_PAGE or pid == child_pid:
                continue
            seen.add(pid)
            frame = self.pool.fix(pid, LatchMode.X)
            page = frame.page
            if page.is_internal and page.find_child_entry(child_pid):
                return frame
            if page.is_internal:
                frontier.extend(e.child for e in page.entries)
            if page.rightlink != NO_PAGE:
                frontier.append(page.rightlink)
            self.pool.unfix(frame)
        raise ReproError(f"parent of page {child_pid} not found")

    def _split_link(
        self, frame: Frame, hints: list[PageId], key: object
    ) -> Frame:
        """Bottom-up split with NSN/rightlink juggling (Figure 4)."""
        page = frame.page
        if page.pid == self.root_pid:
            self._grow_root(frame, link=self._link)
            self.pool.unfix(frame)
            raise _Restart()
        parent = self._fix_parent_x(page.pid, hints)
        if parent.page.is_full:
            try:
                parent = self._split_internal_link(
                    parent, hints[:-1], page.pid
                )
            except _Restart:
                self.pool.unfix(frame)
                raise
        orig, new = self._do_split(frame, parent, link=self._link)
        self.pool.unfix(parent)
        keep = (
            orig
            if not orig.page.is_full
            and self.ext.penalty(orig.page.bp, key)
            <= self.ext.penalty(new.page.bp, key)
            else new
        )
        drop = new if keep is orig else orig
        self.pool.unfix(drop)
        return keep

    def _split_internal_link(
        self, frame: Frame, hints: list[PageId], locate_child: PageId
    ) -> Frame:
        """Split a full internal node; return the X-latched side still
        holding ``locate_child``'s downlink."""
        page = frame.page
        if page.pid == self.root_pid:
            self._grow_root(frame, link=self._link)
            self.pool.unfix(frame)
            raise _Restart()
        parent = self._fix_parent_x(page.pid, hints)
        if parent.page.is_full:
            try:
                parent = self._split_internal_link(
                    parent, hints[:-1] if hints else [], page.pid
                )
            except _Restart:
                self.pool.unfix(frame)
                raise
        orig, new = self._do_split(frame, parent, link=self._link)
        self.pool.unfix(parent)
        keep = (
            orig
            if orig.page.find_child_entry(locate_child) is not None
            else new
        )
        drop = new if keep is orig else orig
        self.pool.unfix(drop)
        return keep

    def _expand_up(
        self, frame: Frame, hints: list[PageId], key: object
    ) -> None:
        """Expand BPs from ``frame`` upward (bottom-up latching)."""
        page = frame.page
        if page.pid == self.root_pid:
            return
        if page.bp is not None and self.ext.covers(page.bp, key):
            return
        parent = self._fix_parent_x(page.pid, hints)
        try:
            self._expand_up(parent, hints[:-1] if hints else [], key)
            page.bp = (
                self.ext.union([page.bp, key])
                if page.bp is not None
                else self.ext.union([key])
            )
            frame.dirty = True
            entry = parent.page.find_child_entry(page.pid)
            if entry is not None:
                entry.pred = page.bp
                parent.dirty = True
        finally:
            self.pool.unfix(parent)


class NaiveTree(LinkTree):
    """No split compensation — LinkTree's fine-grained latching without
    the NSN/rightlink juggling.

    Writers latch one node at a time exactly like the link protocol, but
    splits neither chain the sibling nor stamp sequence numbers, and
    readers stack bare child pointers with no way to notice a split that
    moved entries sideways — Figure 1's anomaly, at full concurrency.
    """

    protocol = "naive"
    _link = False

    def search(self, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching the query (protocol-specific traversal)."""
        self.stats.bump("searches")
        results: list[tuple] = []
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            with self.pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if page.is_leaf:
                    results.extend(
                        (e.key, e.rid)
                        for e in page.entries
                        if not e.deleted
                        and self.ext.consistent(e.key, query)
                    )
                else:
                    stack.extend(
                        e.child
                        for e in page.entries
                        if self.ext.consistent(e.pred, query)
                    )
            self.hooks.fire(
                "search:node-visited", pid=pid, is_leaf=page.is_leaf
            )
        return results


class CouplingTree(_HeldPathTree):
    """Latch-coupling: hold the parent latch while fetching the child.

    Readers crab with S latches — every child fetch, including its disk
    I/O on a buffer miss, happens while the parent latch is held.
    Writers hold their descent path in X mode but release ancestors
    above a *safe* child (not full, BP covers the key).
    """

    protocol = "coupling"

    def search(self, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching the query (protocol-specific traversal)."""
        self.stats.bump("searches")
        results: list[tuple] = []
        self._search_coupled(self.root_pid, None, query, results)
        return results

    def _search_coupled(
        self,
        pid: PageId,
        parent: Frame | None,
        query: object,
        results: list[tuple],
    ) -> None:
        # The child is fetched — and its I/O paid — while the parent
        # latch is still held; that is the whole point of this baseline.
        frame = self.pool.fix(pid, LatchMode.S)
        page = frame.page
        if page.is_leaf:
            if parent is not None:
                self.pool.unfix(parent)
            results.extend(
                (e.key, e.rid)
                for e in page.entries
                if not e.deleted and self.ext.consistent(e.key, query)
            )
            self.pool.unfix(frame)
            self.hooks.fire("search:node-visited", pid=pid, is_leaf=True)
            return
        children = [
            e.child
            for e in page.entries
            if self.ext.consistent(e.pred, query)
        ]
        self.hooks.fire("search:node-visited", pid=pid, is_leaf=False)
        if parent is not None:
            self.pool.unfix(parent)
        if not children:
            self.pool.unfix(frame)
            return
        # Multi-subtree descent: the node stays latched until its last
        # qualifying child takes over the coupling (repositioning is
        # impossible in a non-partitioning tree, section 11).
        for child in children[:-1]:
            self._search_coupled(child, None, query, results)
        self._search_coupled(children[-1], frame, query, results)

    def insert(self, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair under this protocol's latching discipline."""
        self.stats.bump("inserts")
        while True:
            path: list[Frame] = []
            try:
                pid = self.root_pid
                while True:
                    frame = self.pool.fix(pid, LatchMode.X)
                    path.append(frame)
                    page = frame.page
                    safe = (
                        not page.is_full
                        and (
                            page.pid == self.root_pid
                            or (
                                page.bp is not None
                                and self.ext.covers(page.bp, key)
                            )
                        )
                    )
                    if safe and len(path) > 1:
                        for ancestor in path[:-1]:
                            self.pool.unfix(ancestor)
                        path = [frame]
                    if page.is_leaf:
                        break
                    best = min(
                        page.entries,
                        key=lambda e: self.ext.penalty(e.pred, key),
                    )
                    pid = best.child
                if (
                    path[-1].page.is_full
                    and len(path) == 1
                    and path[0].page.pid != self.root_pid
                ):
                    # ancestors were released as safe, but the leaf has
                    # filled up since: restart holding the full path
                    raise _Restart()
                self._insert_on_held_path(path, key, rid, link=False)
                return
            except _Restart:
                self.stats.bump("restarts")
            finally:
                for frame in path:
                    self.pool.unfix(frame)


class SubtreeTree(_HeldPathTree):
    """[BS77]-style conservative writer: the entire root-to-leaf path is
    X-latched for the whole operation; readers couple S latches."""

    protocol = "subtree"

    def search(self, query: object) -> list[tuple]:
        """All live ``(key, rid)`` pairs matching the query (protocol-specific traversal)."""
        return CouplingTree.search(self, query)  # type: ignore[arg-type]

    _search_coupled = CouplingTree._search_coupled


PROTOCOLS: dict[str, type[BaselineTree]] = {
    "naive": NaiveTree,
    "link": LinkTree,
    "coupling": CouplingTree,
    "subtree": SubtreeTree,
}


def make_baseline(
    protocol: str, extension: GiSTExtension, **kwargs
) -> BaselineTree:
    """Factory: build a baseline tree by protocol name."""
    try:
        cls = PROTOCOLS[protocol]
    except KeyError:
        raise ReproError(f"unknown baseline protocol {protocol!r}") from None
    return cls(extension, **kwargs)
