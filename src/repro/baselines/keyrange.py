"""Key-range locking over an ordered index (section 4.1).

The paper's B-tree-only solution to the phantom problem: each stored key
is a surrogate lock name for the half-open gap below it.  A range scan
S-locks every qualifying record *plus the first record past the right
end of the range*; an insert probes the lock on the record immediately
to the right of the insertion point, so an insertion into a locked gap
blocks until the scanner finishes.

This only works because the key domain is ordered and keys partition
physically — exactly the property GiSTs drop (section 4.2) — so this
baseline exists to reproduce the comparison the paper makes in ablation
A3: on ordered keys, key-range locking takes a handful of cheap physical
locks per scan where the hybrid mechanism takes one predicate lock per
visited node; on non-ordered domains it is simply inapplicable.
"""

from __future__ import annotations

import bisect
import threading

from repro.errors import ReproError
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode

#: sentinel lock name for "past the end of the index"
EOF_LOCK = ("kr", "<eof>")


def _range_lock(key: object, rid: object) -> tuple:
    return ("kr", key, rid)


class KeyRangeIndex:
    """A flat ordered index with key-range locking.

    The physical structure is a sorted array under one structure mutex
    (fine for the ablation — the object of study is the *locking*
    protocol, not the node organization); the locks live in a standard
    :class:`LockManager`, so deadlocks between scans and inserts resolve
    the usual way.
    """

    def __init__(self, locks: LockManager | None = None) -> None:
        self.locks = locks or LockManager()
        self._mutex = threading.Lock()
        self._keys: list = []  # sorted (key, rid) pairs
        self.lock_requests = 0

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _next_lock_name(self, key: object) -> tuple:
        """Lock name guarding the gap that ``key`` would fall into."""
        with self._mutex:
            i = bisect.bisect_right(self._keys, (key, ""))
            while i < len(self._keys) and self._keys[i][0] == key:
                i += 1
            if i >= len(self._keys):
                return EOF_LOCK
            nxt = self._keys[i]
            return _range_lock(nxt[0], nxt[1])

    def _acquire(self, xid: int, name: tuple, mode: LockMode) -> None:
        self.lock_requests += 1
        self.locks.acquire(xid, name, mode)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def scan(self, xid: int, lo: object, hi: object) -> list[tuple]:
        """Range scan with key-range locking (repeatable read).

        S-locks every record in ``[lo, hi]`` and the first record past
        ``hi`` (or the EOF sentinel), thereby locking every gap that
        intersects the range.
        """
        while True:
            with self._mutex:
                i = bisect.bisect_left(self._keys, (lo, ""))
                snapshot = []
                j = i
                while j < len(self._keys) and self._keys[j][0] <= hi:
                    snapshot.append(self._keys[j])
                    j += 1
                next_name = (
                    _range_lock(*self._keys[j])
                    if j < len(self._keys)
                    else EOF_LOCK
                )
            for key, rid in snapshot:
                self._acquire(xid, _range_lock(key, rid), LockMode.S)
            self._acquire(xid, next_name, LockMode.S)
            # Re-validate: an insert may have slipped in between the
            # snapshot and the locks; if the snapshot changed, rescan
            # (the locks we now hold make progress certain).
            with self._mutex:
                i2 = bisect.bisect_left(self._keys, (lo, ""))
                current = []
                j2 = i2
                while j2 < len(self._keys) and self._keys[j2][0] <= hi:
                    current.append(self._keys[j2])
                    j2 += 1
            if current == snapshot:
                return snapshot

    def insert(self, xid: int, key: object, rid: object) -> None:
        """Insert with next-key gap probing.

        The instant-duration X probe on the next record's lock name
        fails while any scan covers the gap, blocking phantom
        insertions.
        """
        next_name = self._next_lock_name(key)
        # instant-duration probe: acquire X, release immediately
        self._acquire(xid, next_name, LockMode.X)
        self.locks.release(xid, next_name)
        self._acquire(xid, _range_lock(key, rid), LockMode.X)
        with self._mutex:
            bisect.insort(self._keys, (key, rid))

    def delete(self, xid: int, key: object, rid: object) -> None:
        """Delete with next-key locking: the deleted record's range
        merges into its successor's, so the successor must be X-locked
        for the duration of the transaction."""
        self._acquire(xid, _range_lock(key, rid), LockMode.X)
        next_name = self._next_lock_name(key)
        self._acquire(xid, next_name, LockMode.X)
        with self._mutex:
            try:
                self._keys.remove((key, rid))
            except ValueError:
                raise ReproError(
                    f"({key!r}, {rid!r}) not present"
                ) from None

    def end(self, xid: int) -> None:
        """Transaction end: drop all of the transaction's locks."""
        self.locks.release_all(xid)

    def contents(self) -> list[tuple]:
        """Sorted snapshot of the stored pairs."""
        with self._mutex:
            return list(self._keys)
