"""B-tree as a GiST extension.

The canonical first example from [HNP95]: keys are values from a totally
ordered domain, bounding predicates are closed intervals, and the node
layout keeps entries sorted so the ``organize`` hook enables the usual
binary-search behaviour.  This is also the specialization the paper's
Figures 1 and 2 are drawn with, and the one "emulating B-trees in
DB2/Common Server" mentioned in the abstract.

Queries may be raw key values (point queries) or :class:`Interval`
objects (range queries).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

from repro.gist.extension import GiSTExtension
from repro.storage.page import register_immutable_type


@dataclass(frozen=True)
class Interval:
    """A closed/open interval over an ordered domain.

    ``lo``/``hi`` inclusive by default; ``lo_incl=False`` makes the lower
    bound open (and symmetrically for ``hi_incl``).
    """

    lo: object
    hi: object
    lo_incl: bool = True
    hi_incl: bool = True

    def __post_init__(self) -> None:
        if self.lo > self.hi:  # type: ignore[operator]
            raise ValueError(f"empty interval [{self.lo!r}, {self.hi!r}]")
        if self.lo == self.hi and not (self.lo_incl and self.hi_incl):
            # a point interval with an open bound denotes the empty set,
            # which would break the intersection algebra (symmetry)
            raise ValueError(
                f"empty interval at point {self.lo!r} with open bound"
            )

    def contains(self, value: object) -> bool:
        """Containment test."""
        above = value > self.lo or (self.lo_incl and value == self.lo)
        below = value < self.hi or (self.hi_incl and value == self.hi)
        return above and below

    def intersects(self, other: "Interval") -> bool:
        """Intersection test."""
        if self.hi < other.lo or other.hi < self.lo:
            return False
        if self.hi == other.lo:
            return self.hi_incl and other.lo_incl
        if other.hi == self.lo:
            return other.hi_incl and self.lo_incl
        return True

    def union_with(self, other: "Interval") -> "Interval":
        """The bounding union of self and other."""
        if self.lo < other.lo:
            lo, lo_incl = self.lo, self.lo_incl
        elif other.lo < self.lo:
            lo, lo_incl = other.lo, other.lo_incl
        else:
            lo, lo_incl = self.lo, self.lo_incl or other.lo_incl
        if self.hi > other.hi:
            hi, hi_incl = self.hi, self.hi_incl
        elif other.hi > self.hi:
            hi, hi_incl = other.hi, other.hi_incl
        else:
            hi, hi_incl = self.hi, self.hi_incl or other.hi_incl
        return Interval(lo, hi, lo_incl, hi_incl)

    @staticmethod
    def point(value: object) -> "Interval":
        """A degenerate (single-point) instance."""
        return Interval(value, value)


@dataclass(frozen=True)
class MultiPoint:
    """An ``IN (k1, k2, …)`` predicate: the union of point queries.

    Produced by :meth:`BTreeExtension.multi_eq_query` so batched point
    operations (``multi_get`` / ``multi_delete``) can share one descent:
    ``consistent`` against an interval holds when *any* member falls
    inside it, so a single cursor visits exactly the union of leaves the
    individual point queries would have visited.  ``keys`` is sorted and
    duplicate-free (build via :meth:`of`).
    """

    keys: tuple

    def contains(self, value: object) -> bool:
        """Membership test (also the history oracle's ``covers``)."""
        i = bisect_left(self.keys, value)
        return i < len(self.keys) and self.keys[i] == value

    def intersects(self, interval: Interval) -> bool:
        """Whether any member key lies inside ``interval``."""
        keys = self.keys
        i = bisect_left(keys, interval.lo)
        while i < len(keys):
            key = keys[i]
            if key > interval.hi:
                return False
            if interval.contains(key):
                return True
            i += 1  # key == an open bound: try the next member
        return False

    @staticmethod
    def of(keys: Sequence[object]) -> "MultiPoint":
        """Canonical instance: sorted, deduplicated."""
        return MultiPoint(tuple(sorted(set(keys))))


def as_interval(pred: object) -> Interval:
    """Normalize a key value or interval to an :class:`Interval`."""
    if isinstance(pred, Interval):
        return pred
    return Interval.point(pred)


class BTreeExtension(GiSTExtension):
    """Ordered-domain extension: interval BPs, sorted node layout."""

    name = "btree"

    def consistent(self, pred: object, query: object) -> bool:
        """Intersection test between predicates (contract: :meth:`GiSTExtension.consistent`)."""
        if isinstance(query, MultiPoint):
            return query.intersects(as_interval(pred))
        if isinstance(pred, MultiPoint):
            return pred.intersects(as_interval(query))
        return as_interval(pred).intersects(as_interval(query))

    def union(self, preds: Sequence[object]) -> object:
        """Tightest covering predicate of the inputs (contract: :meth:`GiSTExtension.union`)."""
        if not preds:
            raise ValueError("union of no predicates")
        result = as_interval(preds[0])
        for pred in preds[1:]:
            result = result.union_with(as_interval(pred))
        return result

    def penalty(self, bp: object, key: object) -> float:
        """How far the interval must stretch to admit ``key``.

        Numeric domains get the exact stretch; non-numeric ordered
        domains fall back to a containment indicator, which still steers
        the descent into covering subtrees first.
        """
        interval = as_interval(bp)
        point = as_interval(key)
        if interval.contains(point.lo) and interval.contains(point.hi):
            return 0.0
        try:
            below = max(0.0, float(interval.lo) - float(point.lo))
            above = max(0.0, float(point.hi) - float(interval.hi))
            return below + above
        except (TypeError, ValueError):
            return 1.0

    def pick_split(
        self, preds: Sequence[object]
    ) -> tuple[list[int], list[int]]:
        """Partition entry indices for a split (contract: :meth:`GiSTExtension.pick_split`)."""
        order = sorted(
            range(len(preds)), key=lambda i: as_interval(preds[i]).lo
        )
        mid = len(order) // 2
        return order[:mid], order[mid:]

    def same(self, a: object, b: object) -> bool:
        """Predicate equality (contract: :meth:`GiSTExtension.same`)."""
        return as_interval(a) == as_interval(b)

    def eq_query(self, key: object) -> object:
        """Exact-match predicate for a key (contract: :meth:`GiSTExtension.eq_query`)."""
        return as_interval(key)

    def multi_eq_query(self, keys: Sequence[object]) -> object:
        """Multi-point predicate for a key batch (contract:
        :meth:`GiSTExtension.multi_eq_query`)."""
        return MultiPoint.of(keys)

    def hint_point_query(self, query: object) -> bool:
        """Point intervals and scalar keys may replay a hinted leaf."""
        try:
            interval = as_interval(query)
        except (TypeError, ValueError):
            return False
        return (
            interval.lo == interval.hi
            and interval.lo_incl
            and interval.hi_incl
        )

    def organize(self, preds: Sequence[object]) -> list[int]:
        """Sorted intra-node layout (contract: :meth:`GiSTExtension.organize`)."""
        return sorted(
            range(len(preds)), key=lambda i: as_interval(preds[i]).lo
        )


# Interval is a frozen dataclass over ordered scalars: page snapshots may
# share instances instead of deep-copying them on every flush/eviction.
register_immutable_type(Interval)
