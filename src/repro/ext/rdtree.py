"""RD-tree (Russian Doll tree) as a GiST extension.

Keys are finite sets; bounding predicates are set unions; the supported
query is *overlap* (``key ∩ query ≠ ∅``).  This is the third classic
GiST example from [HNP95] and exercises a key space with no meaningful
linear order at all — the situation in which the paper's NSN protocol
and hybrid predicate locking are indispensable and key-range locking is
hopeless (section 4.2).

Keys are hashable frozensets; non-empty sets only (an empty key would be
invisible to overlap navigation).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExtensionError
from repro.gist.extension import GiSTExtension
from repro.storage.page import register_immutable_type


def as_key_set(pred: object) -> frozenset:
    """Normalize any iterable of hashables to a frozenset key."""
    result = pred if isinstance(pred, frozenset) else frozenset(pred)
    if not result:
        raise ExtensionError("RD-tree keys and queries must be non-empty")
    return result


class RDTreeExtension(GiSTExtension):
    """Set-valued extension with overlap queries."""

    name = "rdtree"

    def consistent(self, pred: object, query: object) -> bool:
        """Intersection test between predicates (contract: :meth:`GiSTExtension.consistent`)."""
        return bool(as_key_set(pred) & as_key_set(query))

    def union(self, preds: Sequence[object]) -> object:
        """Tightest covering predicate of the inputs (contract: :meth:`GiSTExtension.union`)."""
        if not preds:
            raise ValueError("union of no predicates")
        result: frozenset = frozenset()
        for pred in preds:
            result |= as_key_set(pred)
        return result

    def penalty(self, bp: object, key: object) -> float:
        """Cost of admitting the key under this bound (contract: :meth:`GiSTExtension.penalty`)."""
        return float(len(as_key_set(key) - as_key_set(bp)))

    def pick_split(
        self, preds: Sequence[object]
    ) -> tuple[list[int], list[int]]:
        """Seeded split minimizing element spill between the halves.

        Seeds are the two most dissimilar sets (smallest Jaccard
        similarity); the rest go to the side they overlap more with,
        with balance forcing as in the R-tree split.
        """
        n = len(preds)
        if n < 2:
            raise ValueError("cannot split fewer than two entries")
        sets = [as_key_set(p) for p in preds]
        worst = (2.0, 0, 1)
        for i in range(n):
            for j in range(i + 1, n):
                inter = len(sets[i] & sets[j])
                union = len(sets[i] | sets[j])
                jaccard = inter / union if union else 1.0
                if jaccard < worst[0]:
                    worst = (jaccard, i, j)
        seed_a, seed_b = worst[1], worst[2]
        group_a, group_b = [seed_a], [seed_b]
        bp_a, bp_b = set(sets[seed_a]), set(sets[seed_b])
        min_fill = max(1, n // 3)
        remaining = [i for i in range(n) if i not in (seed_a, seed_b)]
        for i in remaining:
            left_to_place = n - len(group_a) - len(group_b)
            if len(group_a) + left_to_place <= min_fill:
                choose_a = True
            elif len(group_b) + left_to_place <= min_fill:
                choose_a = False
            else:
                spill_a = len(sets[i] - bp_a)
                spill_b = len(sets[i] - bp_b)
                choose_a = spill_a < spill_b or (
                    spill_a == spill_b and len(group_a) <= len(group_b)
                )
            if choose_a:
                group_a.append(i)
                bp_a |= sets[i]
            else:
                group_b.append(i)
                bp_b |= sets[i]
        return group_a, group_b

    def normalize_key(self, key: object) -> object:
        """Store keys as frozensets (hashable canonical form)."""
        return as_key_set(key)

    def same(self, a: object, b: object) -> bool:
        """Predicate equality (contract: :meth:`GiSTExtension.same`)."""
        return as_key_set(a) == as_key_set(b)

    def eq_query(self, key: object) -> object:
        # Overlap with the key set is a superset of set equality, so
        # equality searches navigate by overlap and compare exactly at
        # the leaf.
        """Exact-match predicate for a key (contract: :meth:`GiSTExtension.eq_query`)."""
        return as_key_set(key)


# Normalized RD-tree keys/BPs are frozensets of hashables: snapshots may
# share instances instead of deep-copying them on every flush/eviction.
register_immutable_type(frozenset)
