"""R-tree as a GiST extension ([Gut84] via [HNP95]).

Keys are 2-D rectangles (points are degenerate rectangles); bounding
predicates are minimum bounding rectangles; splits use Guttman's
quadratic algorithm.  This is the extension on which [KB95] — the direct
ancestor of the paper's concurrency protocol — was originally developed,
so the spatial benchmarks exercise exactly the non-linear, overlapping
key space the NSN protocol was invented for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gist.extension import GiSTExtension
from repro.storage.page import register_immutable_type


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle [xlo, xhi] x [ylo, yhi]."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(f"degenerate rectangle {self}")

    @staticmethod
    def point(x: float, y: float) -> "Rect":
        """A degenerate (single-point) instance."""
        return Rect(x, y, x, y)

    def intersects(self, other: "Rect") -> bool:
        """Intersection test."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    def contains(self, other: "Rect") -> bool:
        """Containment test."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def union_with(self, other: "Rect") -> "Rect":
        """The bounding union of self and other."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    @property
    def area(self) -> float:
        """The area (zero for points and lines)."""
        return (self.xhi - self.xlo) * (self.yhi - self.ylo)


class RTreeExtension(GiSTExtension):
    """2-D spatial extension with Guttman quadratic splits."""

    name = "rtree"

    def consistent(self, pred: object, query: object) -> bool:
        """Intersection test between predicates (contract: :meth:`GiSTExtension.consistent`)."""
        return pred.intersects(query)  # type: ignore[union-attr]

    def union(self, preds: Sequence[object]) -> object:
        """Tightest covering predicate of the inputs (contract: :meth:`GiSTExtension.union`)."""
        if not preds:
            raise ValueError("union of no predicates")
        result = preds[0]
        for pred in preds[1:]:
            result = result.union_with(pred)
        return result

    def penalty(self, bp: object, key: object) -> float:
        """Cost of admitting the key under this bound (contract: :meth:`GiSTExtension.penalty`)."""
        return bp.union_with(key).area - bp.area  # type: ignore[union-attr]

    def pick_split(
        self, preds: Sequence[object]
    ) -> tuple[list[int], list[int]]:
        """Guttman's quadratic split.

        Pick the pair of entries whose combined bounding box wastes the
        most area as seeds, then assign each remaining entry to the
        group whose MBR grows least, keeping the groups balanced enough
        that neither side ends up empty.
        """
        n = len(preds)
        if n < 2:
            raise ValueError("cannot split fewer than two entries")
        # seed selection
        worst = (-1.0, 0, 1)
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    preds[i].union_with(preds[j]).area
                    - preds[i].area
                    - preds[j].area
                )
                if waste > worst[0]:
                    worst = (waste, i, j)
        seed_a, seed_b = worst[1], worst[2]
        group_a, group_b = [seed_a], [seed_b]
        mbr_a, mbr_b = preds[seed_a], preds[seed_b]
        remaining = [i for i in range(n) if i not in (seed_a, seed_b)]
        min_fill = max(1, n // 3)
        for i in remaining:
            grow_a = mbr_a.union_with(preds[i]).area - mbr_a.area
            grow_b = mbr_b.union_with(preds[i]).area - mbr_b.area
            # force balance if one group is starving
            left_to_place = n - len(group_a) - len(group_b)
            if len(group_a) + left_to_place <= min_fill:
                choose_a = True
            elif len(group_b) + left_to_place <= min_fill:
                choose_a = False
            else:
                choose_a = grow_a < grow_b or (
                    grow_a == grow_b and mbr_a.area <= mbr_b.area
                )
            if choose_a:
                group_a.append(i)
                mbr_a = mbr_a.union_with(preds[i])
            else:
                group_b.append(i)
                mbr_b = mbr_b.union_with(preds[i])
        return group_a, group_b

    def same(self, a: object, b: object) -> bool:
        """Predicate equality (contract: :meth:`GiSTExtension.same`)."""
        return a == b

    def eq_query(self, key: object) -> object:
        # Rectangle equality is navigated by overlap (a strict superset
        # of equality, so navigation can never miss the exact key).
        """Exact-match predicate for a key (contract: :meth:`GiSTExtension.eq_query`)."""
        return key


# Rect is a frozen dataclass of floats: page snapshots may share
# instances instead of deep-copying them on every flush/eviction.
register_immutable_type(Rect)
