"""Access-method extensions: B-tree, R-tree and RD-tree specializations."""

from repro.ext.btree import BTreeExtension, Interval, as_interval
from repro.ext.rdtree import RDTreeExtension, as_key_set
from repro.ext.rtree import Rect, RTreeExtension

__all__ = [
    "BTreeExtension",
    "Interval",
    "RDTreeExtension",
    "RTreeExtension",
    "Rect",
    "as_interval",
    "as_key_set",
]
