"""Deterministic interleaving hooks.

The races the paper reasons about (Figures 1, 2 and 5) are *logical*
interleavings at well-defined protocol points: "after a traversal read the
parent entry but before it visited the child", "after a split assigned the
new NSN", and so on.  To reproduce those figures deterministically, the
tree implementations fire named hook points; tests bind callbacks that
block on events/barriers, freezing one thread at exactly the right moment
while another races past it.

In production use no hooks are registered and :meth:`Hooks.fire` is a
single dictionary miss — effectively free.

Hook points used by the library (each receives keyword context):

========================  ====================================================
point                     context
========================  ====================================================
``search:node-visited``   ``pid``, ``is_leaf`` — node examined, latch released
``search:child-pushed``   ``pid``, ``child`` — child pointer pushed on stack
``insert:leaf-located``   ``pid`` — target leaf chosen (latched)
``insert:before-split``   ``pid`` — leaf about to be split
``insert:after-split``    ``pid``, ``new_pid`` — split atomic action committed
``insert:before-parent``  ``pid`` — about to re-latch parent for SMO
``insert:done``           ``pid`` — leaf entry installed
``delete:marked``         ``pid``, ``rid`` — leaf entry marked deleted
``gc:collected``          ``pid``, ``count`` — leaf garbage-collected
``node-delete:attempt``   ``pid`` — empty node deletion attempted
``node-delete:done``      ``pid`` — node unlinked and freed
========================  ====================================================
"""

from __future__ import annotations

import threading
from collections import defaultdict
from collections.abc import Callable

HookFn = Callable[..., None]


class Hooks:
    """A registry of named hook points.

    Callbacks are invoked synchronously on the thread that hits the hook
    point, with the context the call site supplies.  Callbacks may block
    (that is their purpose), but must not call back into the tree on the
    same thread.
    """

    def __init__(self) -> None:
        self._hooks: dict[str, list[HookFn]] = {}
        self._lock = threading.Lock()

    def on(self, point: str, fn: HookFn) -> None:
        """Register ``fn`` to run whenever ``point`` fires."""
        with self._lock:
            self._hooks.setdefault(point, []).append(fn)

    def remove(self, point: str, fn: HookFn) -> None:
        """Unregister a previously registered callback."""
        with self._lock:
            callbacks = self._hooks.get(point, [])
            if fn in callbacks:
                callbacks.remove(fn)
            if not callbacks:
                self._hooks.pop(point, None)

    def clear(self) -> None:
        """Remove every registered callback."""
        with self._lock:
            self._hooks.clear()

    def fire(self, point: str, **context: object) -> None:
        """Invoke all callbacks registered for ``point``."""
        callbacks = self._hooks.get(point)
        if not callbacks:
            return
        for fn in list(callbacks):
            fn(**context)


#: Shared no-op instance used when a component is built without hooks.
NULL_HOOKS = Hooks()


class Gate:
    """A reusable two-sided rendezvous for scripting interleavings.

    One thread calls :meth:`block` inside a hook callback and stops there;
    the orchestrating test calls :meth:`wait_blocked` to know the victim
    has arrived, performs the racing operation, then calls :meth:`open`
    to let the victim proceed.
    """

    def __init__(self) -> None:
        self._arrived = threading.Event()
        self._released = threading.Event()

    def block(self, **_context: object) -> None:
        """Hook callback: announce arrival and wait for :meth:`open`."""
        self._arrived.set()
        self._released.wait()

    def wait_blocked(self, timeout: float = 10.0) -> bool:
        """Wait until some thread is parked in :meth:`block`."""
        return self._arrived.wait(timeout)

    def open(self) -> None:
        """Release the parked thread."""
        self._released.set()


class CountingGate(Gate):
    """A :class:`Gate` that only blocks on the *n*-th firing.

    Useful when a hook point fires several times before the interesting
    occurrence (e.g. block a search only when it reaches a specific page).
    """

    def __init__(self, trigger_on: int = 1) -> None:
        super().__init__()
        self._trigger_on = trigger_on
        self._count = 0
        self._count_lock = threading.Lock()

    def block(self, **context: object) -> None:
        """Hook callback: park the calling thread per the class contract."""
        with self._count_lock:
            self._count += 1
            triggered = self._count == self._trigger_on
        if triggered:
            super().block(**context)


class PredicateGate(Gate):
    """A :class:`Gate` that blocks only when a context predicate holds."""

    def __init__(self, predicate: Callable[..., bool]) -> None:
        super().__init__()
        self._predicate = predicate

    def block(self, **context: object) -> None:
        """Hook callback: park the calling thread per the class contract."""
        if self._predicate(**context):
            super().block(**context)


class EventLog:
    """Thread-safe append-only record of hook firings, for assertions."""

    def __init__(self) -> None:
        self._events: list[tuple[str, dict[str, object]]] = []
        self._lock = threading.Lock()

    def recorder(self, point: str) -> HookFn:
        """Return a callback that records firings of ``point``."""

        def record(**context: object) -> None:
            with self._lock:
                self._events.append((point, context))

        return record

    def attach(self, hooks: Hooks, *points: str) -> None:
        """Record every firing of each named point on ``hooks``."""
        for point in points:
            hooks.on(point, self.recorder(point))

    @property
    def events(self) -> list[tuple[str, dict[str, object]]]:
        """Recorded (point, context) pairs so far."""
        with self._lock:
            return list(self._events)

    def points(self) -> list[str]:
        """The sequence of hook-point names observed so far."""
        with self._lock:
            return [point for point, _ in self._events]

    def count(self, point: str) -> int:
        """Number of firings of the named point."""
        with self._lock:
            return sum(1 for p, _ in self._events if p == point)


class StallPoint:
    """Inject a fixed delay at a hook point (coarse race amplification)."""

    def __init__(self, delay: float) -> None:
        self._delay = delay

    def block(self, **_context: object) -> None:
        """Hook callback: park the calling thread per the class contract."""
        threading.Event().wait(self._delay)


def make_barrier_hook(parties: int) -> tuple[HookFn, threading.Barrier]:
    """Create a barrier-based hook forcing ``parties`` threads to align."""
    barrier = threading.Barrier(parties)

    def hook(**_context: object) -> None:
        barrier.wait(timeout=10.0)

    return hook, barrier


class FiringCounter:
    """Count hook firings grouped by an optional context key."""

    def __init__(self, key: str | None = None) -> None:
        self._key = key
        self._counts: dict[object, int] = defaultdict(int)
        self._lock = threading.Lock()

    def __call__(self, **context: object) -> None:
        bucket = context.get(self._key) if self._key else None
        with self._lock:
            self._counts[bucket] += 1

    @property
    def total(self) -> int:
        """Total firings counted."""
        with self._lock:
            return sum(self._counts.values())

    def by_key(self) -> dict[object, int]:
        """Firing counts grouped by the configured context key."""
        with self._lock:
            return dict(self._counts)
