"""Synchronization primitives: S/X latches and deterministic test hooks."""

from repro.sync.hooks import (
    NULL_HOOKS,
    CountingGate,
    EventLog,
    FiringCounter,
    Gate,
    Hooks,
    PredicateGate,
    StallPoint,
)
from repro.sync.latch import LatchMode, SXLatch

__all__ = [
    "NULL_HOOKS",
    "CountingGate",
    "EventLog",
    "FiringCounter",
    "Gate",
    "Hooks",
    "LatchMode",
    "PredicateGate",
    "SXLatch",
    "StallPoint",
]
