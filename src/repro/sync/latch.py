"""Share/exclusive latches.

Latches (section 3, footnote 8 of the paper) differ from locks: they are
addressed physically, are cheap to set, are *not* checked for deadlock, and
do not interact with the lock manager.  The tree algorithms are responsible
for using them in a deadlock-free pattern; the central rule the paper
establishes is that **no latch is ever held across an I/O or across a lock
wait**.

:class:`SXLatch` implements a classic share/exclusive latch on top of a
condition variable.  Writers are given preference over new readers once a
writer is queued, which avoids writer starvation under read-heavy loads.

The latch deliberately refuses re-entrant acquisition: a thread asking for
a latch it already holds is a protocol bug in the caller, and surfacing it
immediately (as :class:`~repro.errors.LatchError`) is far more useful than
silently self-deadlocking.

Latches optionally report acquire-wait and hold times into a *timer* — any
object exposing ``sample() -> bool``, ``wait_ns.record(ns)`` and
``hold_ns.record(ns)`` (in practice
:class:`repro.obs.metrics.LatchTimer`, shared across every frame latch of
a buffer pool).  ``sample()`` is called once per acquisition attempt and
decides whether that acquisition is timed — counting and timing are both
batched inside the timer, so the untimed path costs one method call.
With ``timer=None`` (the default, and the stand-alone configuration) no
clock is read at all.
"""

from __future__ import annotations

import threading
from enum import Enum
from time import perf_counter_ns

from repro.errors import LatchError


class LatchMode(Enum):
    """Latch modes: shared (many readers) or exclusive (single writer)."""

    S = "S"
    X = "X"


class SXLatch:
    """A share/exclusive latch with writer preference.

    Parameters
    ----------
    name:
        Optional diagnostic name (usually the page id the latch guards).
    timer:
        Optional metrics sink (see module docstring) recording wait and
        hold times; ``None`` disables all timing.  The timer decides
        per-acquisition whether to time it (``timer.sample()``) — the
        acquisition counter is exact, the histograms are sampled.
    """

    __slots__ = (
        "name",
        "witness",
        "tracker",
        "_cond",
        "_readers",
        "_writer",
        "_waiting_writers",
        "_acquisitions",
        "_timer",
        "_acquired_at",
    )

    def __init__(
        self,
        name: object = None,
        timer: object = None,
        witness: object = None,
        tracker: object = None,
    ) -> None:
        self.name = name
        #: optional lock-order witness (repro.analysis.lockdep); ``None``
        #: — the default — keeps the hot path free of any extra calls
        self.witness = witness
        #: optional span tracker (repro.obs.spans); when set, every
        #: acquisition's full duration (wait + grant path) is attributed
        #: to the calling thread's active operation span
        self.tracker = tracker
        self._cond = threading.Condition()
        self._readers: set[int] = set()
        self._writer: int | None = None
        self._waiting_writers = 0
        #: total successful acquisitions, for instrumentation/benchmarks
        self._acquisitions = 0
        self._timer = timer
        #: per-holder grant timestamps (ns), only kept when timing
        self._acquired_at: dict[int, int] = {}

    def _witness_key(self) -> object:
        return self.name if self.name is not None else f"latch@{id(self):x}"

    # ------------------------------------------------------------------
    # acquisition / release
    # ------------------------------------------------------------------
    def acquire(self, mode: LatchMode, *, nowait: bool = False) -> bool:
        """Acquire the latch in ``mode``.

        With ``nowait=True`` the call never blocks and returns ``False``
        if the latch is unavailable; otherwise it blocks until granted and
        returns ``True``.
        """
        me = threading.get_ident()
        timer = self._timer
        # Timing is sampled (see LatchTimer.sample) — this is the
        # hottest path in the system and unsampled clock reads alone
        # cost several percent of total throughput.  An active op span,
        # by contrast, always times: attribution must be exact and
        # op tracing is an opt-in diagnostic mode.
        sampled = timer is not None and timer.sample()
        tracker = self.tracker
        span = tracker.active() if tracker is not None else None
        start = perf_counter_ns() if (sampled or span is not None) else 0
        with self._cond:
            if self._writer == me or me in self._readers:
                raise LatchError(
                    f"thread {me} re-acquiring latch {self.name!r} it already holds"
                )
            if mode is LatchMode.S:
                if nowait and not self._can_grant_s():
                    return False
                while not self._can_grant_s():
                    self._cond.wait()
                self._readers.add(me)
            else:
                if nowait and not self._can_grant_x():
                    return False
                self._waiting_writers += 1
                try:
                    while not self._can_grant_x():
                        self._cond.wait()
                except BaseException:
                    # Interrupted waiter: drop out of the queue AND wake
                    # the other waiters — S grants are gated on
                    # ``_waiting_writers == 0`` (writer preference) and
                    # would otherwise sleep forever on a stale count.
                    self._waiting_writers -= 1
                    self._cond.notify_all()
                    raise
                self._waiting_writers -= 1
                self._writer = me
            self._acquisitions += 1
            if sampled:
                granted = perf_counter_ns()
                try:
                    timer.wait_ns.record(granted - start)
                    self._acquired_at[me] = granted
                except BaseException:
                    # A faulty timer sink must not leave the latch
                    # granted while the caller unwinds believing the
                    # acquire failed: roll the grant back fully.
                    if mode is LatchMode.S:
                        self._readers.discard(me)
                    else:
                        self._writer = None
                    self._acquisitions -= 1
                    self._acquired_at.pop(me, None)
                    self._cond.notify_all()
                    raise
            if span is not None:
                span.latch_wait_ns += perf_counter_ns() - start
            if self.witness is not None:
                self.witness.note_acquired("latch", self._witness_key())
            return True

    def release(self) -> None:
        """Release the latch held by the calling thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer = None
            elif me in self._readers:
                self._readers.discard(me)
            else:
                raise LatchError(
                    f"thread {me} releasing latch {self.name!r} it does not hold"
                )
            try:
                if self._timer is not None:
                    granted_at = self._acquired_at.pop(me, None)
                    if granted_at is not None:
                        self._timer.hold_ns.record(
                            perf_counter_ns() - granted_at
                        )
                if self.witness is not None:
                    self.witness.note_released(
                        "latch", self._witness_key()
                    )
            finally:
                # the ownership release above already happened: waiters
                # MUST be woken even if a metrics sink misbehaves
                self._cond.notify_all()

    def upgrade(self) -> bool:
        """Try to upgrade an S latch to X without an intervening release.

        Returns ``False`` (leaving the S latch in place) if other readers
        are present; upgrading then would risk an undetected latch
        deadlock, which the caller must avoid by releasing and
        re-acquiring in X mode (re-validating the node afterwards).
        """
        me = threading.get_ident()
        with self._cond:
            if me not in self._readers:
                raise LatchError(
                    f"thread {me} upgrading latch {self.name!r} without S latch"
                )
            if len(self._readers) > 1 or self._writer is not None:
                return False
            self._readers.discard(me)
            self._writer = me
            return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def held_by_me(self) -> LatchMode | None:
        """Return the mode in which the calling thread holds the latch."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                return LatchMode.X
            if me in self._readers:
                return LatchMode.S
            return None

    def holders(self) -> tuple[int, ...]:
        """Thread idents currently holding the latch (diagnostics)."""
        with self._cond:
            if self._writer is not None:
                return (self._writer,)
            return tuple(self._readers)

    @property
    def acquisitions(self) -> int:
        """Number of successful acquisitions since construction."""
        return self._acquisitions

    def _can_grant_s(self) -> bool:
        return self._writer is None and self._waiting_writers == 0

    def _can_grant_x(self) -> bool:
        return self._writer is None and not self._readers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SXLatch(name={self.name!r}, writer={self._writer}, "
            f"readers={sorted(self._readers)})"
        )
