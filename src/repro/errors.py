"""Exception hierarchy for the GiST reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Errors that abort the surrounding
transaction (deadlock victims, explicit aborts) derive from
:class:`TransactionAbort` so that drivers can distinguish retryable
conditions from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransactionAbort(ReproError):
    """Base class for conditions that abort the surrounding transaction.

    A driver that catches :class:`TransactionAbort` should roll back the
    transaction (if the library has not already done so) and may retry.
    """


class DeadlockError(TransactionAbort):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionAbort):
    """A lock request exceeded its timeout (used as a deadlock backstop)."""


class TransactionStateError(ReproError):
    """An operation was attempted on a transaction in the wrong state."""


class UniqueViolationError(ReproError):
    """An insertion into a unique index found a committed duplicate.

    Per section 8 of the paper this error is *repeatable*: the duplicate's
    data record is S-locked under two-phase locking, so re-running the
    insert inside the same repeatable-read transaction reports the same
    error.
    """

    def __init__(self, key: object) -> None:
        super().__init__(f"duplicate key in unique index: {key!r}")
        self.key = key


class KeyNotFoundError(ReproError):
    """A delete targeted a (key, rid) pair that is not in the tree."""


class PageError(ReproError):
    """Base class for page/storage level errors."""


class PageNotFoundError(PageError):
    """A page id does not exist in the page store."""


class PageOverflowError(PageError):
    """An entry insertion exceeded the page capacity."""


class BufferPoolError(ReproError):
    """Buffer pool misuse (e.g. unpinning an unpinned page)."""


class LatchError(ReproError):
    """Latch protocol misuse (e.g. releasing a latch not held)."""


class WALError(ReproError):
    """Log manager or recovery protocol failure."""


class RecoveryError(WALError):
    """Restart recovery detected an inconsistency it cannot repair."""


class CrashError(ReproError):
    """Raised by the crash-injection harness at the injected crash point."""


class ExtensionError(ReproError):
    """An access-method extension violated the GiST extension contract."""
