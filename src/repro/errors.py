"""Exception hierarchy for the GiST reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Errors that abort the surrounding
transaction (deadlock victims, explicit aborts) derive from
:class:`TransactionAbort` so that drivers can distinguish retryable
conditions from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransactionAbort(ReproError):
    """Base class for conditions that abort the surrounding transaction.

    A driver that catches :class:`TransactionAbort` should roll back the
    transaction (if the library has not already done so) and may retry.
    """


class DeadlockError(TransactionAbort):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionAbort):
    """A lock request exceeded its timeout (used as a deadlock backstop)."""


class TransactionStateError(ReproError):
    """An operation was attempted on a transaction in the wrong state."""


class UniqueViolationError(ReproError):
    """An insertion into a unique index found a committed duplicate.

    Per section 8 of the paper this error is *repeatable*: the duplicate's
    data record is S-locked under two-phase locking, so re-running the
    insert inside the same repeatable-read transaction reports the same
    error.
    """

    def __init__(self, key: object) -> None:
        super().__init__(f"duplicate key in unique index: {key!r}")
        self.key = key


class KeyNotFoundError(ReproError):
    """A delete targeted a (key, rid) pair that is not in the tree."""


class PageError(ReproError):
    """Base class for page/storage level errors."""


class PageNotFoundError(PageError):
    """A page id does not exist in the page store."""


class PageOverflowError(PageError):
    """An entry insertion exceeded the page capacity."""


class StorageFaultError(PageError):
    """Base class for injected or detected storage faults.

    Raised by the simulated disk when a :class:`repro.faults.FaultPlan`
    fires, and by the checksum machinery when it detects the damage a
    fault left behind.  All of them are *typed* failures: the database
    either retries/heals them or surfaces them — never silent
    corruption.
    """


class TransientIOError(StorageFaultError):
    """A page read failed transiently (injected by a fault plan).

    Retryable: the buffer pool retries reads with bounded exponential
    backoff (``io_retries`` / ``io_retry_backoff`` knobs), and
    :func:`repro.harness.driver.run_with_retry` treats it like a
    deadlock abort at the transaction level.
    """


class DiskWriteError(StorageFaultError):
    """A page write failed permanently (injected by a fault plan).

    The buffer pool restores the frame's dirty state so the page image
    is never lost from memory; the WAL still covers the change, so a
    crash + restart recovers it onto repaired storage.
    """


class TornPageError(StorageFaultError):
    """A page read found a checksum mismatch (torn page write).

    Self-healable: when the WAL covers the page's full history the
    buffer pool rebuilds the image by replaying the log and re-persists
    it; otherwise the error surfaces to the caller.
    """


class BufferPoolError(ReproError):
    """Buffer pool misuse (e.g. unpinning an unpinned page)."""


class LatchError(ReproError):
    """Latch protocol misuse (e.g. releasing a latch not held)."""


class WALError(ReproError):
    """Log manager or recovery protocol failure."""


class RecoveryError(WALError):
    """Restart recovery detected an inconsistency it cannot repair."""


class WALCorruptionError(WALError):
    """A log record failed its checksum outside the healable tail.

    The healable case — bad records in the log *tail* — never raises:
    restart recovery truncates the log at the first bad record and
    replays the valid prefix.
    """


class CrashError(ReproError):
    """Raised by the crash-injection harness at the injected crash point."""


class ExtensionError(ReproError):
    """An access-method extension violated the GiST extension contract."""


class ClusterError(ReproError):
    """Base class for partitioned-database (``repro.cluster``) failures."""


class ChannelClosedError(ClusterError):
    """The RPC channel's peer vanished (EOF / broken pipe) mid-exchange."""


class FrameCorruptionError(ClusterError):
    """An RPC frame failed its length/CRC validation (torn or garbled)."""


class RpcTimeoutError(ClusterError):
    """A framed send/recv exceeded its per-call timeout.

    Raised at the channel layer.  The channel is *poisoned* after a
    timeout — a late response frame may still arrive and would desync
    the req/resp pairing — so the caller must close it and treat the
    peer as gone.  The partitioned front end converts this into
    :class:`PartitionTimeoutError` after killing the hung worker.
    """


class PartitionFailedError(ClusterError):
    """A partition worker died while serving a request.

    The in-flight operation's outcome is unknown: its commit may or may
    not have reached the partition's durable WAL shadow before the
    process died.  The supervisor recovers the partition; the caller
    decides whether to retry (idempotent reads) or surface the
    uncertainty (writes).
    """

    def __init__(self, partition: int, message: str = "") -> None:
        super().__init__(
            message or f"partition {partition} failed mid-request"
        )
        self.partition = partition


class PartitionTimeoutError(PartitionFailedError):
    """A partition missed its RPC deadline and was presumed hung.

    The worker was SIGKILLed (its channel is unusable after a timeout)
    and its circuit breaker tripped; recovery from the WAL shadow
    happens on the breaker's half-open probe, not inline, so one hung
    partition never stalls callers of the healthy ones.  Subclasses
    :class:`PartitionFailedError` so retry policies treat both alike.
    """

    def __init__(self, partition: int, timeout: float) -> None:
        super().__init__(
            partition,
            f"partition {partition} missed its {timeout:.3f}s deadline "
            "(presumed hung; killed)",
        )
        self.timeout = timeout


class CircuitOpenError(PartitionFailedError):
    """A partition's circuit breaker is open: fail fast, do not RPC.

    Carries ``retry_after`` — the seconds until the breaker will allow
    a half-open probe — so callers (the serving layer) can translate
    the fast failure into an explicit backpressure hint instead of a
    hot retry loop.
    """

    def __init__(self, partition: int, retry_after: float) -> None:
        super().__init__(
            partition,
            f"partition {partition} circuit open; retry in "
            f"{retry_after:.3f}s",
        )
        self.retry_after = retry_after


class WorkerFaultError(ClusterError):
    """A worker-side exception, re-raised on the client as a typed error.

    ``kind`` preserves the original exception class name so callers can
    branch on worker-side error taxonomy without sharing tracebacks
    across the process boundary.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServerError(ReproError):
    """Base class for the network serving layer (``repro.server``)."""


class RetryLater(ServerError):
    """Explicit backpressure: the server shed this request, try again.

    Never a silent drop — the frame carries ``retry_after``, the
    server's hint for how long the client should back off, and
    ``reason`` (``"rate_limit"``, ``"queue_full"``, ``"circuit_open"``,
    ``"stopping"``) for accounting.
    """

    def __init__(self, retry_after: float, reason: str = "overload") -> None:
        super().__init__(
            f"server shed request ({reason}); retry in {retry_after:.3f}s"
        )
        self.retry_after = retry_after
        self.reason = reason


class DeadlineExceededError(ServerError):
    """The request's client-stamped deadline expired before completion.

    Raised server-side when expired work is shed at dequeue (before
    wasting a descent) and client-side when the response did not arrive
    within the deadline plus grace.
    """


class SessionError(ServerError):
    """Session/connection protocol misuse (e.g. a request before hello)."""


class RemoteOpError(ServerError):
    """A server-side exception, re-raised on the client with its kind.

    Mirrors :class:`WorkerFaultError` one layer up: ``kind`` preserves
    the original exception class name so callers can branch on the
    server-side error taxonomy without tracebacks crossing the wire.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def best_effort(fn, /, *args, only=(Exception,), **kwargs):
    """Run a cleanup/teardown step whose failure must not mask the
    real outcome; returns whether it succeeded.

    The canonical use is rollback-after-failure: the original
    exception is already propagating and a rollback that *also* fails
    (dead worker, closed socket, torn page mid-abort) has nothing
    better to report.  Pass ``only=(...)`` to swallow a narrower set —
    anything else still propagates, so a genuine bug in the cleanup
    path cannot hide behind it.  The ``swallowed-fault`` rule treats
    call sites of this helper as opted-in by construction; the
    ``except`` below is the one audited swallow.
    """
    try:
        fn(*args, **kwargs)
    except only:  # lint: allow(swallowed-fault): the helper's contract IS best-effort; failures return False for callers that count them
        return False
    return True
