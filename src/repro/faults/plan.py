"""The fault plan: a seeded, deterministic schedule of storage faults.

Four fault classes are modeled, matching the failure model of
DESIGN.md §9:

* **transient read** — the nth page read (optionally of one page) fails
  with :class:`~repro.errors.TransientIOError` for ``times`` consecutive
  attempts, then succeeds.  Exercises the buffer pool's bounded
  exponential retry.
* **permanent write** — from the nth page write on, every write to the
  faulted page fails with :class:`~repro.errors.DiskWriteError` until
  the plan is reset (``note_restart``, i.e. the disk was "replaced").
  Exercises dirty-state preservation and WAL-redo reconstruction.
* **torn write** — the nth page write persists a half-updated image
  (new first half, stale second half) while recording the checksum of
  the *intended* image, so a later read detects the tear.  Exercises
  checksum verification and log-replay page rebuild.
* **WAL tail loss / corruption** — applied at crash time: the last few
  durable-but-undepended-on log records are dropped, or one of them has
  its checksum flipped.  Exercises recovery's truncate-at-first-bad-
  record pass.

Scheduling is by *operation index*: the plan counts reads and writes
(globally and per page) and fires a spec when its 1-based ``op_index``
matches.  All counters live behind one small mutex — the plan is only
consulted on simulated-disk operations, never on the resident-pin hot
path.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from enum import Enum


class FaultKind(Enum):
    """The failure classes a plan can schedule."""

    TRANSIENT_READ = "transient_read"
    PERMANENT_WRITE = "permanent_write"
    TORN_WRITE = "torn_write"
    WAL_TAIL_LOSS = "wal_tail_loss"
    WAL_TAIL_CORRUPT = "wal_tail_corrupt"


#: Fault kinds consulted by the page store during normal operation.
STORAGE_KINDS = frozenset(
    {FaultKind.TRANSIENT_READ, FaultKind.PERMANENT_WRITE, FaultKind.TORN_WRITE}
)

#: Fault kinds applied to the log manager at crash time.
WAL_KINDS = frozenset({FaultKind.WAL_TAIL_LOSS, FaultKind.WAL_TAIL_CORRUPT})


@dataclass
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        Which failure class to inject.
    op_index:
        1-based index of the matching disk operation that triggers the
        fault — the nth read for ``TRANSIENT_READ``, the nth write for
        the write faults.  Counted per page when ``pid`` is set, across
        all pages otherwise.  For the WAL kinds this is instead how many
        tail records to affect (loss) or how far from the end to corrupt
        (0 = last record).
    pid:
        Restrict the fault to one page id (``None`` = any page).
    times:
        How many consecutive matching operations fail
        (``TRANSIENT_READ`` only; the others fire once / stick).
    """

    kind: FaultKind
    op_index: int = 1
    pid: int | None = None
    times: int = 1
    #: remaining fires (mutated by the plan under its lock)
    _remaining: int = field(default=-1, repr=False)
    #: True once the spec has started firing
    _armed: bool = field(default=True, repr=False)

    def describe(self) -> str:
        """One-line description for diagnostics."""
        target = "any page" if self.pid is None else f"page {self.pid}"
        return (
            f"{self.kind.value} @ op {self.op_index} on {target}"
            f" x{self.times}"
        )


class FaultPlan:
    """A deterministic fault schedule consulted by the storage layer.

    The plan is thread-safe but intentionally cheap: one small mutex
    guards the operation counters, taken only on simulated-disk reads
    and writes (which already pay a store mutex and optionally a real
    sleep).  Nothing here runs on the resident-pin hot path.
    """

    def __init__(self, specs: list[FaultSpec] | None = None) -> None:
        self._lock = threading.Lock()
        self.specs: list[FaultSpec] = list(specs or [])
        for spec in self.specs:
            if spec._remaining < 0:
                spec._remaining = spec.times
        #: human-readable log of every fault actually fired
        self.injected: list[str] = []
        #: pids whose writes now fail permanently (sticky faults)
        self._poisoned_writes: set[int] = set()
        self._reads_total = 0
        self._writes_total = 0
        self._reads_by_pid: dict[int, int] = {}
        self._writes_by_pid: dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        kinds: frozenset[FaultKind] | set[FaultKind] | None = None,
    ) -> "FaultPlan":
        """A deterministic random plan with one spec per requested kind.

        The same seed always yields the same plan; combined with a
        single-threaded workload this makes whole chaos trials
        bit-for-bit reproducible.
        """
        rng = random.Random(seed)
        kinds = set(kinds) if kinds is not None else set(FaultKind)
        specs: list[FaultSpec] = []
        if FaultKind.TRANSIENT_READ in kinds:
            specs.append(
                FaultSpec(
                    FaultKind.TRANSIENT_READ,
                    op_index=rng.randrange(2, 25),
                    times=rng.randrange(1, 4),
                )
            )
        if FaultKind.PERMANENT_WRITE in kinds:
            specs.append(
                FaultSpec(
                    FaultKind.PERMANENT_WRITE,
                    op_index=rng.randrange(3, 30),
                )
            )
        if FaultKind.TORN_WRITE in kinds:
            specs.append(
                FaultSpec(
                    FaultKind.TORN_WRITE,
                    op_index=rng.randrange(2, 25),
                )
            )
        if FaultKind.WAL_TAIL_LOSS in kinds:
            specs.append(
                FaultSpec(
                    FaultKind.WAL_TAIL_LOSS,
                    op_index=rng.randrange(1, 4),
                )
            )
        if FaultKind.WAL_TAIL_CORRUPT in kinds:
            specs.append(
                FaultSpec(
                    FaultKind.WAL_TAIL_CORRUPT,
                    op_index=rng.randrange(0, 3),
                )
            )
        return cls(specs)

    # ------------------------------------------------------------------
    # consultation (page store)
    # ------------------------------------------------------------------
    def on_read(self, pid: int) -> FaultKind | None:
        """Consult the plan for one page-read attempt.

        Returns ``FaultKind.TRANSIENT_READ`` when this attempt must
        fail, ``None`` otherwise.  Every attempt counts — a retried read
        is a new operation, which is how ``times=3`` makes three
        consecutive attempts fail.
        """
        with self._lock:
            self._reads_total += 1
            per_pid = self._reads_by_pid.get(pid, 0) + 1
            self._reads_by_pid[pid] = per_pid
            for spec in self.specs:
                if spec.kind is not FaultKind.TRANSIENT_READ:
                    continue
                if not spec._armed or spec._remaining <= 0:
                    continue
                if spec.pid is not None and spec.pid != pid:
                    continue
                count = per_pid if spec.pid is not None else self._reads_total
                if count >= spec.op_index:
                    spec._remaining -= 1
                    self.injected.append(
                        f"transient_read pid={pid} attempt={count}"
                    )
                    return FaultKind.TRANSIENT_READ
        return None

    def on_write(self, pid: int) -> FaultKind | None:
        """Consult the plan for one page write.

        Returns ``PERMANENT_WRITE`` when the write must fail,
        ``TORN_WRITE`` when the store must persist a torn image, and
        ``None`` for a clean write.
        """
        with self._lock:
            self._writes_total += 1
            per_pid = self._writes_by_pid.get(pid, 0) + 1
            self._writes_by_pid[pid] = per_pid
            if pid in self._poisoned_writes:
                self.injected.append(f"permanent_write pid={pid} (sticky)")
                return FaultKind.PERMANENT_WRITE
            for spec in self.specs:
                if not spec._armed:
                    continue
                if spec.pid is not None and spec.pid != pid:
                    continue
                count = per_pid if spec.pid is not None else self._writes_total
                if spec.kind is FaultKind.PERMANENT_WRITE:
                    if count >= spec.op_index:
                        # Disarm on first fire: the page that triggered
                        # the fault stays permanently unwritable (sticky
                        # via _poisoned_writes), but other pages keep
                        # writing cleanly — a single bad sector, not a
                        # whole-disk failure.
                        spec._armed = False
                        self._poisoned_writes.add(pid)
                        self.injected.append(
                            f"permanent_write pid={pid} write#{count}"
                        )
                        return FaultKind.PERMANENT_WRITE
                elif spec.kind is FaultKind.TORN_WRITE:
                    if spec._remaining > 0 and count >= spec.op_index:
                        spec._remaining -= 1
                        self.injected.append(
                            f"torn_write pid={pid} write#{count}"
                        )
                        return FaultKind.TORN_WRITE
        return None

    # ------------------------------------------------------------------
    # crash-time WAL faults
    # ------------------------------------------------------------------
    def wal_tail_actions(self) -> tuple[int, int | None]:
        """``(loss_count, corrupt_back_index)`` for crash time.

        ``loss_count`` is how many tail records to drop (0 = none);
        ``corrupt_back_index`` is the offset from the log end of the
        record whose checksum to flip (``None`` = no corruption).  Each
        WAL spec fires once — a restarted database that crashes again
        does not re-lose its tail.
        """
        loss = 0
        corrupt: int | None = None
        with self._lock:
            for spec in self.specs:
                if not spec._armed:
                    continue
                if spec.kind is FaultKind.WAL_TAIL_LOSS:
                    loss = max(loss, spec.op_index)
                    spec._armed = False
                    self.injected.append(f"wal_tail_loss n={spec.op_index}")
                elif spec.kind is FaultKind.WAL_TAIL_CORRUPT:
                    corrupt = spec.op_index
                    spec._armed = False
                    self.injected.append(
                        f"wal_tail_corrupt back={spec.op_index}"
                    )
        return loss, corrupt

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def note_restart(self) -> None:
        """Deactivate storage faults: restart runs on repaired hardware.

        Damage already done (torn images on disk, lost tail records)
        persists as *state*; only future injections stop.  This keeps
        restart recovery itself deterministic and lets a poisoned page
        finally be rewritten by redo.
        """
        with self._lock:
            self._poisoned_writes.clear()
            for spec in self.specs:
                if spec.kind in STORAGE_KINDS:
                    spec._armed = False

    def note_skipped(self, message: str) -> None:
        """Record that a fired fault turned out to be a no-op."""
        with self._lock:
            self.injected.append(f"skipped: {message}")

    def snapshot(self) -> dict:
        """Diagnostic snapshot (fired faults + op counters)."""
        with self._lock:
            return {
                "specs": [spec.describe() for spec in self.specs],
                "injected": list(self.injected),
                "reads": self._reads_total,
                "writes": self._writes_total,
            }
