"""Deterministic storage fault injection (``repro.faults``).

A :class:`FaultPlan` is a seeded, per-operation schedule of storage
faults — transient read errors, permanent write errors, torn page
writes, and WAL tail loss/corruption — consulted by the simulated disk
(:class:`~repro.storage.disk.PageStore`) and applied to the log manager
at crash time.  Plans are pure data plus deterministic counters, so the
same seed always injects the same faults at the same operations; the
:class:`~repro.harness.chaos.ChaosHarness` builds its trials on that
reproducibility.
"""

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultKind", "FaultPlan", "FaultSpec"]
