"""Chaos harness: seeded storage faults + crash/recovery trials.

Extends the crash-injection harness (experiment C5) with a
:class:`~repro.faults.FaultPlan`: each trial runs the randomized
transactional workload *while the simulated disk misbehaves* —
transient read errors, permanent write failures, torn page writes —
then crashes (optionally losing or corrupting the WAL tail), restarts,
and checks the recovery oracle:

* every transaction whose commit record survived in the valid log
  prefix keeps all of its effects;
* every other transaction (uncommitted, or committed into the lost
  tail) leaves no trace;
* the recovered tree passes the full structural invariant check.

The oracle accounts for WAL tail loss by tracking each transaction's
*commit LSN*: after recovery truncates the log at
``RecoveryReport.valid_end_lsn``, exactly the commits at or below that
LSN survive.  Tail faults never reach below the highest LSN any
persisted page or checkpoint depends on (see ``Database.crash``), so
the surviving-commit set is always a prefix of commit order and the
expected contents are computable by replaying surviving effects in
commit-LSN order.

Trials are bit-for-bit reproducible: the fault plan, the workload and
the backoff policy (``io_retry_backoff=0`` — no wall-clock sleeps) are
all derived from the seed, and the workload is single-threaded.

Run standalone for the CI chaos-smoke gate::

    PYTHONPATH=src python -m repro.harness.chaos --trials 25
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import StorageFaultError, TransactionAbort
from repro.ext.btree import Interval
from repro.faults import FaultKind, FaultPlan
from repro.gist.checker import check_tree
from repro.harness.crash import CrashRecoveryHarness, CrashTrialResult
from repro.harness.report import render_table
from repro.wal.records import CommitRecord


@dataclass
class ChaosTrialResult(CrashTrialResult):
    """Outcome of one chaos trial (crash trial + fault accounting)."""

    #: faults the plan actually fired (from ``FaultPlan.injected``)
    faults_injected: int = 0
    fault_log: list[str] = field(default_factory=list)
    #: transient-read retries the buffer pool performed
    io_retries: int = 0
    #: runtime (pre-crash) checksum-mismatch detections by the pool
    torn_pages_detected: int = 0
    #: heals across both phases: runtime rebuilds + recovery rebuilds
    torn_pages_healed: int = 0
    write_faults: int = 0
    #: log records recovery truncated at the first bad checksum
    tail_records_dropped: int = 0
    #: committed transactions whose commit record fell in the lost tail
    lost_commits: int = 0
    #: workload steps that surfaced a typed storage fault (rolled back)
    typed_failures: int = 0
    #: hard lockdep violations (``protocol_checks=True`` runs only);
    #: tracked separately because ``ok`` ignores the ``errors`` list
    protocol_violations: int = 0
    #: JSONL flight-recorder dump written because this trial failed
    #: (``None`` for passing trials — the black box is only shipped
    #: when there is something to diagnose)
    blackbox_path: str | None = None
    #: partition trials: which worker was SIGKILLed (-1 otherwise)
    killed_partition: int = -1
    #: partition trials: supervisor respawns observed
    partition_restarts: int = 0


def chaos_rows(results: list[ChaosTrialResult]) -> list[dict]:
    """Table rows for chaos results (errors surfaced, like trial_rows)."""
    rows = []
    for r in results:
        first_error = r.errors[0] if r.errors else ""
        if len(first_error) > 48:
            first_error = first_error[:47] + "…"
        rows.append(
            {
                "seed": r.seed,
                "ok": "yes" if r.ok else "NO",
                "committed": r.committed_txns,
                "faults": r.faults_injected,
                "retries": r.io_retries,
                "torn": r.torn_pages_detected,
                "healed": r.torn_pages_healed,
                "tail_drop": r.tail_records_dropped,
                "lost_commits": r.lost_commits,
                "typed_fail": r.typed_failures,
                "protocol": r.protocol_violations,
                "errors": len(r.errors),
                "first_error": first_error,
            }
        )
    return rows


class ChaosHarness(CrashRecoveryHarness):
    """Seeded fault-injection + crash/recovery trials with an oracle."""

    def __init__(
        self,
        *,
        page_capacity: int = 8,
        pool_capacity: int = 8,
        key_space: int = 10_000,
        io_retries: int = 4,
        kinds: frozenset[FaultKind] | set[FaultKind] | None = None,
        extension=None,
        protocol_checks: bool = False,
        blackbox_dir: str | None = None,
    ) -> None:
        super().__init__(
            page_capacity=page_capacity,
            key_space=key_space,
            extension=extension,
        )
        #: small pool so the workload actually evicts and re-reads pages
        #: (faults live on the simulated disk, not in resident frames)
        self.pool_capacity = pool_capacity
        self.io_retries = io_retries
        self.kinds = set(kinds) if kinds is not None else set(FaultKind)
        #: attach a lockdep witness to every trial database; any hard
        #: violation (latch-across-lock-wait, WAL rule) fails the trial
        self.protocol_checks = protocol_checks
        #: where failed trials dump their flight-recorder black box
        #: (``None``: the platform temp dir)
        self.blackbox_dir = blackbox_dir

    def run_trial(
        self,
        seed: int,
        *,
        txns: int = 20,
        ops_per_txn: int = 6,
        commit_probability: float = 0.7,
        flush_probability: float = 0.3,
        crash_mid_smo: bool = False,
    ) -> ChaosTrialResult:
        """One seeded trial: faulty workload, crash, recover, verify."""
        rng = random.Random(seed)
        plan = FaultPlan.random(seed, kinds=self.kinds)
        result = ChaosTrialResult(seed=seed)
        db = Database(
            page_capacity=self.page_capacity,
            pool_capacity=self.pool_capacity,
            lock_timeout=5.0,
            fault_plan=plan,
            io_retries=self.io_retries,
            io_retry_backoff=0.0,  # deterministic: no wall-clock sleeps
            # False defers to REPRO_PROTOCOL_CHECKS; True forces it on
            protocol_checks=self.protocol_checks or None,
        )
        tree = db.create_tree("chaos", self.extension)
        #: committed effects in commit order: (commit_lsn, inserts, deletes)
        commit_log: list[tuple[int, list, list]] = []
        zombie_rids: set[object] = set()
        counter = 0

        for _ in range(txns):
            txn = db.begin()
            will_commit = rng.random() < commit_probability
            pending_inserts: list[tuple[object, object]] = []
            pending_deletes: list[tuple[object, object]] = []
            # committed state so far (delete targets must be committed)
            committed_state: dict[object, object] = {}
            for _, inserts, deletes in commit_log:
                for key, rid in inserts:
                    committed_state[rid] = key
                for rid in deletes:
                    committed_state.pop(rid, None)
            try:
                for _ in range(ops_per_txn):
                    deletable = sorted(
                        set(committed_state)
                        - zombie_rids
                        - {rid for rid in pending_deletes}
                    )
                    if deletable and rng.random() < 0.3:
                        rid = rng.choice(deletable)
                        tree.delete(txn, committed_state[rid], rid)
                        pending_deletes.append(rid)
                    else:
                        counter += 1
                        key = rng.randrange(self.key_space)
                        rid = f"s{seed}-r{counter}"
                        tree.insert(txn, key, rid)
                        pending_inserts.append((key, rid))
            except (TransactionAbort, StorageFaultError) as exc:
                # A surfaced fault aborts the transaction like a
                # deadlock would.  Rollback itself may hit the faulty
                # disk again — then the transaction is abandoned in
                # flight (its locks vanish at the crash) exactly like
                # an uncommitted-at-crash transaction.
                if isinstance(exc, StorageFaultError):
                    result.typed_failures += 1
                try:
                    db.rollback(txn)
                except Exception:
                    result.uncommitted_txns += 1
                    zombie_rids.update(r for _, r in pending_inserts)
                    zombie_rids.update(pending_deletes)
                continue
            if will_commit:
                mark = max(1, db.log.end_lsn)
                try:
                    db.commit(txn)
                except StorageFaultError:
                    # commit's log force cannot fault (faults target the
                    # page store), but stay safe: treat as in-flight
                    result.typed_failures += 1
                    result.uncommitted_txns += 1
                    zombie_rids.update(r for _, r in pending_inserts)
                    zombie_rids.update(pending_deletes)
                    continue
                result.committed_txns += 1
                commit_log.append(
                    (
                        self._commit_lsn(db, txn.xid, mark),
                        pending_inserts,
                        pending_deletes,
                    )
                )
            else:
                result.uncommitted_txns += 1
                zombie_rids.update(rid for _, rid in pending_inserts)
                zombie_rids.update(pending_deletes)
            if rng.random() < flush_probability:
                try:
                    db.pool.flush_all()
                except StorageFaultError:
                    # permanent write fault: the frame stays dirty in
                    # the pool; the WAL still covers the change
                    result.typed_failures += 1

        if crash_mid_smo:
            try:
                result.crashed_mid_smo = self._interrupt_inside_split(
                    db, tree, rng
                )
            except StorageFaultError:
                result.typed_failures += 1

        # runtime fault accounting, read before the pool is discarded
        metrics = db.metrics
        result.io_retries = metrics.counter("storage.io_retries").value
        result.torn_pages_detected = metrics.counter(
            "storage.torn_pages_detected"
        ).value
        result.torn_pages_healed = metrics.counter(
            "storage.torn_pages_healed"
        ).value
        result.write_faults = metrics.counter("storage.write_faults").value

        db.crash()  # WAL tail faults (if scheduled) fire here
        self._collect_protocol(db, "runtime", result)
        try:
            db2 = db.restart({"chaos": self.extension})
        except Exception as exc:  # pragma: no cover - trial diagnostics
            result.errors.append(f"restart failed: {exc!r}")
            result.fault_log = list(plan.injected)
            result.faults_injected = len(plan.injected)
            self._dump_blackbox(db, seed, result)
            return result
        result.recovered_ok = True
        report = db2.recovery_report
        result.tail_records_dropped = report.tail_records_dropped
        # torn_pages_detected stays the pre-crash runtime snapshot;
        # recovery-phase heals only add to the healed tally (recovery
        # already counts its own detections in db2's metrics).
        result.torn_pages_healed += report.torn_pages_healed
        result.fault_log = list(plan.injected)
        result.faults_injected = len(plan.injected)

        # Oracle: exactly the commits at or below the surviving log end
        # keep their effects, applied in commit order.
        valid_end = report.valid_end_lsn
        expected: dict[object, object] = {}
        for commit_lsn, inserts, deletes in commit_log:
            if commit_lsn > valid_end or commit_lsn == 0:
                result.lost_commits += 1
                continue
            for key, rid in inserts:
                expected[rid] = key
            for rid in deletes:
                expected.pop(rid, None)

        tree2 = db2.tree("chaos")
        check = check_tree(tree2)
        result.structure_ok = check.ok
        result.errors.extend(check.errors)

        txn = db2.begin()
        found = {}
        for key, rid in tree2.search(txn, Interval(0, self.key_space)):
            found[rid] = key
        db2.commit(txn)
        if found == expected:
            result.contents_match = True
        else:
            missing = sorted(set(expected) - set(found))[:5]
            extra = sorted(set(found) - set(expected))[:5]
            result.errors.append(
                f"content mismatch: missing={missing} extra={extra}"
            )
        self._collect_protocol(db2, "recovery", result)
        if not result.ok or result.protocol_violations:
            # A failing seed ships its black box: the flight recorder
            # survived the restart (same instance), so the dump holds
            # the pre-crash events that led up to the failure.
            self._dump_blackbox(db2, seed, result)
        return result

    #: hook points a batch trial may crash at (mid-bulk_load, both
    #: inside and after the structure NTA, and mid-multi_put run)
    BATCH_CRASH_POINTS = (
        "bulk:attached",
        "bulk:structure-built",
        "bulk:leaf-filled",
        "multi_put:run",
    )

    def run_batch_trial(
        self,
        seed: int,
        *,
        txns: int = 12,
        batch_size: int = 12,
        commit_probability: float = 0.7,
        crash_point: str | None = None,
    ) -> ChaosTrialResult:
        """One seeded trial over the *batch* APIs, crashing mid-batch.

        The first transaction bulk-loads the empty tree; later ones
        issue ``multi_put`` / ``multi_delete`` batches.  At a seeded
        transaction the trial crashes the database from inside a batch
        operation — at one of :data:`BATCH_CRASH_POINTS`, i.e. inside
        the bulk-load structure NTA, right after it, between leaf
        fills, or between multi_put leaf runs — then restarts and
        checks the commit-LSN oracle: exactly the surviving committed
        transactions keep their effects, and the tree passes the full
        structural check.
        """
        rng = random.Random(seed ^ 0xBA7C4)
        result = ChaosTrialResult(seed=seed)
        db = Database(
            page_capacity=self.page_capacity,
            pool_capacity=max(self.pool_capacity, 32),
            lock_timeout=5.0,
            protocol_checks=self.protocol_checks or None,
        )
        tree = db.create_tree("chaos", self.extension)
        if crash_point is None:
            crash_point = self.BATCH_CRASH_POINTS[
                rng.randrange(len(self.BATCH_CRASH_POINTS))
            ]
        crash_txn = rng.randrange(txns)
        fires_before_crash = rng.randrange(3)

        class _BatchCrash(Exception):
            pass

        armed = [False]
        fired = [0]

        def maybe_crash(**_context: object) -> None:
            if not armed[0]:
                return
            fired[0] += 1
            if fired[0] > fires_before_crash:
                # Flush the tail so the crash actually tests undo of
                # durable mid-batch records, not just a lost tail.
                db.log.flush()
                raise _BatchCrash()

        db.hooks.on(crash_point, maybe_crash)

        commit_log: list[tuple[int, list, list]] = []
        zombie_rids: set[object] = set()
        counter = 0
        for t in range(txns):
            txn = db.begin()
            will_commit = rng.random() < commit_probability
            pending_inserts: list[tuple[object, object]] = []
            pending_deletes: list[object] = []
            committed_state: dict[object, object] = {}
            for _, inserts, deletes in commit_log:
                for key, rid in inserts:
                    committed_state[rid] = key
                for rid in deletes:
                    committed_state.pop(rid, None)
            armed[0] = t == crash_txn
            fired[0] = 0
            try:
                if t == 0:
                    pairs = []
                    for _ in range(batch_size * 4):
                        counter += 1
                        pairs.append(
                            (
                                rng.randrange(self.key_space),
                                f"s{seed}-r{counter}",
                            )
                        )
                    tree.bulk_load(txn, pairs)
                    pending_inserts.extend(pairs)
                else:
                    deletable = sorted(
                        set(committed_state) - zombie_rids
                    )
                    if deletable and rng.random() < 0.4:
                        victims = [
                            (committed_state[rid], rid)
                            for rid in rng.sample(
                                deletable,
                                min(batch_size, len(deletable)),
                            )
                        ]
                        tree.multi_delete(txn, victims)
                        pending_deletes.extend(rid for _, rid in victims)
                    else:
                        pairs = []
                        for _ in range(batch_size):
                            counter += 1
                            pairs.append(
                                (
                                    rng.randrange(self.key_space),
                                    f"s{seed}-r{counter}",
                                )
                            )
                        tree.multi_put(txn, pairs)
                        pending_inserts.extend(pairs)
            except _BatchCrash:
                result.uncommitted_txns += 1
                result.crashed_mid_smo = crash_point in (
                    "bulk:attached",
                )
                break
            finally:
                armed[0] = False
            if will_commit:
                mark = max(1, db.log.end_lsn)
                db.commit(txn)
                result.committed_txns += 1
                commit_log.append(
                    (
                        self._commit_lsn(db, txn.xid, mark),
                        pending_inserts,
                        pending_deletes,
                    )
                )
            else:
                # Abandon in flight, like a client that vanished: the
                # crash (below) wipes it, restart must undo its effects.
                result.uncommitted_txns += 1
                zombie_rids.update(rid for _, rid in pending_inserts)
                zombie_rids.update(pending_deletes)

        db.crash()
        self._collect_protocol(db, "runtime", result)
        try:
            db2 = db.restart({"chaos": self.extension})
        except Exception as exc:  # pragma: no cover - trial diagnostics
            result.errors.append(f"restart failed: {exc!r}")
            self._dump_blackbox(db, seed, result)
            return result
        result.recovered_ok = True
        report = db2.recovery_report
        result.tail_records_dropped = report.tail_records_dropped

        valid_end = report.valid_end_lsn
        expected: dict[object, object] = {}
        for commit_lsn, inserts, deletes in commit_log:
            if commit_lsn > valid_end or commit_lsn == 0:
                result.lost_commits += 1
                continue
            for key, rid in inserts:
                expected[rid] = key
            for rid in deletes:
                expected.pop(rid, None)

        tree2 = db2.tree("chaos")
        check = check_tree(tree2)
        result.structure_ok = check.ok
        result.errors.extend(check.errors)

        txn = db2.begin()
        found = {}
        for key, rid in tree2.search(txn, Interval(0, self.key_space)):
            found[rid] = key
        db2.commit(txn)
        if found == expected:
            result.contents_match = True
        else:
            missing = sorted(set(expected) - set(found))[:5]
            extra = sorted(set(found) - set(expected))[:5]
            result.errors.append(
                f"content mismatch at {crash_point}: "
                f"missing={missing} extra={extra}"
            )
        self._collect_protocol(db2, "recovery", result)
        if not result.ok or result.protocol_violations:
            self._dump_blackbox(db2, seed, result)
        return result

    def run_partition_trial(
        self,
        seed: int,
        *,
        partitions: int = 3,
        batches: int = 24,
        batch_size: int = 8,
    ) -> ChaosTrialResult:
        """One seeded *cluster* trial: SIGKILL a worker mid-workload.

        A :class:`~repro.cluster.PartitionedDatabase` serves a seeded
        batched workload; at a seeded point one partition worker is
        SIGKILLed — no flush, no goodbye — and the next operation that
        routes to it triggers supervisor recovery from the partition's
        WAL shadow.  The commit-LSN oracle then runs *per partition*:

        * every **acknowledged** batch leg (its ack carried the commit
          LSN and the shadow's durable LSN) keeps all of its effects on
          its partition;
        * the legs of the one batch in flight at the kill are "maybe" —
          each may be present or absent, but never torn;
        * the recovered partition's log end covers every durable LSN it
          ever acknowledged, and every partition passes the structural
          check.
        """
        from repro.cluster import PartitionedDatabase

        rng = random.Random(seed ^ 0x9A57171)
        result = ChaosTrialResult(seed=seed)
        cluster = PartitionedDatabase(
            partitions,
            router="hash",
            page_capacity=self.page_capacity,
            protocol_checks=self.protocol_checks or None,
        )
        try:
            cluster.create_tree("chaos", self.extension)
            router = cluster.router
            #: per-partition acked effects: partition -> {rid: key}
            expected: list[dict] = [{} for _ in range(partitions)]
            #: rids whose final state is unknowable (in flight at kill)
            maybe: set[object] = set()
            #: per-partition highest acknowledged durable LSN
            acked_durable = [0] * partitions
            kill_at = rng.randrange(batches // 4, (3 * batches) // 4)
            victim = rng.randrange(partitions)
            result.killed_partition = victim
            counter = 0

            for b in range(batches):
                if b == kill_at:
                    cluster.kill_partition(victim)
                ops = []
                acked_rids: list[object] = [
                    rid
                    for per in expected
                    for rid in per
                    if rid not in maybe
                ]
                for _ in range(batch_size):
                    deletable = [
                        rid
                        for rid in acked_rids
                        if rid not in {op[2] for op in ops}
                    ]
                    if deletable and rng.random() < 0.25:
                        rid = rng.choice(deletable)
                        key = next(
                            per[rid] for per in expected if rid in per
                        )
                        ops.append(("delete", key, rid))
                    else:
                        counter += 1
                        key = rng.randrange(self.key_space)
                        ops.append(("put", key, f"s{seed}-p{counter}"))
                try:
                    acks = cluster.apply_batch("chaos", ops)
                except Exception as exc:
                    # worker death mid-batch: acked legs are durable,
                    # un-acked legs are "maybe"
                    acks = getattr(exc, "acked", {})
                    for op in ops:
                        p = router.partition_of(op[1])
                        if p not in acks:
                            maybe.add(op[2])
                self._apply_partition_acks(
                    ops, acks, router, expected, acked_durable, result
                )

            # Per-partition oracle: structure + contents + LSN cover.
            # If no post-kill op happened to route to the victim, this
            # scatter is what surfaces the death: the first attempt
            # recovers the partition and fails, the retry runs clean.
            verify_queries = {"chaos": Interval(0, self.key_space)}
            try:
                reports = cluster.verify(verify_queries)
            except Exception:
                reports = cluster.verify(verify_queries)
            handle = cluster.supervisor.handles[victim]
            result.partition_restarts = cluster.supervisor.restarts
            result.recovered_ok = (
                result.partition_restarts > 0
                and handle.ready_info.get("recovered") is not None
            )
            result.structure_ok = True
            result.contents_match = True
            for p, report in sorted(reports.items()):
                tree_report = report["trees"]["chaos"]
                if not tree_report["ok"]:
                    result.structure_ok = False
                    result.errors.extend(
                        f"partition {p}: {e}"
                        for e in tree_report["errors"]
                    )
                if report["end_lsn"] < acked_durable[p]:
                    result.contents_match = False
                    result.errors.append(
                        f"partition {p}: recovered end_lsn "
                        f"{report['end_lsn']} < acked durable LSN "
                        f"{acked_durable[p]}"
                    )
                found = {
                    rid: key for key, rid in tree_report["contents"]
                }
                for rid, key in expected[p].items():
                    if rid in maybe:
                        continue
                    if found.get(rid) != key:
                        result.contents_match = False
                        result.errors.append(
                            f"partition {p}: acked {rid!r} -> {key!r} "
                            f"missing (got {found.get(rid)!r})"
                        )
                for rid in found:
                    if rid not in expected[p] and rid not in maybe:
                        result.contents_match = False
                        result.errors.append(
                            f"partition {p}: unexpected rid {rid!r}"
                        )
        finally:
            cluster.shutdown()
        return result

    def run_server_trial(
        self,
        seed: int,
        *,
        partitions: int = 2,
        batches: int = 40,
        batch_size: int = 4,
    ) -> ChaosTrialResult:
        """One seeded *serving* trial: SIGKILL the whole server mid-load.

        A child process (its own process group, so the kill takes the
        front end **and** its forked partition workers in one shot)
        runs a cluster-backed :class:`~repro.server.DatabaseServer`
        over an on-disk data dir.  The parent drives seeded batches
        through a real network client, ledgering each acknowledged
        batch's per-partition commit/durable LSNs; at a seeded point
        it SIGKILLs the server's process group, then re-opens the
        cluster from the surviving WAL shadows and runs the commit-LSN
        oracle:

        * every effect the *client* saw acknowledged is present;
        * the one batch in flight at the kill is "maybe" (present or
          absent, never torn);
        * each partition's recovered log end covers every durable LSN
          it ever acknowledged, and the structural check passes.

        This closes the durability loop end to end: the ack the oracle
        trusts crossed two process boundaries and a TCP socket before
        the client ledgered it.
        """
        import os
        import shutil
        import signal
        import tempfile
        import time as _time

        from repro.cluster import PartitionedDatabase
        from repro.errors import ReproError
        from repro.server.client import ReproClient

        rng = random.Random(seed ^ 0x5E12E12)
        result = ChaosTrialResult(seed=seed)
        data_dir = tempfile.mkdtemp(prefix=f"chaos-server-{seed}-")
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits via os._exit
            os.close(read_fd)
            try:
                os.setsid()  # one killpg reaps server + workers
                from repro.server import ClusterBackend, DatabaseServer

                cluster = PartitionedDatabase(
                    partitions,
                    router="hash",
                    data_dir=data_dir,
                    page_capacity=self.page_capacity,
                    protocol_checks=self.protocol_checks or None,
                )
                cluster.create_tree("chaos", self.extension)
                server = DatabaseServer(
                    ClusterBackend(cluster)
                ).start()
                os.write(write_fd, str(server.port).encode())
                os.close(write_fd)
                while True:
                    _time.sleep(3600)
            except BaseException:
                os._exit(70)
        os.close(write_fd)
        try:
            port_bytes = os.read(read_fd, 16)
        finally:
            os.close(read_fd)
        if not port_bytes:
            os.waitpid(pid, 0)
            result.errors.append("server child died before listening")
            shutil.rmtree(data_dir, ignore_errors=True)
            return result
        port = int(port_bytes.decode())

        #: client-side acked effects, partition-agnostic (the parent
        #: cannot route keys until it reopens the cluster)
        acked_state: dict[object, object] = {}
        acked_durable = [0] * partitions
        maybe: set[object] = set()
        kill_at = rng.randrange(batches // 4, (3 * batches) // 4)
        counter = 0
        killed = False
        client = ReproClient("127.0.0.1", port, f"chaos-{seed}")
        batch_log: list[list[tuple]] = []
        try:
            for b in range(batches):
                if b == kill_at:
                    os.killpg(pid, signal.SIGKILL)
                    killed = True
                ops: list[tuple] = []
                for _ in range(batch_size):
                    taken = {op[2] for op in ops}
                    deletable = sorted(
                        r for r in acked_state if r not in taken
                    )
                    if deletable and rng.random() < 0.25:
                        rid = rng.choice(deletable)
                        ops.append(("delete", acked_state[rid], rid))
                    else:
                        counter += 1
                        ops.append(
                            (
                                "put",
                                rng.randrange(self.key_space),
                                f"s{seed}-v{counter}",
                            )
                        )
                try:
                    ack = client.batch("chaos", ops, timeout=10.0)
                except (ReproError, OSError):
                    # the kill (or its wake) ate this batch: every
                    # op in it is "maybe", and the session is done
                    maybe.update(op[2] for op in ops)
                    break
                batch_log.append(ops)
                result.committed_txns += 1
                for op in ops:
                    if op[0] == "put":
                        acked_state[op[2]] = op[1]
                    else:
                        acked_state.pop(op[2], None)
                for p_str, durable in ack["durable_lsn"].items():
                    p = int(p_str)
                    acked_durable[p] = max(acked_durable[p], durable)
                    if ack["commit_lsn"][p_str] > durable:
                        result.errors.append(
                            f"partition {p}: ack commit_lsn above "
                            f"durable_lsn"
                        )
        finally:
            client.close()
            if not killed:
                os.killpg(pid, signal.SIGKILL)
            os.waitpid(pid, 0)

        # Re-open from the shadows and run the per-partition oracle.
        try:
            cluster = PartitionedDatabase.open(
                data_dir, {"chaos": self.extension}
            )
        except Exception as exc:
            result.errors.append(f"cluster reopen failed: {exc!r}")
            shutil.rmtree(data_dir, ignore_errors=True)
            return result
        try:
            result.recovered_ok = True
            result.partition_restarts = partitions
            router = cluster.router
            #: per-partition acked effects, folded now that the
            #: reopened cluster's router can place each key
            expected: list[dict] = [{} for _ in range(partitions)]
            for ops in batch_log:
                for op in ops:
                    p = router.partition_of(op[1])
                    if op[0] == "put":
                        expected[p][op[2]] = op[1]
                    else:
                        expected[p].pop(op[2], None)
            reports = cluster.verify(
                {"chaos": Interval(0, self.key_space)}
            )
            result.structure_ok = True
            result.contents_match = True
            for p, report in sorted(reports.items()):
                tree_report = report["trees"]["chaos"]
                if not tree_report["ok"]:
                    result.structure_ok = False
                    result.errors.extend(
                        f"partition {p}: {e}"
                        for e in tree_report["errors"]
                    )
                if report["end_lsn"] < acked_durable[p]:
                    result.contents_match = False
                    result.errors.append(
                        f"partition {p}: recovered end_lsn "
                        f"{report['end_lsn']} < acked durable LSN "
                        f"{acked_durable[p]}"
                    )
                found = {
                    rid: key for key, rid in tree_report["contents"]
                }
                for rid, key in expected[p].items():
                    if rid in maybe:
                        continue
                    if found.get(rid) != key:
                        result.contents_match = False
                        result.errors.append(
                            f"partition {p}: acked {rid!r} -> "
                            f"{key!r} missing "
                            f"(got {found.get(rid)!r})"
                        )
                for rid in found:
                    if rid not in expected[p] and rid not in maybe:
                        result.contents_match = False
                        result.errors.append(
                            f"partition {p}: unexpected rid {rid!r}"
                        )
        finally:
            cluster.shutdown()
            shutil.rmtree(data_dir, ignore_errors=True)
        return result

    @staticmethod
    def _apply_partition_acks(
        ops: list,
        acks: dict,
        router,
        expected: list[dict],
        acked_durable: list[int],
        result: ChaosTrialResult,
    ) -> None:
        """Fold acknowledged batch legs into the per-partition oracle."""
        for op in ops:
            p = router.partition_of(op[1])
            if p not in acks:
                continue
            if op[0] == "put":
                expected[p][op[2]] = op[1]
            else:
                expected[p].pop(op[2], None)
        for p, ack in acks.items():
            result.committed_txns += 1
            acked_durable[p] = max(acked_durable[p], ack["durable_lsn"])
            if ack["commit_lsn"] > ack["durable_lsn"]:
                result.errors.append(
                    f"partition {p}: ack commit_lsn {ack['commit_lsn']} "
                    f"above durable_lsn {ack['durable_lsn']}"
                )

    def _dump_blackbox(
        self, db: Database, seed: int, result: ChaosTrialResult
    ) -> None:
        """Dump the flight recorder and embed the path + tail in errors."""
        flightrec = db.flightrec
        if flightrec is None:
            return
        import os
        import tempfile

        directory = self.blackbox_dir or tempfile.gettempdir()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"chaos-blackbox-seed-{seed}.jsonl"
        )
        try:
            result.blackbox_path = flightrec.dump(path)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            result.errors.append(f"blackbox dump failed: {exc!r}")
            return
        tail = ", ".join(e.name for e in flightrec.last(8))
        result.errors.append(
            f"blackbox: {result.blackbox_path} (last events: {tail})"
        )

    @staticmethod
    def _collect_protocol(
        db: Database, phase: str, result: ChaosTrialResult
    ) -> None:
        """Fold the phase's hard lockdep violations into the result.

        ``CrashTrialResult.ok`` only looks at the oracle fields, so the
        violations are counted separately and :func:`main` fails the
        run on them explicitly.
        """
        if db.witness is None:
            return
        for violation in db.witness.drain_new():
            result.protocol_violations += 1
            result.errors.append(f"protocol[{phase}]: {violation}")

    @staticmethod
    def _commit_lsn(db: Database, xid: int, mark: int) -> int:
        """LSN of ``xid``'s commit record, scanning from ``mark``."""
        for record in db.log.records_from(mark):
            if isinstance(record, CommitRecord) and record.xid == xid:
                return record.lsn
        return 0  # pragma: no cover - commit always logs


def main(argv: list[str] | None = None) -> int:
    """CLI entry for the CI ``chaos-smoke`` job."""
    import argparse

    parser = argparse.ArgumentParser(
        description="seeded storage-fault + crash/recovery trials"
    )
    parser.add_argument("--trials", type=int, default=25)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument(
        "--mid-smo-every",
        type=int,
        default=5,
        help="every nth trial also crashes inside a node split",
    )
    parser.add_argument(
        "--batch-trials",
        type=int,
        default=0,
        help="additional trials over the batch APIs (bulk_load / "
        "multi_put / multi_delete) that crash mid-batch-operation",
    )
    parser.add_argument(
        "--partition-trials",
        type=int,
        default=0,
        help="additional trials against a PartitionedDatabase that "
        "SIGKILL one partition worker mid-workload, recover it from "
        "its WAL shadow, and check the commit-LSN oracle per partition",
    )
    parser.add_argument(
        "--server-trials",
        type=int,
        default=0,
        help="additional trials that run a cluster-backed network "
        "server in a child process group, SIGKILL the whole group "
        "mid-load, re-open the cluster from its WAL shadows, and "
        "check the commit-LSN oracle against the client-side ledger "
        "of acknowledged batches",
    )
    parser.add_argument(
        "--protocol-checks",
        action="store_true",
        help="attach the lockdep witness to every trial; any hard "
        "latch/lock/WAL-rule violation fails the run",
    )
    parser.add_argument(
        "--blackbox-dir",
        default=None,
        help="directory for failed trials' flight-recorder JSONL dumps "
        "(default: the platform temp dir)",
    )
    args = parser.parse_args(argv)

    harness = ChaosHarness(
        protocol_checks=args.protocol_checks,
        blackbox_dir=args.blackbox_dir,
    )
    results: list[ChaosTrialResult] = []
    for i in range(args.trials):
        seed = args.base_seed + i
        mid_smo = args.mid_smo_every > 0 and i % args.mid_smo_every == 0
        results.append(harness.run_trial(seed, crash_mid_smo=mid_smo))
    for i in range(args.batch_trials):
        results.append(harness.run_batch_trial(args.base_seed + i))
    for i in range(args.partition_trials):
        results.append(harness.run_partition_trial(args.base_seed + i))
    for i in range(args.server_trials):
        results.append(harness.run_server_trial(args.base_seed + i))

    print(render_table(chaos_rows(results), title="chaos trials"))
    # protocol violations fail the run even though the recovery oracle
    # (CrashTrialResult.ok) does not look at them
    failed = [r for r in results if not r.ok or r.protocol_violations]
    total_faults = sum(r.faults_injected for r in results)
    total_protocol = sum(r.protocol_violations for r in results)
    print(
        f"\n{len(results) - len(failed)}/{len(results)} trials ok, "
        f"{total_faults} faults injected, "
        f"{sum(r.lost_commits for r in results)} commits lost to WAL "
        f"tail faults (correctly rolled back)"
    )
    if args.protocol_checks:
        print(
            f"protocol checks: {total_protocol} hard violations across "
            f"{len(results)} trials"
        )
    for r in failed:
        print(f"\nseed {r.seed} FAILED:")
        if r.blackbox_path:
            print(f"  blackbox: {r.blackbox_path}")
        for line in r.fault_log:
            print(f"  fault: {line}")
        for err in r.errors:
            print(f"  error: {err}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
