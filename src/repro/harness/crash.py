"""Crash-injection harness (experiment C5, Table 1's end-to-end check).

Drives a randomized transactional workload against a fresh database,
maintaining an *oracle* of what each transaction did; crashes the
database at a configurable point (optionally mid-structure-modification,
via a hook that raises :class:`~repro.errors.CrashError` inside an
insert); restarts; and verifies that

* the recovered tree passes the full structural invariant check, and
* its contents equal exactly the union of committed transactions'
  effects — no lost committed work, no surviving uncommitted work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import CrashError, TransactionAbort
from repro.ext.btree import BTreeExtension, Interval
from repro.gist.checker import check_tree
from repro.gist.extension import GiSTExtension


@dataclass
class CrashTrialResult:
    """Outcome of one crash/recovery trial."""

    seed: int
    committed_txns: int = 0
    uncommitted_txns: int = 0
    crashed_mid_smo: bool = False
    recovered_ok: bool = False
    contents_match: bool = False
    structure_ok: bool = False
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when recovery, contents and structure all checked out."""
        return self.recovered_ok and self.contents_match and self.structure_ok


def trial_rows(
    results: list[CrashTrialResult], *, max_error_chars: int = 60
) -> list[dict]:
    """Render trial results as table rows, *including their errors*.

    Failure diagnostics used to be dropped on the floor by report
    tables; this surfaces the first error of each trial (truncated to
    ``max_error_chars``) plus the error count, so a failing seed in CI
    output says *why* it failed, not just that it did.  Feed the rows to
    :func:`repro.harness.report.render_table`.
    """
    rows = []
    for r in results:
        first_error = r.errors[0] if r.errors else ""
        if len(first_error) > max_error_chars:
            first_error = first_error[: max_error_chars - 1] + "…"
        row = {
            "seed": r.seed,
            "ok": "yes" if r.ok else "NO",
            "committed": r.committed_txns,
            "uncommitted": r.uncommitted_txns,
            "mid_smo": "yes" if r.crashed_mid_smo else "",
            "errors": len(r.errors),
            "first_error": first_error,
        }
        rows.append(row)
    return rows


class CrashRecoveryHarness:
    """Run seeded crash/recovery trials over a scalar-key GiST."""

    def __init__(
        self,
        *,
        page_capacity: int = 8,
        key_space: int = 10_000,
        extension: GiSTExtension | None = None,
    ) -> None:
        self.page_capacity = page_capacity
        self.key_space = key_space
        self.extension = extension or BTreeExtension()

    def run_trial(
        self,
        seed: int,
        *,
        txns: int = 20,
        ops_per_txn: int = 6,
        commit_probability: float = 0.7,
        flush_probability: float = 0.3,
        crash_mid_smo: bool = False,
    ) -> CrashTrialResult:
        """One trial: random committed/uncommitted work, crash, verify.

        ``flush_probability`` controls how often the buffer pool flushes
        between transactions, so trials exercise every mix of on-disk /
        log-only state.  With ``crash_mid_smo`` the final transaction is
        interrupted *inside a node split* (before the atomic action's
        closing record), the hardest case of section 9.
        """
        rng = random.Random(seed)
        result = CrashTrialResult(seed=seed)
        db = Database(page_capacity=self.page_capacity, lock_timeout=5.0)
        tree = db.create_tree("crash", self.extension)
        oracle: dict[object, object] = {}  # rid -> key (committed state)
        #: rids whose locks are held by abandoned in-flight transactions;
        #: later transactions must not touch them or they would block on
        #: a lock that will only vanish at the crash
        zombie_rids: set[object] = set()
        counter = 0

        for _ in range(txns):
            txn = db.begin()
            will_commit = rng.random() < commit_probability
            pending_inserts: list[tuple[object, object]] = []
            pending_deletes: list[object] = []
            try:
                for _ in range(ops_per_txn):
                    deletable = sorted(
                        set(oracle)
                        - zombie_rids
                        - set(pending_deletes)
                    )
                    if deletable and rng.random() < 0.3:
                        rid = rng.choice(deletable)
                        tree.delete(txn, oracle[rid], rid)
                        pending_deletes.append(rid)
                    else:
                        counter += 1
                        key = rng.randrange(self.key_space)
                        rid = f"s{seed}-r{counter}"
                        tree.insert(txn, key, rid)
                        pending_inserts.append((key, rid))
            except TransactionAbort:
                db.rollback(txn)
                continue
            if will_commit:
                db.commit(txn)
                result.committed_txns += 1
                for key, rid in pending_inserts:
                    oracle[rid] = key
                for rid in pending_deletes:
                    oracle.pop(rid, None)
            else:
                # leave the transaction in flight: it will simply vanish
                # in the crash and must be rolled back by restart
                result.uncommitted_txns += 1
                zombie_rids.update(rid for _, rid in pending_inserts)
                zombie_rids.update(pending_deletes)
            if rng.random() < flush_probability:
                db.pool.flush_all()

        if crash_mid_smo:
            result.crashed_mid_smo = self._interrupt_inside_split(
                db, tree, rng
            )

        db.crash()
        try:
            db2 = db.restart({"crash": self.extension})
        except Exception as exc:  # pragma: no cover - trial diagnostics
            result.errors.append(f"restart failed: {exc!r}")
            return result
        result.recovered_ok = True
        tree2 = db2.tree("crash")

        check = check_tree(tree2)
        result.structure_ok = check.ok
        result.errors.extend(check.errors)

        txn = db2.begin()
        found = dict()
        for key, rid in tree2.search(txn, Interval(0, self.key_space)):
            found[rid] = key
        db2.commit(txn)
        if found == oracle:
            result.contents_match = True
        else:
            missing = sorted(set(oracle) - set(found))[:5]
            extra = sorted(set(found) - set(oracle))[:5]
            result.errors.append(
                f"content mismatch: missing={missing} extra={extra}"
            )
        return result

    def _interrupt_inside_split(self, db: Database, tree, rng) -> bool:
        """Force a crash exception inside a split's atomic action.

        The hook fires after the split record is written but before the
        enclosing nested top action commits, leaving an *interrupted
        structure modification* in the log — restart must undo it
        page-oriented (section 9.2).
        """

        def bomb(**_ctx: object) -> None:
            raise CrashError("injected crash inside split")

        db.hooks.on("insert:after-split", bomb)
        txn = db.begin()
        interrupted = False
        try:
            # hammer inserts until one of them splits a node
            for i in range(self.page_capacity * 50):
                tree.insert(
                    txn,
                    rng.randrange(self.key_space),
                    f"smo-{rng.random()}",
                )
        except CrashError:
            interrupted = True
        finally:
            db.hooks.clear()
        return interrupted

    def run_many(self, trials: int, base_seed: int = 0, **kwargs) -> list:
        """Run ``trials`` seeded trials and return their results."""
        return [
            self.run_trial(base_seed + i, **kwargs) for i in range(trials)
        ]
