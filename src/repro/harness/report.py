"""Plain-text table rendering for benchmark output.

The benchmark scripts print their results as aligned ASCII tables so
``pytest benchmarks/ --benchmark-only`` output doubles as the data
tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or ''}\n(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    for row in rows:
        for c in cols:
            widths[c] = max(widths[c], len(_fmt(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in cols))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in cols)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> None:
    """Print a rendered table with surrounding blank lines."""
    print()
    print(render_table(rows, title=title, columns=columns))
    print()
