"""Benchmark and verification harness: drivers, crash injection, probes."""

from repro.harness.chaos import ChaosHarness, ChaosTrialResult, chaos_rows
from repro.harness.crash import (
    CrashRecoveryHarness,
    CrashTrialResult,
    trial_rows,
)
from repro.harness.driver import (
    RETRYABLE_ERRORS,
    BaselineDriver,
    DriverMetrics,
    TransactionalDriver,
    run_with_retry,
)
from repro.harness.phantoms import AnomalyReport, run_phantom_campaign
from repro.harness.report import print_table, render_table

__all__ = [
    "AnomalyReport",
    "BaselineDriver",
    "ChaosHarness",
    "ChaosTrialResult",
    "CrashRecoveryHarness",
    "CrashTrialResult",
    "DriverMetrics",
    "RETRYABLE_ERRORS",
    "TransactionalDriver",
    "chaos_rows",
    "print_table",
    "render_table",
    "run_phantom_campaign",
    "run_with_retry",
    "trial_rows",
]
