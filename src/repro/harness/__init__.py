"""Benchmark and verification harness: drivers, crash injection, probes."""

from repro.harness.crash import CrashRecoveryHarness, CrashTrialResult
from repro.harness.driver import (
    BaselineDriver,
    DriverMetrics,
    TransactionalDriver,
)
from repro.harness.phantoms import AnomalyReport, run_phantom_campaign
from repro.harness.report import print_table, render_table

__all__ = [
    "AnomalyReport",
    "BaselineDriver",
    "CrashRecoveryHarness",
    "CrashTrialResult",
    "DriverMetrics",
    "TransactionalDriver",
    "print_table",
    "render_table",
    "run_phantom_campaign",
]
