"""Isolation anomaly detection (experiment C3).

Repeatable read (Degree 3, [Gra78]) demands that re-running a search
inside one transaction returns the identical result — no phantom
insertions, no vanished rows.  This harness runs *double-read probes*:
reader transactions scan a range twice with concurrent writers in
between, and every difference between the two reads is an anomaly.

Under ``REPEATABLE_READ`` the hybrid mechanism must yield **zero**
anomalies (writers into the scanned range block on the reader's
predicate or deadlock-abort); under ``READ_COMMITTED`` anomalies are
expected and act as the positive control proving the probe can detect
them.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import TransactionAbort, best_effort
from repro.ext.btree import BTreeExtension, Interval
from repro.txn.transaction import IsolationLevel


@dataclass
class AnomalyReport:
    """Result of one double-read probe campaign."""

    isolation: str = ""
    probes: int = 0
    anomalies: int = 0
    phantom_rids: list = field(default_factory=list)
    reader_aborts: int = 0
    writer_aborts: int = 0
    writer_commits: int = 0

    @property
    def anomaly_rate(self) -> float:
        """Fraction of probes that observed an anomaly."""
        return self.anomalies / self.probes if self.probes else 0.0


def run_phantom_campaign(
    *,
    isolation: IsolationLevel,
    probes: int = 20,
    writers: int = 3,
    key_space: int = 2_000,
    range_width: int = 200,
    preload: int = 300,
    seed: int = 7,
    page_capacity: int = 16,
    think_time: float = 0.005,
) -> AnomalyReport:
    """Readers double-read random ranges while writers insert/delete.

    Each probe opens a reader transaction, scans ``[lo, lo+width]``,
    sleeps long enough for writers to interleave, scans again, and
    compares.  Writers run continuously, inserting into and deleting
    from the same key space, retrying on deadlock aborts (the expected
    outcome when they collide with a reader's predicate under RR).
    """
    rng = random.Random(seed)
    db = Database(page_capacity=page_capacity, lock_timeout=20.0)
    tree = db.create_tree("iso", BTreeExtension())
    report = AnomalyReport(isolation=isolation.value)

    txn = db.begin()
    live: list[tuple[int, str]] = []
    for i in range(preload):
        key = rng.randrange(key_space)
        rid = f"pre-{i}"
        tree.insert(txn, key, rid)
        live.append((key, rid))
    db.commit(txn)

    stop = threading.Event()
    live_lock = threading.Lock()
    counter = [preload]

    def writer(wid: int) -> None:
        wrng = random.Random(seed * 1000 + wid)
        while not stop.is_set():
            txn = db.begin(isolation)
            try:
                if live and wrng.random() < 0.5:
                    with live_lock:
                        if not live:
                            continue
                        key, rid = live.pop(
                            wrng.randrange(len(live))
                        )
                    tree.delete(txn, key, rid)
                    db.commit(txn)
                else:
                    key = wrng.randrange(key_space)
                    with live_lock:
                        counter[0] += 1
                        rid = f"w{wid}-{counter[0]}"
                    tree.insert(txn, key, rid)
                    db.commit(txn)
                    with live_lock:
                        live.append((key, rid))
                report.writer_commits += 1
            except TransactionAbort:
                report.writer_aborts += 1
                best_effort(db.rollback, txn)
            except Exception:
                best_effort(db.rollback, txn)

    threads = [
        threading.Thread(target=writer, args=(w,), daemon=True) for w in range(writers)
    ]
    for thread in threads:
        thread.start()

    try:
        for _ in range(probes):
            lo = rng.randrange(key_space - range_width)
            query = Interval(lo, lo + range_width)
            txn = db.begin(isolation)
            try:
                first = set(tree.search(txn, query))
                time.sleep(think_time)
                second = set(tree.search(txn, query))
                db.commit(txn)
            except TransactionAbort:
                report.reader_aborts += 1
                best_effort(db.rollback, txn)
                continue
            report.probes += 1
            if first != second:
                report.anomalies += 1
                report.phantom_rids.extend(
                    sorted(r for _, r in second.symmetric_difference(first))[
                        :3
                    ]
                )
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    return report
