"""Multi-threaded benchmark drivers.

Two drivers share the same thread scaffolding and metrics:

* :class:`TransactionalDriver` runs generated operation streams against
  the full system (a :class:`~repro.database.Database` + GiST), batching
  operations into transactions and handling deadlock aborts with
  rollback-and-retry;
* :class:`BaselineDriver` runs the same streams against the
  non-transactional baseline trees, isolating the concurrency protocol.

Metrics include throughput, latency percentiles and protocol-specific
counters (rightlink follows, predicate blocks, restarts), which the
benchmark scripts print as the paper-claim tables of EXPERIMENTS.md.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro.database import Database
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    TransactionAbort,
    TransientIOError,
    best_effort,
)
from repro.gist.tree import GiST
from repro.txn.transaction import IsolationLevel
from repro.workload.generator import Op, partition_ops

T = TypeVar("T")

#: Errors worth retrying at the transaction level: deadlock victims,
#: lock-wait timeouts, and transient storage faults that survived the
#: buffer pool's own read retries.
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    DeadlockError,
    LockTimeoutError,
    TransientIOError,
)


def run_with_retry(
    fn: Callable[[], T],
    *,
    attempts: int = 10,
    base_backoff: float = 0.0,
    max_backoff: float = 0.1,
    rng: random.Random | None = None,
    retryable: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or ``attempts`` are exhausted.

    Between attempts the caller sleeps an exponentially growing,
    *jittered* backoff: ``base_backoff * 2**(attempt-1)`` capped at
    ``max_backoff``, scaled by a uniform factor in ``[0.5, 1.5)`` so
    that transactions aborted by the same deadlock do not re-collide in
    lockstep.  ``base_backoff=0`` retries immediately (deterministic
    tests).  ``on_retry(attempt, exc)`` is invoked for every retryable
    failure — including the last one, just before it is re-raised —
    so callers can count aborts.  ``fn`` is responsible for its own
    cleanup (e.g. rolling back the failed transaction) before the
    exception escapes it.
    """
    rng = rng or random.Random()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retryable as exc:
            if on_retry is not None:
                on_retry(attempt, exc)
            if attempt >= attempts:
                raise
            if base_backoff > 0.0:
                delay = min(
                    base_backoff * (2 ** (attempt - 1)), max_backoff
                )
                time.sleep(delay * (0.5 + rng.random()))


@dataclass
class DriverMetrics:
    """Aggregated results of one driver run."""

    protocol: str = ""
    threads: int = 0
    ops: int = 0
    commits: int = 0
    aborts: int = 0
    elapsed: float = 0.0
    latencies: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: full ``db.metrics.snapshot()`` taken at the end of the run
    #: (transactional driver only; not flattened into :meth:`row`)
    metrics_snapshot: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Throughput over the measured wall time."""
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """The q-quantile of observed operation latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def row(self) -> dict:
        """The metrics as a flat report row."""
        return {
            "protocol": self.protocol,
            "threads": self.threads,
            "ops": self.ops,
            "ops_per_sec": round(self.ops_per_sec, 1),
            "p50_ms": round(self.latency_percentile(0.50) * 1e3, 3),
            "p95_ms": round(self.latency_percentile(0.95) * 1e3, 3),
            "aborts": self.aborts,
            **self.extra,
        }


def _run_threads(workers: Sequence) -> float:
    """Start all workers behind a barrier; return elapsed wall time."""
    barrier = threading.Barrier(len(workers) + 1)
    threads = []
    for worker in workers:
        thread = threading.Thread(target=worker, args=(barrier,), daemon=True)
        thread.start()
        threads.append(thread)
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


class TransactionalDriver:
    """Run an op stream against the full system in worker transactions."""

    def __init__(
        self,
        db: Database,
        tree: GiST,
        *,
        isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ,
        ops_per_txn: int = 4,
        max_retries: int = 10,
    ) -> None:
        self.db = db
        self.tree = tree
        self.isolation = isolation
        self.ops_per_txn = ops_per_txn
        self.max_retries = max_retries

    def preload(self, ops: Sequence[Op]) -> None:
        """Apply a pure-insert prefix in one big transaction."""
        txn = self.db.begin(self.isolation)
        for op in ops:
            self.tree.insert(txn, op.key, op.rid)
        self.db.commit(txn)

    def run(self, ops: Sequence[Op], threads: int) -> DriverMetrics:
        """Execute and return the collected metrics."""
        metrics = DriverMetrics(protocol="gist", threads=threads)
        buckets = partition_ops(ops, threads)
        lock = threading.Lock()

        def worker_for(bucket: list[Op]):
            def work(barrier: threading.Barrier) -> None:
                barrier.wait()
                local_lat: list[float] = []
                commits = aborts = done = 0
                i = 0
                while i < len(bucket):
                    batch = bucket[i : i + self.ops_per_txn]
                    failures = [0]

                    def attempt_batch(batch=batch) -> float:
                        txn = self.db.begin(self.isolation)
                        start = time.perf_counter()
                        try:
                            for op in batch:
                                self._apply(txn, op)
                            self.db.commit(txn)
                            return time.perf_counter() - start
                        except BaseException:
                            self._safe_rollback(txn)
                            raise

                    def count_abort(
                        attempt: int, exc: BaseException, f=failures
                    ) -> None:
                        f[0] += 1

                    try:
                        latency = run_with_retry(
                            attempt_batch,
                            attempts=self.max_retries + 1,
                            retryable=(TransactionAbort, TransientIOError),
                            on_retry=count_abort,
                        )
                        local_lat.append(latency)
                        commits += 1
                        done += len(batch)
                    except (TransactionAbort, TransientIOError):
                        pass  # batch abandoned after exhausting retries
                    aborts += failures[0]
                    i += self.ops_per_txn
                with lock:
                    metrics.ops += done
                    metrics.commits += commits
                    metrics.aborts += aborts
                    metrics.latencies.extend(local_lat)

            return work

        workers = [worker_for(bucket) for bucket in buckets if bucket]
        metrics.threads = len(workers)
        metrics.elapsed = _run_threads(workers)
        stats = self.tree.stats.snapshot()
        metrics.extra = {
            "rightlinks": stats["rightlink_follows"],
            "splits": stats["splits"],
            "pred_blocks": stats["predicate_blocks"],
            "nsn_restarts": stats["nsn_restarts"],
            "hit_rate": round(
                self.db.pool.hits
                / max(1, self.db.pool.hits + self.db.pool.misses),
                3,
            ),
        }
        metrics.metrics_snapshot = self.db.metrics.snapshot()
        return metrics

    def _apply(self, txn, op: Op) -> None:
        from repro.errors import KeyNotFoundError

        if op.kind == "insert":
            self.tree.insert(txn, op.key, op.rid)
        elif op.kind == "delete":
            try:
                self.tree.delete(txn, op.key, op.rid)
            except Exception as exc:  # key may be gone after retries
                if not isinstance(exc, KeyNotFoundError):
                    raise
        elif op.kind == "search":
            self.tree.search(txn, op.query)
        elif op.kind == "multi_put":
            self.tree.multi_put(txn, op.pairs)
        elif op.kind == "multi_get":
            self.tree.multi_get(txn, op.keys)
        elif op.kind == "multi_delete":
            try:
                self.tree.multi_delete(txn, op.pairs)
            except Exception as exc:  # pairs may be gone after retries
                if not isinstance(exc, KeyNotFoundError):
                    raise
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _safe_rollback(self, txn) -> None:
        best_effort(self.db.rollback, txn)


class ClusterDriver:
    """Run an op stream against a :class:`PartitionedDatabase`.

    Client threads issue routed operations concurrently; a
    :class:`~repro.errors.PartitionFailedError` (worker died mid-call;
    the supervisor already respawned it) is retried like a deadlock
    abort.  Retried writes are at-least-once — the failed call's
    effects may have committed before the kill — which matches the
    cluster's documented "maybe" semantics for in-flight-at-kill
    operations, and the chaos oracle accounts for it.

    Retries back off with jitter (``retry_backoff`` base, doubling up
    to ``retry_max_backoff``): a partition crash fails every thread
    routed at it *simultaneously*, and immediate retries would have
    the whole client population hammer the recovering worker in
    lockstep — a retry storm against exactly the partition that can
    least afford one.  ``retry_backoff=0`` restores the old
    hot-retry behavior for deterministic tests.
    """

    def __init__(
        self,
        cluster,
        tree_name: str,
        *,
        max_retries: int = 10,
        retry_backoff: float = 0.002,
        retry_max_backoff: float = 0.1,
        rng: random.Random | None = None,
    ) -> None:
        self.cluster = cluster
        self.tree_name = tree_name
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_max_backoff = retry_max_backoff
        self.rng = rng

    def preload(self, ops: Sequence[Op]) -> None:
        """Apply a pure-insert prefix as one batched scatter."""
        self.cluster.multi_put(
            self.tree_name, [(op.key, op.rid) for op in ops]
        )

    def run(self, ops: Sequence[Op], threads: int) -> DriverMetrics:
        """Execute and return the collected metrics."""
        from repro.errors import PartitionFailedError

        metrics = DriverMetrics(protocol="cluster", threads=threads)
        buckets = partition_ops(ops, threads)
        lock = threading.Lock()

        def worker_for(bucket: list[Op]):
            def work(barrier: threading.Barrier) -> None:
                barrier.wait()
                local_lat: list[float] = []
                commits = aborts = done = 0
                for op in bucket:
                    failures = [0]

                    def attempt(op=op) -> float:
                        start = time.perf_counter()
                        self._apply(op)
                        return time.perf_counter() - start

                    def count_abort(
                        attempt_no: int, exc: BaseException, f=failures
                    ) -> None:
                        f[0] += 1

                    try:
                        latency = run_with_retry(
                            attempt,
                            attempts=self.max_retries + 1,
                            base_backoff=self.retry_backoff,
                            max_backoff=self.retry_max_backoff,
                            rng=self.rng,
                            retryable=(PartitionFailedError,),
                            on_retry=count_abort,
                        )
                        local_lat.append(latency)
                        commits += 1
                        done += 1
                    except PartitionFailedError:
                        pass  # op abandoned after exhausting retries
                    aborts += failures[0]
                with lock:
                    metrics.ops += done
                    metrics.commits += commits
                    metrics.aborts += aborts
                    metrics.latencies.extend(local_lat)

            return work

        workers = [worker_for(bucket) for bucket in buckets if bucket]
        metrics.threads = len(workers)
        metrics.elapsed = _run_threads(workers)
        snapshot = self.cluster.snapshot()
        cluster_section = snapshot["cluster"].get("cluster", {})
        metrics.extra = {
            "partitions": self.cluster.partitions,
            "routed_ops": cluster_section.get("routed_ops", 0),
            "scatter_queries": cluster_section.get("scatter_queries", 0),
            "worker_restarts": cluster_section.get("worker_restarts", 0),
        }
        metrics.metrics_snapshot = snapshot
        return metrics

    def _apply(self, op: Op) -> None:
        from repro.errors import KeyNotFoundError, WorkerFaultError

        cluster, tree = self.cluster, self.tree_name
        if op.kind == "insert":
            cluster.put(tree, op.key, op.rid)
        elif op.kind == "delete":
            try:
                cluster.delete(tree, op.key, op.rid)
            except WorkerFaultError as exc:
                # a retried kill-window delete may have applied already
                if exc.kind != KeyNotFoundError.__name__:
                    raise
        elif op.kind == "search":
            cluster.search(tree, op.query)
        elif op.kind == "multi_put":
            cluster.multi_put(tree, op.pairs)
        elif op.kind == "multi_get":
            cluster.multi_get(tree, op.keys)
        elif op.kind == "multi_delete":
            try:
                cluster.multi_delete(tree, op.pairs)
            except WorkerFaultError as exc:
                if exc.kind != KeyNotFoundError.__name__:
                    raise
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


class BaselineDriver:
    """Run an op stream against a non-transactional baseline tree."""

    def __init__(self, tree) -> None:
        self.tree = tree

    def preload(self, ops: Sequence[Op]) -> None:
        """Pure-insert prefix used to build the initial tree."""
        for op in ops:
            self.tree.insert(op.key, op.rid)

    def run(self, ops: Sequence[Op], threads: int) -> DriverMetrics:
        """Execute and return the collected metrics."""
        metrics = DriverMetrics(
            protocol=self.tree.protocol, threads=threads
        )
        buckets = partition_ops(ops, threads)
        lock = threading.Lock()

        def worker_for(bucket: list[Op]):
            def work(barrier: threading.Barrier) -> None:
                barrier.wait()
                local_lat: list[float] = []
                done = 0
                for op in bucket:
                    start = time.perf_counter()
                    if op.kind == "insert":
                        self.tree.insert(op.key, op.rid)
                    elif op.kind == "delete":
                        self.tree.delete(op.key, op.rid)
                    else:
                        self.tree.search(op.query)
                    local_lat.append(time.perf_counter() - start)
                    done += 1
                with lock:
                    metrics.ops += done
                    metrics.latencies.extend(local_lat)

            return work

        workers = [worker_for(bucket) for bucket in buckets if bucket]
        metrics.threads = len(workers)
        metrics.elapsed = _run_threads(workers)
        metrics.extra = {
            "rightlinks": self.tree.stats.rightlink_follows,
            "splits": self.tree.stats.splits,
            "restarts": self.tree.stats.restarts,
        }
        return metrics
