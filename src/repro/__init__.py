"""Concurrency and Recovery in Generalized Search Trees — a reproduction.

A from-scratch implementation of Kornacker, Mohan & Hellerstein's SIGMOD
1997 paper: the GiST index template extended with the link-based
concurrency protocol (NSNs + rightlinks), the hybrid repeatable-read
mechanism (two-phase record locking + node-attached predicate locks),
and the ARIES-style logging and recovery protocol of Table 1 — together
with every substrate they assume (buffer pool, latches, lock manager,
WAL, transactions) and the baselines the paper argues against.

Quickstart::

    from repro import Database, BTreeExtension, Interval

    db = Database()
    tree = db.create_tree("idx", BTreeExtension())
    txn = db.begin()
    tree.insert(txn, key=42, rid="r1")
    db.commit(txn)

    txn = db.begin()
    print(tree.search(txn, Interval(0, 100)))   # [(42, 'r1')]
    db.commit(txn)
"""

from repro.database import Database
from repro.errors import (
    DeadlockError,
    KeyNotFoundError,
    LockTimeoutError,
    ReproError,
    TransactionAbort,
    UniqueViolationError,
)
from repro.ext.btree import BTreeExtension, Interval
from repro.ext.rdtree import RDTreeExtension
from repro.ext.rtree import Rect, RTreeExtension
from repro.gist.checker import check_tree
from repro.gist.extension import GiSTExtension
from repro.gist.maintenance import vacuum
from repro.gist.tree import GiST
from repro.txn.transaction import IsolationLevel, Transaction

__version__ = "1.0.0"

__all__ = [
    "BTreeExtension",
    "Database",
    "DeadlockError",
    "GiST",
    "GiSTExtension",
    "Interval",
    "IsolationLevel",
    "KeyNotFoundError",
    "LockTimeoutError",
    "RDTreeExtension",
    "RTreeExtension",
    "Rect",
    "ReproError",
    "Transaction",
    "TransactionAbort",
    "UniqueViolationError",
    "check_tree",
    "vacuum",
    "__version__",
]
