"""The log manager.

An append-only, in-memory write-ahead log with an explicit durability
boundary: records with ``lsn <= flushed_lsn`` survive a crash, the rest
are lost (:meth:`LogManager.crash` truncates to the boundary).  LSNs are
monotonically increasing integers starting at 1, which also makes them a
valid NSN source (the section 10.1 optimization).

The manager keeps the per-transaction backchain (``prev_lsn``) and
implements **nested top actions**: :meth:`begin_nta` memorizes the
transaction's current last LSN and :meth:`end_nta` writes a
:class:`~repro.wal.records.DummyClr` whose ``undo_next`` points back to
it, so a later rollback of the transaction skips the whole structure
modification (section 9.1).
"""

from __future__ import annotations

import threading
from time import perf_counter_ns
from typing import Callable, Iterator

from repro.errors import WALError
from repro.obs.metrics import MetricsRegistry
from repro.wal.records import (
    NULL_LSN,
    DummyClr,
    LogRecord,
)


class LogStats:
    """Counters the benchmarks read off the log manager.

    The ints are only ever mutated while the log mutex is held, so plain
    ``+=`` is exact; a registry reads them through ``wal.*`` gauges
    evaluated at snapshot time, making an append cost zero registry
    calls on the hot path.  The flush-latency histogram stays a live
    registry instrument (a flush is an I/O, the clock read drowns).
    :meth:`bind` re-registers the gauges on a fresh registry — used when
    a surviving log manager is adopted by a new :class:`Database` after
    a crash — and since the totals live *here*, cumulative history is
    preserved for free (the latency histogram starts empty).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: mutated under the log mutex only
        self.appends = 0
        self.flushes = 0
        self.forced_records = 0
        self.group_commits = 0
        self._registry: MetricsRegistry | None = None
        self._bind(registry or MetricsRegistry())

    def _bind(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        registry.gauge("wal.appends", lambda: self.appends)
        registry.gauge("wal.flushes", lambda: self.flushes)
        registry.gauge("wal.forced_records", lambda: self.forced_records)
        registry.gauge("wal.group_commits", lambda: self.group_commits)
        self.flush_ns = registry.histogram("wal.flush_ns")

    def bind(self, registry: MetricsRegistry) -> None:
        """Re-register on ``registry``; totals carry over unchanged."""
        if registry is self._registry:
            return
        self._bind(registry)

    def note_append(self) -> None:
        """Count one appended record (log mutex held)."""
        self.appends += 1

    def note_flush(self) -> None:
        """Count one physical log force (log mutex held)."""
        self.flushes += 1

    def note_forced_record(self) -> None:
        """Count one individually forced record (log mutex held)."""
        self.forced_records += 1

    def note_group_commit(self) -> None:
        """Count one flush request absorbed by group commit (log mutex
        held)."""
        self.group_commits += 1

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        return {
            "appends": self.appends,
            "flushes": self.flushes,
            "forced_records": self.forced_records,
            "group_commits": self.group_commits,
        }


class LogManager:
    """Append-only WAL with per-transaction backchains and NTAs."""

    def __init__(
        self,
        flush_delay: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        #: simulated latency of a log force (seconds); concurrent forces
        #: are coalesced (group commit), see :meth:`flush`
        self.flush_delay = flush_delay
        self.stats = LogStats(metrics)
        #: span tracker (Database(op_tracing=True)); the database
        #: assembly (re)assigns this on every build, so a restart with
        #: tracing toggled never keeps a stale tracker.  ``None`` keeps
        #: append/flush span-free.
        self.tracker = None
        self._mutex = threading.Lock()
        self._records: list[LogRecord] = []
        self._flushed_lsn = NULL_LSN
        #: True while one thread is performing the physical log force
        self._force_in_flight = False
        #: highest LSN requested by the group waiting for the next force
        self._pending_cover = NULL_LSN
        self._flush_done = threading.Condition(self._mutex)
        self._last_lsn_of: dict[int, int] = {}
        #: durable pointer to the most recent complete checkpoint
        self.master_lsn = NULL_LSN
        self._flush_stall: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # append / read
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> int:
        """Assign an LSN, backchain the record, checksum it, append it."""
        with self._mutex:
            lsn = len(self._records) + 1
            record.lsn = lsn
            record.prev_lsn = self._last_lsn_of.get(record.xid, NULL_LSN)
            record.stamp_checksum()
            self._records.append(record)
            self._last_lsn_of[record.xid] = lsn
            self.stats.note_append()
        if self.tracker is not None:
            self.tracker.note_wal_append()
        return lsn

    def get(self, lsn: int) -> LogRecord:
        """The record at ``lsn`` (raises for out-of-range LSNs)."""
        with self._mutex:
            if not 1 <= lsn <= len(self._records):
                raise WALError(f"no log record with lsn {lsn}")
            return self._records[lsn - 1]

    def records_from(
        self, lsn: int = 1, batch: int = 256
    ) -> Iterator[LogRecord]:
        """Iterate records in LSN order starting at ``lsn``.

        The log mutex is taken once per ``batch`` records instead of
        once per record, which is what restart recovery's full-log scan
        pays.  Records appended *while* iterating are still observed:
        a batch only ever contains records that already existed when it
        was grabbed, so anything newer has a higher LSN and is picked up
        by a later batch.
        """
        index = max(lsn, 1) - 1
        batch = max(batch, 1)
        while True:
            with self._mutex:
                chunk = self._records[index : index + batch]
            if not chunk:
                return
            yield from chunk
            index += len(chunk)

    @property
    def end_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        with self._mutex:
            return len(self._records)

    def last_lsn_of(self, xid: int) -> int:
        """Head of the transaction's backchain (0 if it never logged)."""
        with self._mutex:
            return self._last_lsn_of.get(xid, NULL_LSN)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def flush(self, lsn: int | None = None) -> None:
        """Force the log to disk up to ``lsn`` (default: everything).

        Group commit: when a force is already in flight that will cover
        this request's LSN, the caller waits for it instead of issuing
        its own I/O — N concurrent committers share one force.
        """
        tracker = self.tracker
        if tracker is None:
            self._flush(lsn)
            return
        # With op tracing on, the whole flush — leading, riding along
        # or finding the LSN already durable — is the operation's WAL
        # wait and is attributed to its span.
        t0 = perf_counter_ns()
        try:
            self._flush(lsn)
        finally:
            tracker.add_wal(perf_counter_ns() - t0)

    def _flush(self, lsn: int | None = None) -> None:
        rode_along = False
        with self._mutex:
            target = len(self._records) if lsn is None else min(
                lsn, len(self._records)
            )
            self._pending_cover = max(self._pending_cover, target)
            while True:
                if target <= self._flushed_lsn:
                    if rode_along:
                        self.stats.note_group_commit()
                    return
                if not self._force_in_flight:
                    break  # become the leader of the next group
                rode_along = True
                self._flush_done.wait(0.5)
            # Leader: one force covers every request gathered so far
            # (the group); later arrivals re-register for the next one.
            self._force_in_flight = True
            cover = self._pending_cover
            self._pending_cover = NULL_LSN
        t0 = perf_counter_ns()
        try:
            if self.flush_delay > 0.0:
                threading.Event().wait(self.flush_delay)
        finally:
            with self._mutex:
                self._flushed_lsn = max(self._flushed_lsn, cover)
                self.stats.note_flush()
                self.stats.flush_ns.record(perf_counter_ns() - t0)
                if rode_along:
                    self.stats.note_group_commit()
                self._force_in_flight = False
                self._flush_done.notify_all()

    @property
    def flushed_lsn(self) -> int:
        """The durability boundary: records at or below survive a crash."""
        with self._mutex:
            return self._flushed_lsn

    def clone_prefix(self, length: int) -> "LogManager":
        """A new, independent log containing the first ``length`` records
        (all marked durable).

        Recovery-testing utility: restart can be exercised against
        *every* possible crash point of a recorded history by cloning
        each prefix ("the disk survived exactly this much of the log").
        Records are deep-copied so redo/undo against the clone can never
        disturb the original.
        """
        import copy

        clone = LogManager(flush_delay=self.flush_delay)
        with self._mutex:
            prefix = copy.deepcopy(self._records[:length])
        clone._records = prefix
        clone._flushed_lsn = len(prefix)
        return clone

    def crash(self) -> None:
        """Discard the unflushed tail, as a power failure would."""
        with self._mutex:
            del self._records[self._flushed_lsn :]
            self._last_lsn_of.clear()
            # The backchain heads are rebuilt by restart analysis; runtime
            # append after a crash only happens via recovery, which
            # repopulates them through set_last_lsn().

    # ------------------------------------------------------------------
    # fault injection & self-healing (DESIGN.md §9)
    # ------------------------------------------------------------------
    def torn_tail_loss(self, count: int, floor: int = 0) -> int:
        """Crash-time fault: drop up to ``count`` records off the tail.

        Models a torn final log write whose sectors never hit the
        platter even though the flush was acknowledged.  Never reaches
        at or below ``floor`` (the highest LSN any persisted page or
        checkpoint pointer depends on — those records were durably
        written *before* the dependent state, so a torn last write
        cannot have affected them).  Returns how many records were
        actually dropped.
        """
        with self._mutex:
            keep = max(floor, len(self._records) - max(count, 0))
            dropped = len(self._records) - keep
            if dropped <= 0:
                return 0
            del self._records[keep:]
            self._flushed_lsn = min(self._flushed_lsn, keep)
            if self.master_lsn > keep:
                self.master_lsn = NULL_LSN
            return dropped

    def corrupt_tail_record(self, back: int, floor: int = 0) -> int | None:
        """Crash-time fault: flip the checksum of a tail record.

        ``back`` indexes from the end (0 = last record).  Returns the
        corrupted record's LSN, or ``None`` when the target would fall
        at or below ``floor`` (see :meth:`torn_tail_loss`) or the log is
        too short.  The record stays in the log — detection is restart
        recovery's job (:meth:`verify_and_truncate`).
        """
        with self._mutex:
            idx = len(self._records) - 1 - max(back, 0)
            if idx < 0 or idx + 1 <= floor:
                return None
            record = self._records[idx]
            record.checksum = (record.checksum or 0) ^ 0x5A5A5A5A
            return record.lsn

    def verify_and_truncate(self) -> tuple[int, int]:
        """Truncate the log at the first record that fails its checksum.

        Returns ``(valid_end_lsn, dropped)``.  Restart recovery calls
        this before analysis: everything from the first bad record on is
        an unrecoverable torn tail and is discarded, and recovery
        replays the valid prefix — the ARIES treatment of a torn log
        write.  A clean log returns ``(end_lsn, 0)`` without modifying
        anything.
        """
        with self._mutex:
            bad_index: int | None = None
            for i, record in enumerate(self._records):
                if not record.verify_checksum():
                    bad_index = i
                    break
            if bad_index is None:
                return len(self._records), 0
            dropped = len(self._records) - bad_index
            del self._records[bad_index:]
            self._flushed_lsn = min(self._flushed_lsn, bad_index)
            if self.master_lsn > bad_index:
                self.master_lsn = NULL_LSN
            return bad_index, dropped

    def set_last_lsn(self, xid: int, lsn: int) -> None:
        """Restore a transaction's backchain head (restart analysis)."""
        with self._mutex:
            self._last_lsn_of[xid] = lsn

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home the ``wal.*`` counters onto ``registry``.

        Called when a log manager that survived a crash is adopted by a
        fresh :class:`~repro.database.Database`; counter totals carry
        over so the WAL history stays cumulative across restarts.
        """
        self.stats.bind(registry)

    # ------------------------------------------------------------------
    # nested top actions (section 9.1)
    # ------------------------------------------------------------------
    def begin_nta(self, xid: int) -> int:
        """Start an atomic action: memorize the rollback re-entry point."""
        with self._mutex:
            return self._last_lsn_of.get(xid, NULL_LSN)

    def end_nta(self, xid: int, saved_lsn: int) -> int:
        """Commit an atomic action with a dummy CLR skipping over it."""
        record = DummyClr(xid=xid)
        record.undo_next = saved_lsn
        lsn = self.append(record)
        # Atomic actions are individually committed: force them so an
        # SMO whose pages reached disk can never lose its log suffix.
        self.flush(lsn)
        with self._mutex:
            self.stats.note_forced_record()
        return lsn
