"""The log manager.

An append-only, in-memory write-ahead log with an explicit durability
boundary: records with ``lsn <= flushed_lsn`` survive a crash, the rest
are lost (:meth:`LogManager.crash` truncates to the boundary).  LSNs are
monotonically increasing integers starting at 1, which also makes them a
valid NSN source (the section 10.1 optimization).

The manager keeps the per-transaction backchain (``prev_lsn``) and
implements **nested top actions**: :meth:`begin_nta` memorizes the
transaction's current last LSN and :meth:`end_nta` writes a
:class:`~repro.wal.records.DummyClr` whose ``undo_next`` points back to
it, so a later rollback of the transaction skips the whole structure
modification (section 9.1).
"""

from __future__ import annotations

import threading
from time import perf_counter_ns
from typing import Callable, Iterator, Sequence

from repro.errors import WALError
from repro.obs.metrics import MetricsRegistry
from repro.wal.records import (
    NULL_LSN,
    DummyClr,
    LogRecord,
)

#: adaptive group-commit linger = this many arrival-gap EMAs; a window
#: that long gathers a handful of near-simultaneous committers without
#: stalling a steady stream
_ADAPTIVE_GAPS = 4
#: floor for the adaptive window's usefulness cap when the simulated
#: force itself is free (seconds) — lingering longer than a force takes
#: can never pay for itself
_ADAPTIVE_CAP_FLOOR = 0.002


class LogStats:
    """Counters the benchmarks read off the log manager.

    The ints are only ever mutated while the log mutex is held, so plain
    ``+=`` is exact; a registry reads them through ``wal.*`` gauges
    evaluated at snapshot time, making an append cost zero registry
    calls on the hot path.  The flush-latency histogram stays a live
    registry instrument (a flush is an I/O, the clock read drowns).
    :meth:`bind` re-registers the gauges on a fresh registry — used when
    a surviving log manager is adopted by a new :class:`Database` after
    a crash — and since the totals live *here*, cumulative history is
    preserved for free (the latency histogram starts empty).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: mutated under the log mutex only
        self.appends = 0
        self.flushes = 0
        self.forced_records = 0
        self.group_commits = 0
        #: forces issued by the dedicated writer thread
        self.writer_batches = 0
        #: flush requests the writer absorbed into another force
        self.writer_coalesced = 0
        #: most committers one writer force ever covered
        self.writer_max_batch = 0
        #: last linger window the writer chose (ns; 0 = force now)
        self.writer_window_ns = 0
        self._registry: MetricsRegistry | None = None
        self._bind(registry or MetricsRegistry())

    def _bind(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        registry.gauge("wal.appends", lambda: self.appends)
        registry.gauge("wal.flushes", lambda: self.flushes)
        registry.gauge("wal.forced_records", lambda: self.forced_records)
        registry.gauge("wal.group_commits", lambda: self.group_commits)
        registry.gauge("wal.writer.batches", lambda: self.writer_batches)
        registry.gauge("wal.writer.coalesced", lambda: self.writer_coalesced)
        registry.gauge("wal.writer.max_batch", lambda: self.writer_max_batch)
        registry.gauge("wal.writer.window_ns", lambda: self.writer_window_ns)
        self.flush_ns = registry.histogram("wal.flush_ns")

    def bind(self, registry: MetricsRegistry) -> None:
        """Re-register on ``registry``; totals carry over unchanged."""
        if registry is self._registry:
            return
        self._bind(registry)

    def note_append(self) -> None:
        """Count one appended record (log mutex held)."""
        self.appends += 1

    def note_flush(self) -> None:
        """Count one physical log force (log mutex held)."""
        self.flushes += 1

    def note_forced_record(self) -> None:
        """Count one individually forced record (log mutex held)."""
        self.forced_records += 1

    def note_group_commit(self) -> None:
        """Count one flush request absorbed by group commit (log mutex
        held)."""
        self.group_commits += 1

    def note_writer_batch(self, waiters: int) -> None:
        """Count one writer force that covered ``waiters`` parked
        committers (log mutex held).

        Every waiter beyond the first rode along instead of paying its
        own force, so they also count as group commits — keeping
        ``wal.group_commits`` comparable across the inline and writer
        paths.
        """
        self.writer_batches += 1
        if waiters > 1:
            self.writer_coalesced += waiters - 1
            self.group_commits += waiters - 1
        if waiters > self.writer_max_batch:
            self.writer_max_batch = waiters

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        return {
            "appends": self.appends,
            "flushes": self.flushes,
            "forced_records": self.forced_records,
            "group_commits": self.group_commits,
            "writer_batches": self.writer_batches,
            "writer_coalesced": self.writer_coalesced,
            "writer_max_batch": self.writer_max_batch,
        }


class LogManager:
    """Append-only WAL with per-transaction backchains and NTAs."""

    def __init__(
        self,
        flush_delay: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        #: simulated latency of a log force (seconds); concurrent forces
        #: are coalesced (group commit), see :meth:`flush`
        self.flush_delay = flush_delay
        #: group-commit linger window (seconds) for the dedicated writer
        #: thread: ``None`` adapts to the observed arrival rate, ``0.0``
        #: forces as soon as the queue is non-empty, a positive value is
        #: a fixed window.  Ignored while no writer runs.
        self.group_commit_window: float | None = None
        self.stats = LogStats(metrics)
        #: span tracker (Database(op_tracing=True)); the database
        #: assembly (re)assigns this on every build, so a restart with
        #: tracing toggled never keeps a stale tracker.  ``None`` keeps
        #: append/flush span-free.
        self.tracker = None
        self._mutex = threading.Lock()
        self._records: list[LogRecord] = []
        self._flushed_lsn = NULL_LSN
        #: True while one thread is performing the physical log force
        self._force_in_flight = False
        #: highest LSN requested by the group waiting for the next force
        self._pending_cover = NULL_LSN
        self._flush_done = threading.Condition(self._mutex)
        self._last_lsn_of: dict[int, int] = {}
        #: durable pointer to the most recent complete checkpoint
        self.master_lsn = NULL_LSN
        self._flush_stall: Callable[[], None] | None = None
        # --- dedicated WAL writer thread (group-commit pipeline) ---
        self._writer_thread: threading.Thread | None = None
        self._writer_cv = threading.Condition(self._mutex)
        self._writer_stop = False
        self._writer_abort = False
        #: committers currently parked on the writer
        self._flush_waiters = 0
        #: EMA of the gap between successive flush requests (ns); the
        #: adaptive window is derived from it
        self._arrival_ema_ns: int | None = None
        self._last_arrival_ns: int | None = None

    # ------------------------------------------------------------------
    # append / read
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> int:
        """Assign an LSN, backchain the record, checksum it, append it."""
        with self._mutex:
            lsn = len(self._records) + 1
            record.lsn = lsn
            record.prev_lsn = self._last_lsn_of.get(record.xid, NULL_LSN)
            record.stamp_checksum()
            self._records.append(record)
            self._last_lsn_of[record.xid] = lsn
            self.stats.note_append()
        if self.tracker is not None:
            self.tracker.note_wal_append()
        return lsn

    def append_many(self, records: Sequence[LogRecord]) -> list[int]:
        """Append a batch of records under one mutex acquisition.

        The batched emission path for multi-record operations
        (``multi_put`` leaf runs, bulk-load fills): per-transaction
        backchains, checksums and stats come out exactly as ``N``
        :meth:`append` calls would produce, but the log mutex is taken
        once for the whole batch.  Returns the assigned LSNs in order.
        """
        if not records:
            return []
        lsns: list[int] = []
        with self._mutex:
            for record in records:
                lsn = len(self._records) + 1
                record.lsn = lsn
                record.prev_lsn = self._last_lsn_of.get(
                    record.xid, NULL_LSN
                )
                record.stamp_checksum()
                self._records.append(record)
                self._last_lsn_of[record.xid] = lsn
                self.stats.note_append()
                lsns.append(lsn)
        if self.tracker is not None:
            for _ in lsns:
                self.tracker.note_wal_append()
        return lsns

    def get(self, lsn: int) -> LogRecord:
        """The record at ``lsn`` (raises for out-of-range LSNs)."""
        with self._mutex:
            if not 1 <= lsn <= len(self._records):
                raise WALError(f"no log record with lsn {lsn}")
            return self._records[lsn - 1]

    def records_from(
        self, lsn: int = 1, batch: int = 256
    ) -> Iterator[LogRecord]:
        """Iterate records in LSN order starting at ``lsn``.

        The log mutex is taken once per ``batch`` records instead of
        once per record, which is what restart recovery's full-log scan
        pays.  Records appended *while* iterating are still observed:
        a batch only ever contains records that already existed when it
        was grabbed, so anything newer has a higher LSN and is picked up
        by a later batch.
        """
        index = max(lsn, 1) - 1
        batch = max(batch, 1)
        while True:
            with self._mutex:
                chunk = self._records[index : index + batch]
            if not chunk:
                return
            yield from chunk
            index += len(chunk)

    @property
    def end_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        with self._mutex:
            return len(self._records)

    def last_lsn_of(self, xid: int) -> int:
        """Head of the transaction's backchain (0 if it never logged)."""
        with self._mutex:
            return self._last_lsn_of.get(xid, NULL_LSN)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def flush(self, lsn: int | None = None) -> None:
        """Force the log to disk up to ``lsn`` (default: everything).

        Group commit: when a force is already in flight that will cover
        this request's LSN, the caller waits for it instead of issuing
        its own I/O — N concurrent committers share one force.
        """
        tracker = self.tracker
        if tracker is None:
            self._flush(lsn)
            return
        # With op tracing on, the whole flush — leading, riding along
        # or finding the LSN already durable — is the operation's WAL
        # wait and is attributed to its span.
        t0 = perf_counter_ns()
        try:
            self._flush(lsn)
        finally:
            tracker.add_wal(perf_counter_ns() - t0)

    def _flush(self, lsn: int | None = None) -> None:
        rode_along = False
        with self._mutex:
            target = len(self._records) if lsn is None else min(
                lsn, len(self._records)
            )
            if target <= self._flushed_lsn:
                return
            if self._writer_thread is not None and not self._writer_stop:
                if self._wait_for_writer(target):
                    return
                # The writer shut down mid-wait (crash/stop): fall
                # through and force inline like a writerless log.
            self._pending_cover = max(self._pending_cover, target)
            while True:
                if target <= self._flushed_lsn:
                    if rode_along:
                        self.stats.note_group_commit()
                    return
                if not self._force_in_flight:
                    break  # become the leader of the next group
                rode_along = True
                # Woken exactly once per completed force — the leader's
                # finally-block always notifies under the mutex, so no
                # timeout/poll is needed here.
                self._flush_done.wait()
            # Leader: one force covers every request gathered so far
            # (the group); later arrivals re-register for the next one.
            self._force_in_flight = True
            cover = self._pending_cover
            self._pending_cover = NULL_LSN
        t0 = perf_counter_ns()
        try:
            if self.flush_delay > 0.0:
                threading.Event().wait(self.flush_delay)
        finally:
            with self._mutex:
                # clamp: a crash() racing the force may have truncated
                # the log below the cover this force was issued for
                cover = min(cover, len(self._records))
                self._flushed_lsn = max(self._flushed_lsn, cover)
                self.stats.note_flush()
                self.stats.flush_ns.record(perf_counter_ns() - t0)
                if rode_along:
                    self.stats.note_group_commit()
                self._force_in_flight = False
                self._flush_done.notify_all()

    # ------------------------------------------------------------------
    # dedicated WAL writer thread (group-commit pipeline)
    # ------------------------------------------------------------------
    @property
    def wal_writer_active(self) -> bool:
        """Whether the dedicated writer thread is running."""
        with self._mutex:
            return (
                self._writer_thread is not None and not self._writer_stop
            )

    def start_wal_writer(self) -> None:
        """Start the dedicated writer thread (idempotent).

        While the writer runs, :meth:`flush` callers never force the
        log themselves: they enqueue their target LSN, wake the writer
        and park on the flush condition until a covering force
        completes.  The writer coalesces whatever accumulated while the
        previous force was in flight, lingering up to the adaptive
        group-commit window for stragglers (:attr:`group_commit_window`).
        """
        with self._mutex:
            if self._writer_thread is not None:
                return
            self._writer_stop = False
            self._writer_abort = False
            thread = threading.Thread(
                target=self._writer_loop, name="wal-writer", daemon=True
            )
            self._writer_thread = thread
        thread.start()

    def stop_wal_writer(self, *, drain: bool = True) -> None:
        """Stop the writer thread (idempotent, no-op without one).

        ``drain=True`` (shutdown) lets the writer issue one final force
        covering everything pending before it exits; ``drain=False``
        (crash) abandons pending requests — parked committers wake and
        fall back to the inline path, mirroring in-flight commits dying
        with the process.
        """
        with self._mutex:
            thread = self._writer_thread
            if thread is None:
                return
            self._writer_stop = True
            self._writer_abort = not drain
            self._writer_cv.notify_all()
            self._flush_done.notify_all()
        thread.join()
        with self._mutex:
            self._writer_thread = None
            self._writer_stop = False
            self._writer_abort = False

    def _wait_for_writer(self, target: int) -> bool:
        """Park on the writer until ``target`` is durable (mutex held).

        Feeds the arrival-rate EMA the adaptive window is derived from,
        registers the request, wakes the writer and waits — notified
        once per completed force, never polled.  Returns ``False`` when
        the writer shut down before covering the request; the caller
        then forces inline.
        """
        now = perf_counter_ns()
        last = self._last_arrival_ns
        self._last_arrival_ns = now
        if last is not None:
            gap = max(now - last, 0)
            ema = self._arrival_ema_ns
            self._arrival_ema_ns = gap if ema is None else (ema + gap) // 2
        self._pending_cover = max(self._pending_cover, target)
        self._flush_waiters += 1
        self._writer_cv.notify()
        try:
            while target > self._flushed_lsn:
                if self._writer_thread is None or self._writer_stop:
                    return False
                self._flush_done.wait()
            return True
        finally:
            self._flush_waiters -= 1

    def _current_window_ns(self) -> int:
        """Linger window for the writer's next force, in nanoseconds.

        A fixed :attr:`group_commit_window` is used as-is.  The adaptive
        default lingers ~:data:`_ADAPTIVE_GAPS` arrival-gap EMAs — long
        enough to gather a burst of near-simultaneous committers — but
        returns 0 when that would exceed the cost of the force itself
        (sparse traffic: waiting would only add latency for a lone
        committer, never save a force).
        """
        if self.group_commit_window is not None:
            return max(0, int(self.group_commit_window * 1e9))
        ema = self._arrival_ema_ns
        if ema is None:
            return 0
        cap_ns = int(max(self.flush_delay, _ADAPTIVE_CAP_FLOOR) * 1e9)
        window = _ADAPTIVE_GAPS * ema
        return window if window < cap_ns else 0

    def _writer_loop(self) -> None:
        while True:
            with self._mutex:
                while (
                    not self._writer_stop
                    and self._pending_cover <= self._flushed_lsn
                ):
                    self._writer_cv.wait()
                if self._writer_stop and (
                    self._writer_abort
                    or self._pending_cover <= self._flushed_lsn
                ):
                    # Wake parked committers so they can fall back to
                    # the inline path (or observe durability).
                    self._flush_done.notify_all()
                    return
                window_ns = self._current_window_ns()
                self.stats.writer_window_ns = window_ns
                if window_ns > 0:
                    deadline = perf_counter_ns() + window_ns
                    while not self._writer_stop:
                        before = self._pending_cover
                        remaining = deadline - perf_counter_ns()
                        if remaining <= 0:
                            break  # window closed
                        self._writer_cv.wait(remaining / 1e9)
                        if self._pending_cover == before:
                            break  # queue drained: no new arrivals
                # An inline force can only be in flight across a
                # start/stop race; wait it out rather than double-force.
                while self._force_in_flight:
                    self._flush_done.wait()
                cover = self._pending_cover
                if cover <= self._flushed_lsn:
                    continue
                waiters = max(1, self._flush_waiters)
                self._pending_cover = NULL_LSN
                self._force_in_flight = True
            t0 = perf_counter_ns()
            try:
                if self.flush_delay > 0.0:
                    threading.Event().wait(self.flush_delay)
            finally:
                with self._mutex:
                    cover = min(cover, len(self._records))
                    self._flushed_lsn = max(self._flushed_lsn, cover)
                    self.stats.note_flush()
                    self.stats.flush_ns.record(perf_counter_ns() - t0)
                    self.stats.note_writer_batch(waiters)
                    self._force_in_flight = False
                    self._flush_done.notify_all()

    @property
    def flushed_lsn(self) -> int:
        """The durability boundary: records at or below survive a crash."""
        with self._mutex:
            return self._flushed_lsn

    def clone_prefix(self, length: int) -> "LogManager":
        """A new, independent log containing the first ``length`` records
        (all marked durable).

        Recovery-testing utility: restart can be exercised against
        *every* possible crash point of a recorded history by cloning
        each prefix ("the disk survived exactly this much of the log").
        Records are deep-copied so redo/undo against the clone can never
        disturb the original.
        """
        import copy

        clone = LogManager(flush_delay=self.flush_delay)
        with self._mutex:
            prefix = copy.deepcopy(self._records[:length])
        clone._records = prefix
        clone._flushed_lsn = len(prefix)
        return clone

    def crash(self) -> None:
        """Discard the unflushed tail, as a power failure would."""
        with self._mutex:
            del self._records[self._flushed_lsn :]
            self._last_lsn_of.clear()
            # The backchain heads are rebuilt by restart analysis; runtime
            # append after a crash only happens via recovery, which
            # repopulates them through set_last_lsn().

    # ------------------------------------------------------------------
    # fault injection & self-healing (DESIGN.md §9)
    # ------------------------------------------------------------------
    def torn_tail_loss(self, count: int, floor: int = 0) -> int:
        """Crash-time fault: drop up to ``count`` records off the tail.

        Models a torn final log write whose sectors never hit the
        platter even though the flush was acknowledged.  Never reaches
        at or below ``floor`` (the highest LSN any persisted page or
        checkpoint pointer depends on — those records were durably
        written *before* the dependent state, so a torn last write
        cannot have affected them).  Returns how many records were
        actually dropped.
        """
        with self._mutex:
            keep = max(floor, len(self._records) - max(count, 0))
            dropped = len(self._records) - keep
            if dropped <= 0:
                return 0
            del self._records[keep:]
            self._flushed_lsn = min(self._flushed_lsn, keep)
            if self.master_lsn > keep:
                self.master_lsn = NULL_LSN
            return dropped

    def corrupt_tail_record(self, back: int, floor: int = 0) -> int | None:
        """Crash-time fault: flip the checksum of a tail record.

        ``back`` indexes from the end (0 = last record).  Returns the
        corrupted record's LSN, or ``None`` when the target would fall
        at or below ``floor`` (see :meth:`torn_tail_loss`) or the log is
        too short.  The record stays in the log — detection is restart
        recovery's job (:meth:`verify_and_truncate`).
        """
        with self._mutex:
            idx = len(self._records) - 1 - max(back, 0)
            if idx < 0 or idx + 1 <= floor:
                return None
            record = self._records[idx]
            record.checksum = (record.checksum or 0) ^ 0x5A5A5A5A
            return record.lsn

    def verify_and_truncate(self) -> tuple[int, int]:
        """Truncate the log at the first record that fails its checksum.

        Returns ``(valid_end_lsn, dropped)``.  Restart recovery calls
        this before analysis: everything from the first bad record on is
        an unrecoverable torn tail and is discarded, and recovery
        replays the valid prefix — the ARIES treatment of a torn log
        write.  A clean log returns ``(end_lsn, 0)`` without modifying
        anything.
        """
        with self._mutex:
            bad_index: int | None = None
            for i, record in enumerate(self._records):
                if not record.verify_checksum():
                    bad_index = i
                    break
            if bad_index is None:
                return len(self._records), 0
            dropped = len(self._records) - bad_index
            del self._records[bad_index:]
            self._flushed_lsn = min(self._flushed_lsn, bad_index)
            if self.master_lsn > bad_index:
                self.master_lsn = NULL_LSN
            return bad_index, dropped

    def set_last_lsn(self, xid: int, lsn: int) -> None:
        """Restore a transaction's backchain head (restart analysis)."""
        with self._mutex:
            self._last_lsn_of[xid] = lsn

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home the ``wal.*`` counters onto ``registry``.

        Called when a log manager that survived a crash is adopted by a
        fresh :class:`~repro.database.Database`; counter totals carry
        over so the WAL history stays cumulative across restarts.
        """
        self.stats.bind(registry)

    # ------------------------------------------------------------------
    # nested top actions (section 9.1)
    # ------------------------------------------------------------------
    def begin_nta(self, xid: int) -> int:
        """Start an atomic action: memorize the rollback re-entry point."""
        with self._mutex:
            return self._last_lsn_of.get(xid, NULL_LSN)

    def end_nta(self, xid: int, saved_lsn: int) -> int:
        """Commit an atomic action with a dummy CLR skipping over it."""
        record = DummyClr(xid=xid)
        record.undo_next = saved_lsn
        lsn = self.append(record)
        # Atomic actions are individually committed: force them so an
        # SMO whose pages reached disk can never lose its log suffix.
        self.flush(lsn)
        with self._mutex:
            self.stats.note_forced_record()
        return lsn
