"""Log record types — the executable form of the paper's Table 1.

Every structure-modification and content-change record from Table 1 is a
dataclass here, with its **redo** action (``redo_page``, page-oriented)
and its **undo** classification:

* *redo-only* records (Parent-Entry-Update, Garbage-Collection, every
  compensation record) have no undo,
* physically undoable records (Split, Internal-Entry-Add/Update/Delete,
  Get-Page, Free-Page) undo by visiting exactly the logged pages,
* leaf content records (Add-Leaf-Entry, Mark-Leaf-Entry) undo
  **logically** — the leaf must be re-located by rightlink traversal
  because the tree may have changed since (section 9.2).  Their undo is
  therefore performed by the tree, not here; recovery dispatches to the
  registered tree handler.

Compensation is expressed the ARIES way: the undo of a record writes a
*redo-only* record describing the compensating page change, carrying
``undo_next`` pointing at the predecessor of the record just undone.  Any
record with ``undo_next`` set behaves as a CLR: restart undo never undoes
it and resumes at ``undo_next``.  Nested-top-action commit is the
``DummyClr`` (§9.1 / [MHL+92]): its ``undo_next`` backchains around the
whole atomic action, which is how structure modifications survive the
rollback of the transaction that happened to execute them.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Sequence

from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageId,
    PageKind,
    page_fingerprint,
)

#: Sentinel LSN meaning "no record".
NULL_LSN = 0


def record_fingerprint(record: "LogRecord") -> bytes:
    """Canonical byte encoding of a record's full content.

    This stands in for the serialized form a real WAL would write to
    disk.  Page images embedded in records are folded in through
    :func:`~repro.storage.page.page_fingerprint`; every other payload
    value goes in via ``repr`` (dataclass entries included).
    """
    parts = [type(record).__name__]
    for f in dataclass_fields(record):
        if f.name in ("checksum", "_fingerprint"):
            continue
        value = getattr(record, f.name)
        if isinstance(value, Page):
            parts.append(f"{f.name}=page:{page_fingerprint(value).decode()}")
        else:
            parts.append(f"{f.name}={value!r}")
    return "|".join(parts).encode("utf-8", "backslashreplace")


def record_checksum(record: "LogRecord") -> int:
    """CRC32 over a record's content as of *now* (header + payload).

    The log manager stamps each record at append time via
    :meth:`LogRecord.stamp_checksum`, which also captures the
    fingerprint bytes — modelling serialization: once a real WAL record
    hits disk, later in-memory mutation of objects it referenced (live
    entries, pages) cannot change the persisted bytes.  Restart
    recovery's truncation pass re-verifies checksums against those
    captured bytes; a mismatch marks the start of a corrupt log tail.
    """
    return zlib.crc32(record_fingerprint(record))


@dataclass
class LogRecord:
    """Common header of every log record.

    ``lsn`` and ``prev_lsn`` are assigned by the log manager at append
    time; ``prev_lsn`` backchains the records of one transaction.
    ``undo_next`` is only set on compensation records.
    """

    xid: int
    lsn: int = field(default=NULL_LSN, init=False)
    prev_lsn: int = field(default=NULL_LSN, init=False)
    undo_next: int | None = field(default=None, init=False)
    #: CRC32 over the record content, stamped by the log manager at
    #: append time (``None`` for records never appended).
    checksum: int | None = field(default=None, init=False, repr=False)
    #: fingerprint bytes captured at append time — the stand-in for the
    #: record's serialized on-disk form (see :func:`record_checksum`)
    _fingerprint: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    #: class-level flags refined by subclasses
    undoable: bool = field(default=False, init=False, repr=False)

    #: True when the record's undo is *logical* (performed by the tree via
    #: rightlink traversal, section 9.2) rather than page-oriented.  Plain
    #: class attribute, overridden in ``__post_init__`` by leaf records.
    logical_undo = False

    def affected_pages(self) -> Sequence[PageId]:
        """Page ids whose images this record's redo touches."""
        return ()

    def redo_page(self, page: Page) -> None:
        """Apply this record's effect to one of its affected pages.

        The caller has already verified ``page.page_lsn < self.lsn`` and
        will stamp ``page.page_lsn = self.lsn`` afterwards.
        """

    @property
    def is_clr(self) -> bool:
        """True for compensation records (never undone)."""
        return self.undo_next is not None

    def stamp_checksum(self) -> None:
        """Capture the record's serialized form and checksum it.

        Called by the log manager at append time, after the header
        fields (lsn, prev_lsn) are assigned — the point where a real
        WAL would serialize the record to its disk buffer.
        """
        self._fingerprint = record_fingerprint(self)
        self.checksum = zlib.crc32(self._fingerprint)

    def verify_checksum(self) -> bool:
        """True when the stored checksum matches the appended content.

        Verification runs against the fingerprint bytes captured at
        append time (the simulated on-disk form), so mutation of live
        objects the record references after append — entries shared
        with resident pages — does not register as corruption, but an
        injected torn log write (checksum bit-flip) does.  Records that
        were never appended verify trivially — there is nothing
        persisted to contradict.
        """
        if self.checksum is None:
            return True
        if self._fingerprint is not None:
            return self.checksum == zlib.crc32(self._fingerprint)
        return self.checksum == record_checksum(self)

    def type_name(self) -> str:
        """The record's class name (diagnostics)."""
        return type(self).__name__


# ---------------------------------------------------------------------------
# transaction control records
# ---------------------------------------------------------------------------


@dataclass
class CommitRecord(LogRecord):
    """Transaction commit (forced to disk before commit is acknowledged)."""


@dataclass
class AbortRecord(LogRecord):
    """Transaction rollback has begun."""


@dataclass
class EndRecord(LogRecord):
    """Transaction fully finished (after commit or complete rollback)."""


@dataclass
class DummyClr(LogRecord):
    """End of a nested top action.

    ``undo_next`` is set (by the log manager at append) to the LSN that
    was the transaction's last record *before* the atomic action started,
    so rollback skips the whole structure modification.
    """


@dataclass
class CheckpointRecord(LogRecord):
    """A fuzzy checkpoint: active-transaction table + dirty page table."""

    att: dict[int, int] = field(default_factory=dict)  # xid -> last_lsn
    att_undo: dict[int, int] = field(default_factory=dict)  # xid -> undo_next
    dpt: dict[PageId, int] = field(default_factory=dict)  # pid -> recLSN


@dataclass
class TreeCreateRecord(LogRecord):
    """Catalog record: a tree was created with the given root page."""

    name: str = ""
    root_pid: PageId = NO_PAGE
    unique: bool = False
    nsn_source: str = "counter"

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.root_pid,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        page.kind = PageKind.LEAF
        page.level = 0
        page.nsn = 0
        page.rightlink = NO_PAGE
        page.entries = []
        page.bp = None


# ---------------------------------------------------------------------------
# Table 1: structure-modification records
# ---------------------------------------------------------------------------


@dataclass
class ParentEntryUpdateRecord(LogRecord):
    """Table 1 "Parent-Entry-Update" — redo-only.

    Fields per the paper: new BP, child page ID, parent page ID.  Redo
    updates the BP copy in the child and the corresponding slot in the
    parent.  Written as its own atomic action during the top-down BP
    update phase of an insertion (section 6).
    """

    new_bp: object = None
    child_pid: PageId = NO_PAGE
    parent_pid: PageId = NO_PAGE

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.child_pid, self.parent_pid)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if page.pid == self.child_pid:
            page.bp = copy.deepcopy(self.new_bp)
        if page.pid == self.parent_pid:
            entry = page.find_child_entry(self.child_pid)
            if entry is not None:
                entry.pred = copy.deepcopy(self.new_bp)


@dataclass
class SplitRecord(LogRecord):
    """Table 1 "Split".

    Fields per the paper: original page ID, new page ID, the list of keys
    moved to the new page (we store the full entries), and the metadata
    needed to redo/undo the NSN and rightlink juggling of section 3: the
    original page's old NSN/rightlink/BP (undo) and the new values
    (redo).  The new sibling receives the original's *old* NSN and
    rightlink.
    """

    orig_pid: PageId = NO_PAGE
    new_pid: PageId = NO_PAGE
    moved_entries: list = field(default_factory=list)
    level: int = 0
    kind: PageKind = PageKind.LEAF
    old_nsn: int = 0
    new_nsn: int = 0
    old_rightlink: PageId = NO_PAGE
    old_bp: object = None
    orig_new_bp: object = None
    new_page_bp: object = None
    capacity: int = 64

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.orig_pid, self.new_pid)

    def _moved_rids(self) -> set:
        return {e.rid for e in self.moved_entries}

    def _moved_children(self) -> set:
        return {e.child for e in self.moved_entries}

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if page.pid == self.orig_pid:
            if self.kind is PageKind.LEAF:
                moved = self._moved_rids()
                page.entries = [e for e in page.entries if e.rid not in moved]
            else:
                moved = self._moved_children()
                page.entries = [
                    e for e in page.entries if e.child not in moved
                ]
            page.nsn = self.new_nsn
            page.rightlink = self.new_pid
            page.bp = copy.deepcopy(self.orig_new_bp)
        if page.pid == self.new_pid:
            page.kind = self.kind
            page.level = self.level
            page.capacity = self.capacity
            page.entries = [e.copy() for e in self.moved_entries]
            page.nsn = self.old_nsn
            page.rightlink = self.old_rightlink
            page.bp = copy.deepcopy(self.new_page_bp)

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (only reachable when a crash interrupted
        the surrounding atomic action before its DummyClr)."""
        if page.pid == self.orig_pid:
            existing = (
                {e.rid for e in page.entries}
                if self.kind is PageKind.LEAF
                else {e.child for e in page.entries}
            )
            for entry in self.moved_entries:
                key = entry.rid if self.kind is PageKind.LEAF else entry.child
                if key not in existing:
                    page.entries.append(entry.copy())
            page.nsn = self.old_nsn
            page.rightlink = self.old_rightlink
            page.bp = copy.deepcopy(self.old_bp)
        # new page: no action necessary (Table 1); Get-Page undo frees it.


@dataclass
class RootSplitRecord(LogRecord):
    """Root split: the root page id is stable, its contents move down.

    The paper omits root splits "for brevity" (section 6); the standard
    construction — also used by PostgreSQL's GiST — keeps the root page
    id constant so there is no root-pointer race: the old root's entries
    move into two fresh children inside one atomic action while the root
    is X-latched.  Both children receive the root's *old* NSN (no
    traversal can ever have memorised a counter value below it after
    having read their downlinks) and are chained left-to-right.
    """

    root_pid: PageId = NO_PAGE
    left_pid: PageId = NO_PAGE
    right_pid: PageId = NO_PAGE
    left_entries: list = field(default_factory=list)
    right_entries: list = field(default_factory=list)
    left_bp: object = None
    right_bp: object = None
    child_kind: PageKind = PageKind.LEAF
    child_level: int = 0
    old_nsn: int = 0
    new_nsn: int = 0
    capacity: int = 64

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.root_pid, self.left_pid, self.right_pid)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if page.pid == self.root_pid:
            page.kind = PageKind.INTERNAL
            page.level = self.child_level + 1
            page.nsn = self.new_nsn
            page.rightlink = NO_PAGE
            page.entries = [
                InternalEntry(copy.deepcopy(self.left_bp), self.left_pid),
                InternalEntry(copy.deepcopy(self.right_bp), self.right_pid),
            ]
        elif page.pid in (self.left_pid, self.right_pid):
            is_left = page.pid == self.left_pid
            page.kind = self.child_kind
            page.level = self.child_level
            page.capacity = self.capacity
            page.nsn = self.old_nsn
            page.rightlink = self.right_pid if is_left else NO_PAGE
            page.bp = copy.deepcopy(self.left_bp if is_left else self.right_bp)
            source = self.left_entries if is_left else self.right_entries
            page.entries = [e.copy() for e in source]

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (reached only when a crash interrupted the surrounding atomic action)."""
        if page.pid == self.root_pid:
            page.kind = self.child_kind
            page.level = self.child_level
            page.nsn = self.old_nsn
            page.rightlink = NO_PAGE
            page.entries = [
                e.copy() for e in (*self.left_entries, *self.right_entries)
            ]
        # children: no action; their Get-Page undos free them.


@dataclass
class RightlinkUpdateRecord(LogRecord):
    """Rewrite a node's rightlink around a deleted sibling.

    Part of node deletion (section 7.2): once the drain condition holds
    (no signaling locks — hence no direct or indirect references), the
    left neighbour's rightlink is spliced past the victim before the
    victim is freed.  The paper leaves this step implicit; it is required
    for the level chain to stay intact.
    """

    page_id: PageId = NO_PAGE
    new_rightlink: PageId = NO_PAGE
    old_rightlink: PageId = NO_PAGE

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        page.rightlink = self.new_rightlink

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (reached only when a crash interrupted the surrounding atomic action)."""
        page.rightlink = self.old_rightlink


@dataclass
class GarbageCollectionRecord(LogRecord):
    """Table 1 "Garbage-Collection" — redo-only.

    Fields: page ID and the RID list of the entries physically removed
    (all of them logically deleted by committed transactions, §7.1).
    """

    page_id: PageId = NO_PAGE
    #: the collected entries as (key, rid) pairs — the full pair is the
    #: removal key so a live re-insert of the same RID under another key
    #: can never be swept with its old tombstone
    rids: list = field(default_factory=list)

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        page.remove_leaf_pairs(set(self.rids))


@dataclass
class InternalEntryAddRecord(LogRecord):
    """Table 1 "Internal-Entry-Add" (written during recursive split)."""

    page_id: PageId = NO_PAGE
    pred: object = None
    child: PageId = NO_PAGE

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if page.find_child_entry(self.child) is None:
            page.add_entry(InternalEntry(copy.deepcopy(self.pred), self.child))

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (reached only when a crash interrupted the surrounding atomic action)."""
        page.remove_child_entry(self.child)


@dataclass
class InternalEntryUpdateRecord(LogRecord):
    """Table 1 "Internal-Entry-Update" (written during recursive split)."""

    page_id: PageId = NO_PAGE
    child: PageId = NO_PAGE
    new_bp: object = None
    old_bp: object = None

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        entry = page.find_child_entry(self.child)
        if entry is not None:
            entry.pred = copy.deepcopy(self.new_bp)

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (reached only when a crash interrupted the surrounding atomic action)."""
        entry = page.find_child_entry(self.child)
        if entry is not None:
            entry.pred = copy.deepcopy(self.old_bp)


@dataclass
class InternalEntryDeleteRecord(LogRecord):
    """Table 1 "Internal-Entry-Delete" (written during node deletion)."""

    page_id: PageId = NO_PAGE
    pred: object = None
    child: PageId = NO_PAGE

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        page.remove_child_entry(self.child)

    def undo_page(self, page: Page) -> None:
        """Page-oriented undo (reached only when a crash interrupted the surrounding atomic action)."""
        if page.find_child_entry(self.child) is None:
            page.add_entry(InternalEntry(copy.deepcopy(self.pred), self.child))


@dataclass
class GetPageRecord(LogRecord):
    """Table 1 "Get-Page" — page allocation (during recursive split).

    Redo marks the page unavailable in the allocation map; undo marks it
    available again.  Handled by recovery against the page store rather
    than a page image.
    """

    page_id: PageId = NO_PAGE

    def __post_init__(self) -> None:
        self.undoable = True


@dataclass
class FreePageRecord(LogRecord):
    """Table 1 "Free-Page" — page deallocation (during node deletion)."""

    page_id: PageId = NO_PAGE

    def __post_init__(self) -> None:
        self.undoable = True


# ---------------------------------------------------------------------------
# Table 1: leaf content records (transactional, logical undo)
# ---------------------------------------------------------------------------


@dataclass
class AddLeafEntryRecord(LogRecord):
    """Table 1 "Add-Leaf-Entry".

    Fields: page ID, the page's NSN at insert time (the starting point
    for the logical-undo rightlink traversal), and the new entry.  The
    owning tree's name routes the *logical* undo to the right tree
    object at rollback/restart time.
    """

    tree: str = ""
    page_id: PageId = NO_PAGE
    nsn: int = 0
    key: object = None
    rid: object = None

    def __post_init__(self) -> None:
        self.undoable = True
        self.logical_undo = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if page.find_leaf_entry(self.key, self.rid) is None:
            page.add_entry(LeafEntry(copy.deepcopy(self.key), self.rid))


@dataclass
class MarkLeafEntryRecord(LogRecord):
    """Table 1 "Mark-Leaf-Entry" — logical deletion of a leaf entry."""

    tree: str = ""
    page_id: PageId = NO_PAGE
    nsn: int = 0
    key: object = None
    rid: object = None

    def __post_init__(self) -> None:
        self.undoable = True
        self.logical_undo = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        entry = page.find_leaf_entry(self.key, self.rid)
        if entry is not None:
            entry.deleted = True
            entry.delete_xid = self.xid


# ---------------------------------------------------------------------------
# compensation (redo-only) records written by logical undo
# ---------------------------------------------------------------------------


@dataclass
class RemoveLeafEntryClr(LogRecord):
    """CLR compensating Add-Leaf-Entry: physically remove the entry."""

    page_id: PageId = NO_PAGE
    key: object = None
    rid: object = None

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        page.entries = [
            e
            for e in page.entries
            if not (e.rid == self.rid and e.key == self.key)
        ]


@dataclass
class UnmarkLeafEntryClr(LogRecord):
    """CLR compensating Mark-Leaf-Entry: clear the deletion marker."""

    page_id: PageId = NO_PAGE
    key: object = None
    rid: object = None

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        entry = page.find_leaf_entry(self.key, self.rid)
        if entry is not None:
            entry.deleted = False
            entry.delete_xid = None


@dataclass
class PageImageClr(LogRecord):
    """CLR restoring a full page image (undo of an interrupted split)."""

    page_id: PageId = NO_PAGE
    image: Page | None = None

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        if self.image is None:
            return
        restored = self.image.snapshot()
        page.kind = restored.kind
        page.level = restored.level
        page.nsn = restored.nsn
        page.rightlink = restored.rightlink
        page.capacity = restored.capacity
        page.bp = restored.bp
        page.entries = restored.entries


@dataclass
class RootReplaceRecord(LogRecord):
    """Undoable full-image replacement of the (stable) root page.

    Written by :meth:`~repro.gist.tree.GiST.bulk_load`'s final attach
    step: the freshly built level structure becomes reachable by
    swapping the empty root leaf's image for an internal node pointing
    at the new top level.  Unlike :class:`PageImageClr` this record is
    *undoable*: if restart undo rolls back the surrounding nested top
    action after the attach hit disk, the page-oriented undo restores
    the old root image *before* the lower-LSN :class:`GetPageRecord`
    undos free the now-unreachable child pages — the root never points
    at a freed page.
    """

    page_id: PageId = NO_PAGE
    new_image: Page | None = None
    old_image: Page | None = None

    def __post_init__(self) -> None:
        self.undoable = True

    def affected_pages(self) -> Sequence[PageId]:
        """Pages whose images this record's redo touches."""
        return (self.page_id,)

    def redo_page(self, page: Page) -> None:
        """Apply this record's redo action to one affected page."""
        self._apply(page, self.new_image)

    def undo_page(self, page: Page) -> None:
        """Restore the pre-attach root image."""
        self._apply(page, self.old_image)

    @staticmethod
    def _apply(page: Page, image: Page | None) -> None:
        if image is None:
            return
        restored = image.snapshot()
        page.kind = restored.kind
        page.level = restored.level
        page.nsn = restored.nsn
        page.rightlink = restored.rightlink
        page.capacity = restored.capacity
        page.bp = restored.bp
        page.entries = restored.entries


#: Table 1 row order, used by the Table 1 reproduction matrix.
TABLE1_RECORD_TYPES: tuple[type[LogRecord], ...] = (
    ParentEntryUpdateRecord,
    SplitRecord,
    GarbageCollectionRecord,
    InternalEntryAddRecord,
    InternalEntryUpdateRecord,
    InternalEntryDeleteRecord,
    AddLeafEntryRecord,
    MarkLeafEntryRecord,
    GetPageRecord,
    FreePageRecord,
)
