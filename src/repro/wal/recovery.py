"""ARIES-style restart recovery (section 9).

Three passes over the surviving log:

* **Analysis** — rebuild the active-transaction table (losers), the
  dirty page table (redo start point), the tree catalog, the set of
  committed transactions (garbage collection consults it), and the
  maximum NSN ever issued (the global counter must be recoverable,
  section 10.1).  With a checkpoint on record, ATT/DPT scanning starts
  there; catalog and NSN metadata are collected from the whole log
  (cheap for an in-memory log, and equivalent to keeping them in the
  checkpoint).
* **Redo** — repeat history: every record (including compensation
  records) is re-applied to each affected page whose ``page_lsn`` is
  older, reconstructing page images that never reached disk.
* **Undo** — roll back loser transactions through the same undo
  executor used at runtime, with ``in_restart`` set: logical undo of
  leaf records re-locates leaves via rightlinks but performs **no
  structure modifications** (section 9.2); interrupted structure
  modifications (split records without their closing DummyClr) are
  undone page-oriented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING, Mapping

from repro.errors import RecoveryError, TornPageError
from repro.gist.extension import GiSTExtension
from repro.gist.tree import GiST
from repro.storage.page import Page, PageId, PageKind
from repro.wal.records import (
    AbortRecord,
    CheckpointRecord,
    CommitRecord,
    EndRecord,
    FreePageRecord,
    GetPageRecord,
    NULL_LSN,
    RootSplitRecord,
    SplitRecord,
    TreeCreateRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.database import Database
    from repro.storage.disk import PageStore
    from repro.wal.log import LogManager


def rebuild_page_from_log(
    log: "LogManager",
    store: "PageStore",
    pid: PageId,
    upto: int | None = None,
) -> Page | None:
    """Reconstruct a page image by replaying its full WAL history.

    Every change to a page is logged before the page can reach disk
    (the WAL rule), so replaying all records affecting ``pid`` from the
    start of the log — onto a fresh empty page — reproduces its latest
    logged image.  This is the self-healing path for a torn page whose
    WAL coverage allows full redo: the paper's page-LSN reasoning
    (Table 1, §9) run from LSN 1.

    ``upto`` bounds the replay (exclusive of higher LSNs); ``None``
    replays the whole log.  Returns ``None`` when no record affects the
    page — nothing to rebuild from, so the caller must surface the
    corruption instead.
    """
    page: Page | None = None
    for record in log.records_from(1):
        if upto is not None and record.lsn > upto:
            break
        if isinstance(record, (GetPageRecord, FreePageRecord)):
            continue
        if pid not in record.affected_pages():
            continue
        if page is None:
            page = Page(
                pid=pid, kind=PageKind.LEAF, capacity=store.page_capacity
            )
        record.redo_page(page)
        page.page_lsn = record.lsn
    return page


@dataclass
class RecoveryReport:
    """What restart recovery did (inspected by tests and benchmarks)."""

    analyzed_records: int = 0
    redo_start_lsn: int = 0
    redone_records: int = 0
    pages_rebuilt: int = 0
    losers: list[int] = field(default_factory=list)
    winners: list[int] = field(default_factory=list)
    undone_records: int = 0
    trees: list[str] = field(default_factory=list)
    max_nsn: int = 0
    #: LSN of the last log record that survived checksum verification
    #: (the durable prefix recovery replayed)
    valid_end_lsn: int = 0
    #: records discarded by truncation at the first bad checksum
    tail_records_dropped: int = 0
    #: torn pages detected during redo and rebuilt by full log replay
    torn_pages_healed: int = 0


class RestartRecovery:
    """Run ARIES restart over a freshly reopened :class:`Database`."""

    def __init__(
        self, db: "Database", extensions: Mapping[str, GiSTExtension]
    ) -> None:
        self.db = db
        self.extensions = dict(extensions)
        self.report = RecoveryReport()

    def run(self) -> RecoveryReport:
        """Execute the three passes and return what they accomplished.

        Each pass is timed into a ``recovery.*_ns`` histogram and traced
        as a span, so crash-recovery benchmarks can break restart cost
        down by phase.
        """
        metrics = self.db.metrics
        tracer = metrics.tracer
        metrics.counter("recovery.runs").inc()
        with tracer.span("recovery.run"):
            t0 = perf_counter_ns()
            # Self-healing pre-pass: a corrupt log tail (torn final log
            # write) is truncated at the first bad-checksum record, and
            # the valid prefix below is replayed — the ARIES treatment.
            valid_end, dropped = self.db.log.verify_and_truncate()
            self.report.valid_end_lsn = valid_end
            self.report.tail_records_dropped = dropped
            if dropped:
                metrics.counter("wal.tail_truncated_records").inc(dropped)
                tracer.record_span(
                    "recovery.tail_truncation",
                    0,
                    valid_end=valid_end,
                    dropped=dropped,
                )
            att, dpt = self._analysis()
            self._rebuild_catalog()
            t1 = perf_counter_ns()
            metrics.histogram("recovery.analysis_ns").record(t1 - t0)
            tracer.record_span(
                "recovery.analysis",
                t1 - t0,
                records=self.report.analyzed_records,
                losers=len(att),
            )
            self._redo(dpt)
            t2 = perf_counter_ns()
            metrics.histogram("recovery.redo_ns").record(t2 - t1)
            tracer.record_span(
                "recovery.redo",
                t2 - t1,
                redone=self.report.redone_records,
                pages_rebuilt=self.report.pages_rebuilt,
            )
            self._undo(att)
            self._finalize(att)
            t3 = perf_counter_ns()
            metrics.histogram("recovery.undo_ns").record(t3 - t2)
            tracer.record_span(
                "recovery.undo",
                t3 - t2,
                undone=self.report.undone_records,
            )
        return self.report

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def _analysis(self) -> tuple[dict[int, int], dict[PageId, int]]:
        log = self.db.log
        att: dict[int, int] = {}
        dpt: dict[PageId, int] = {}
        committed: set[int] = set()
        aborted: set[int] = set()
        start = 1
        if log.master_lsn != NULL_LSN and log.master_lsn <= log.end_lsn:
            checkpoint = log.get(log.master_lsn)
            if isinstance(checkpoint, CheckpointRecord):
                att.update(checkpoint.att)
                dpt.update(checkpoint.dpt)
                start = log.master_lsn

        # Metadata sweep over the whole log: catalog, NSN maximum, and
        # the committed/aborted xid sets (GC visibility needs the full
        # history, not just post-checkpoint commits).
        self._catalog: dict[str, TreeCreateRecord] = {}
        max_xid = 0
        for record in log.records_from(1):
            self.report.analyzed_records += 1
            max_xid = max(max_xid, record.xid)
            if isinstance(record, TreeCreateRecord):
                self._catalog[record.name] = record
            elif isinstance(record, (SplitRecord, RootSplitRecord)):
                self.report.max_nsn = max(
                    self.report.max_nsn, record.new_nsn
                )
            if record.lsn >= start:
                if record.xid != 0:
                    att[record.xid] = record.lsn
                for pid in record.affected_pages():
                    dpt.setdefault(pid, record.lsn)
            if isinstance(record, CommitRecord):
                committed.add(record.xid)
            elif isinstance(record, AbortRecord):
                aborted.add(record.xid)
            elif isinstance(record, EndRecord):
                att.pop(record.xid, None)
        # Committed transactions that logged their commit need no undo.
        for xid in committed:
            att.pop(xid, None)
        self._committed = committed
        self._aborted = aborted
        self._max_xid = max_xid
        return att, dpt

    def _rebuild_catalog(self) -> None:
        for name, record in self._catalog.items():
            extension = self.extensions.get(name)
            if extension is None:
                raise RecoveryError(
                    f"no extension supplied for recovered tree {name!r}"
                )
            tree = GiST(
                self.db,
                name,
                extension,
                record.root_pid,
                unique=record.unique,
                nsn_source=record.nsn_source or "counter",
            )
            self.db.trees[name] = tree
            self.report.trees.append(name)

    # ------------------------------------------------------------------
    # redo
    # ------------------------------------------------------------------
    def _redo(self, dpt: dict[PageId, int]) -> None:
        log, store = self.db.log, self.db.store
        redo_start = min(dpt.values(), default=1)
        self.report.redo_start_lsn = redo_start
        images: dict[PageId, Page] = {}
        for record in log.records_from(redo_start):
            if isinstance(record, GetPageRecord):
                store.mark_allocated(record.page_id)
                continue
            if isinstance(record, FreePageRecord):
                store.mark_free(record.page_id)
                continue
            applied = False
            for pid in record.affected_pages():
                page = images.get(pid)
                if page is None:
                    if store.exists(pid):
                        try:
                            page = store.read(pid)
                        except TornPageError:
                            # A torn write reached disk.  The WAL covers
                            # the page's whole history, so rebuild it by
                            # replaying every record below this one —
                            # then let normal redo continue from here.
                            page = rebuild_page_from_log(
                                log, store, pid, upto=record.lsn - 1
                            )
                            if page is None:
                                page = Page(
                                    pid=pid,
                                    kind=PageKind.LEAF,
                                    capacity=store.page_capacity,
                                )
                            self.report.torn_pages_healed += 1
                            self.report.pages_rebuilt += 1
                            self.db.metrics.counter(
                                "storage.torn_pages_detected"
                            ).inc()
                            self.db.metrics.counter(
                                "storage.torn_pages_healed"
                            ).inc()
                    else:
                        page = Page(
                            pid=pid,
                            kind=PageKind.LEAF,
                            capacity=store.page_capacity,
                        )
                        self.report.pages_rebuilt += 1
                    images[pid] = page
                if page.page_lsn < record.lsn:
                    record.redo_page(page)
                    page.page_lsn = record.lsn
                    applied = True
            if applied:
                self.report.redone_records += 1
        for page in images.values():
            store.write(page)

    # ------------------------------------------------------------------
    # undo
    # ------------------------------------------------------------------
    def _undo(self, att: dict[int, int]) -> None:
        """Roll back every loser in one ARIES backward sweep.

        All losers are undone together, always taking the record with
        the highest LSN among every transaction's next-undo point — not
        transaction by transaction.  The interleaving matters: a loser's
        structure-modification undo (e.g. un-splitting a page from the
        record's stored entry list) must run *before* the lower-LSN
        undos of other losers whose entries that page image contains,
        or it would resurrect entries an earlier logical undo already
        removed.
        """
        log = self.db.log
        self.db.in_restart = True
        try:
            self.report.losers.extend(sorted(att))
            todo = {
                xid: lsn for xid, lsn in att.items() if lsn != NULL_LSN
            }
            finished = sorted(set(att) - set(todo))
            while todo:
                xid, lsn = max(todo.items(), key=lambda kv: kv[1])
                record = log.get(lsn)
                if record.undo_next is not None:
                    nxt = record.undo_next
                else:
                    if record.undoable:
                        log.set_last_lsn(xid, lsn)
                        self.db._undo_record(record, xid)
                        self.report.undone_records += 1
                    nxt = record.prev_lsn
                if nxt == NULL_LSN:
                    del todo[xid]
                    finished.append(xid)
                else:
                    todo[xid] = nxt
            for xid in finished:
                log.set_last_lsn(xid, log.last_lsn_of(xid))
                log.append(EndRecord(xid=xid))
        finally:
            self.db.in_restart = False

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def _finalize(self, att: dict[int, int]) -> None:
        txns = self.db.txns
        txns.committed_xids |= self._committed
        txns.aborted_xids |= self._aborted | set(att)
        self.report.winners = sorted(self._committed)
        txns.restore_counters(self._max_xid + 1)
        for tree in self.db.trees.values():
            tree.nsn.note_recovered(self.report.max_nsn)
        self.db.pool.flush_all()
        self.db.log.flush()
