"""The GiST core: extension interface, tree, cursor, maintenance."""

from repro.gist.checker import CheckReport, check_tree
from repro.gist.cursor import SearchCursor
from repro.gist.extension import GiSTExtension
from repro.gist.maintenance import VacuumReport, vacuum
from repro.gist.nsn import CounterNSN, LSNBasedNSN, NSNSource
from repro.gist.stack import StackEntry
from repro.gist.tree import GiST, TreeStats

__all__ = [
    "CheckReport",
    "CounterNSN",
    "GiST",
    "GiSTExtension",
    "LSNBasedNSN",
    "NSNSource",
    "SearchCursor",
    "StackEntry",
    "TreeStats",
    "VacuumReport",
    "check_tree",
    "vacuum",
]
